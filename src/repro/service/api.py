"""Typed request/response surface of the compliance service.

Requests are small frozen dataclasses — the wire format of the front door
whether the transport is in-process (:meth:`ComplianceService.call`), the
stdlib HTTP server (:mod:`repro.service.http`), or the load generator.
Statuses reuse HTTP codes so the HTTP front door maps them 1:1 and the
admission-control contract reads the way an SRE expects: a full queue is a
``429 REJECTED`` *now*, not an unbounded wait.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Optional, Tuple, Union


class Status(IntEnum):
    """Response status — HTTP semantics, transport-independent."""

    OK = 200
    CREATED = 201
    BAD_REQUEST = 400
    NOT_FOUND = 404
    REJECTED = 429          # admission control: bounded queue was full
    ERROR = 500
    SHUTTING_DOWN = 503


@dataclass(frozen=True)
class CollectRequest:
    """Store one value for one data subject (the paper's *collect*)."""

    key: Any
    value: Any
    subject: str = "anonymous"


@dataclass(frozen=True)
class ReadRequest:
    """Read one key at the chosen consistency level."""

    key: Any
    consistency: str = "one"


@dataclass(frozen=True)
class UpdateRequest:
    """Overwrite one existing key's value."""

    key: Any
    value: Any


@dataclass(frozen=True)
class EraseRequest:
    """Grounded Art. 17 erase — every physical copy, verified clean.

    Erase requests are batched by the worker pool: consecutive pending
    erases on one shard queue run as a single ``erase_many`` call, so the
    per-node reclamation pass is paid once per batch.
    """

    key: Any


@dataclass(frozen=True)
class SarRequest:
    """Art. 15 subject-access request: every key the service collected
    for this subject, with current values (erased keys disclosed as
    erased, never by value)."""

    subject: str


Request = Union[CollectRequest, ReadRequest, UpdateRequest, EraseRequest, SarRequest]


@dataclass(frozen=True)
class Response:
    """What came back, uniformly across request types.

    ``value`` carries a read's value or a SAR's unit tuples;
    ``verified_clean`` is set on erase responses (the §1 acceptance bit:
    zero lingering copies after the grounded erase).
    """

    status: Status
    value: Any = None
    error: Optional[str] = None
    verified_clean: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return 200 <= int(self.status) < 300

    @property
    def rejected(self) -> bool:
        return self.status is Status.REJECTED


@dataclass(frozen=True)
class SarUnit:
    """One unit disclosed by a subject-access response."""

    key: Any
    value: Any
    erased: bool


#: Response units type for SAR responses (``Response.value``).
SarUnits = Tuple[SarUnit, ...]
