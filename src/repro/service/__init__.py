"""Compliance-as-a-service: the concurrent front door.

``ComplianceService`` serves typed requests from per-shard worker pools
with bounded-queue admission control while a maintenance thread races
rebalance steps and read repairs against live traffic; ``loadgen`` drives
it closed-loop from N client threads; ``http`` is the stdlib HTTP
transport (``python -m repro.cli serve``).  See ``docs/SERVICE.md``.
"""

from repro.service.api import (
    CollectRequest,
    EraseRequest,
    ReadRequest,
    Request,
    Response,
    SarRequest,
    SarUnit,
    Status,
    UpdateRequest,
)
from repro.service.loadgen import LoadgenReport, run_loadgen
from repro.service.server import ComplianceService, ServiceStats

__all__ = [
    "CollectRequest",
    "ComplianceService",
    "EraseRequest",
    "LoadgenReport",
    "ReadRequest",
    "Request",
    "Response",
    "SarRequest",
    "SarUnit",
    "ServiceStats",
    "Status",
    "UpdateRequest",
    "run_loadgen",
]
