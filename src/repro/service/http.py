"""Stdlib HTTP transport for the compliance service.

A thin JSON mapping over :class:`~repro.service.server.ComplianceService`
using ``ThreadingHTTPServer`` (one thread per connection; the service's
admission control — not the socket layer — bounds concurrency).  Routes:

===========  =======  ==================================================
``POST``     path     body
===========  =======  ==================================================
collect      ``/collect``  ``{"key": k, "value": v, "subject": s}``
read         ``/read``     ``{"key": k, "consistency": "one"}``
update       ``/update``   ``{"key": k, "value": v}``
erase        ``/erase``    ``{"key": k}``
sar          ``/sar``      ``{"subject": s}``
===========  =======  ==================================================

``GET /stats`` returns the service counters; ``GET /healthz`` returns 200
while the service accepts traffic.  Response HTTP status codes are the
service's :class:`~repro.service.api.Status` values verbatim — a full
admission queue is a literal ``429``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.service.api import (
    CollectRequest,
    EraseRequest,
    ReadRequest,
    Request,
    Response,
    SarRequest,
    Status,
    UpdateRequest,
)
from repro.service.server import ComplianceService

_ROUTES = {
    "/collect": lambda body: CollectRequest(
        key=body["key"],
        value=body.get("value"),
        subject=body.get("subject", "anonymous"),
    ),
    "/read": lambda body: ReadRequest(
        key=body["key"], consistency=body.get("consistency", "one")
    ),
    "/update": lambda body: UpdateRequest(key=body["key"], value=body.get("value")),
    "/erase": lambda body: EraseRequest(key=body["key"]),
    "/sar": lambda body: SarRequest(subject=body["subject"]),
}


def _encode(response: Response) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"status": int(response.status)}
    if response.value is not None:
        try:
            json.dumps(response.value)
            payload["value"] = response.value
        except TypeError:
            payload["value"] = repr(response.value)
    if response.error is not None:
        payload["error"] = response.error
    if response.verified_clean is not None:
        payload["verified_clean"] = response.verified_clean
    return payload


class _Handler(BaseHTTPRequestHandler):
    server: "ServiceHTTPServer"

    # Silence the default per-request stderr logging.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _reply(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        if self.path == "/healthz":
            self._reply(200, {"status": 200, "ok": True})
        elif self.path == "/stats":
            self._reply(200, asdict(self.server.service.stats()))
        else:
            self._reply(404, {"status": 404, "error": "unknown path"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        builder = _ROUTES.get(self.path)
        if builder is None:
            self._reply(404, {"status": 404, "error": "unknown path"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
            request: Request = builder(body)
        except (ValueError, KeyError, TypeError) as exc:
            self._reply(
                int(Status.BAD_REQUEST),
                {"status": int(Status.BAD_REQUEST), "error": f"bad request: {exc}"},
            )
            return
        # SAR units are dataclasses — flatten for the wire.
        response = self.server.service.call(request)
        if self.path == "/sar" and response.ok:
            units = [asdict(unit) for unit in response.value or ()]
            self._reply(
                int(response.status), {"status": int(response.status), "units": units}
            )
            return
        self._reply(int(response.status), _encode(response))


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`ComplianceService`."""

    daemon_threads = True

    def __init__(
        self,
        service: ComplianceService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]


def serve_in_background(
    service: ComplianceService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServiceHTTPServer:
    """Start an HTTP front door on a daemon thread; returns the bound
    server (``.address`` has the ephemeral port)."""
    server = ServiceHTTPServer(service, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="svc-http", daemon=True
    )
    thread.start()
    return server


def _announce(message: str) -> None:
    # flush so the bound (possibly ephemeral) port is visible even when
    # stdout is a pipe, not a terminal
    print(message, flush=True)


def serve_forever(
    service: ComplianceService,
    host: str = "127.0.0.1",
    port: int = 8080,
    announce: Optional[Any] = _announce,
) -> None:
    """Blocking server loop — the ``repro.cli serve`` entry point."""
    server = ServiceHTTPServer(service, host=host, port=port)
    if announce is not None:
        announce(
            f"compliance service listening on http://{host}:{server.address[1]} "
            f"({service.config.workers_per_shard} worker(s)/shard, "
            f"queue depth {service.config.queue_depth})"
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.shutdown()
        service.close()
