"""ComplianceService — the concurrent front door over a ReplicatedStore.

This is the paper's claim under true concurrency: grounded erasure, online
rebalancing, and read repair all hold while real threads race.  The
cooperative interleaving in :func:`repro.workloads.driver.run_interleaved`
simulates that contention; this module creates it.

Request lifecycle
-----------------
``submit()`` routes a typed request (:mod:`repro.service.api`) to the
bounded queue of its owning shard's worker pool.  A full queue rejects the
request *immediately* with ``Status.REJECTED`` (429) — admission control
bounds latency instead of queue depth growing without limit — and touches
nothing else: no store access, no audit event, no world bookkeeping.
Accepted requests resolve a :class:`concurrent.futures.Future` with a
:class:`Response` once a worker executes them.

Locking discipline (what G06 checks statically)
-----------------------------------------------
Two lock tiers, always acquired in the same order:

1. the **topology lock** — a writer-preference readers/writer lock.
   Request execution holds the *read* side (many requests in parallel);
   the maintenance thread holds the *write* side around every structural
   mutation: ``RebalanceDriver.step()``, ``flush_repairs()``, rebalance
   begin/finalize, and invariant evaluation.
2. **per-shard locks**, acquired in sorted shard-id order for every shard
   the key may touch (``ReplicatedStore.shards_involved`` — the
   dual-routing pair mid-rebalance), released before the topology read
   lock.

The discipline is *checkable* because the service never mutates the
store's watched shared state (``_shards``/``_ring``/``_rebalance``/
``_pending_repairs``) itself: every structural mutation flows through the
store's G06 seam methods (``_begin``/``_finalize``/``_spawn_shard``/
``_queue_repair``/``flush_repairs``), and the service only reaches those
seams from the maintenance thread while holding the topology write lock.
A new mutation site anywhere else fails the linter.

Erase batching
--------------
Workers opportunistically drain consecutive pending :class:`EraseRequest`s
from their own queue (up to ``ServiceConfig.erase_batch``) and run them as
one ``erase_many`` call — one reclamation pass per node per *batch*
instead of per key, the distributed amortization the engine batch helpers
already provide, now on the live request path.

Known benign races: the simulated :class:`~repro.sim.clock.SimClock` is
charged from many threads; increments on different shards may interleave,
which can under-count *simulated* time.  Wall-clock latency (what the
service reports) is unaffected, and per-shard ordering is preserved by the
shard locks.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import queue

from repro.analysis.invariants import Invariant, World, check_invariants
from repro.config import ServiceConfig
from repro.distributed.ring import stable_hash
from repro.service.api import (
    CollectRequest,
    EraseRequest,
    ReadRequest,
    Request,
    Response,
    SarRequest,
    SarUnit,
    Status,
    UpdateRequest,
)
from repro.storage.errors import TupleNotFoundError

_STOP = object()


class _TopologyLock:
    """Readers/writer lock with writer preference.

    Requests are readers (they never change topology); the maintenance
    thread is the writer.  Writer preference keeps a steady request stream
    from starving rebalance progress.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._readers_ok = threading.Condition(self._mutex)
        self._writers_ok = threading.Condition(self._mutex)
        self._readers = 0
        self._writers_waiting = 0
        self._writer_active = False

    def acquire_read(self) -> None:
        with self._mutex:
            while self._writer_active or self._writers_waiting:
                self._readers_ok.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._mutex:
            self._readers -= 1
            if self._readers == 0:
                self._writers_ok.notify()

    def acquire_write(self) -> None:
        with self._mutex:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._writers_ok.wait()
            self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._mutex:
            self._writer_active = False
            self._writers_ok.notify()
            self._readers_ok.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass
class ServiceStats:
    """Counters the service maintains (snapshot via ``stats()``)."""

    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    errors: int = 0
    erase_batches: int = 0
    erased_keys: int = 0
    maintenance_ticks: int = 0
    repairs: int = 0
    antientropy_sweeps: int = 0
    invariant_checks: int = 0
    invariant_violations: int = 0
    # Compaction throttle counters, aggregated from every shard node's
    # scheduler at snapshot time (zeros for stores without deferred
    # compaction).
    merges_run: int = 0
    bytes_compacted: int = 0
    stall_events: int = 0
    compaction_queue_depth: int = 0


class _Pool:
    """One shard's bounded admission queue plus its worker threads."""

    def __init__(self, shard_id: int, depth: int) -> None:
        self.shard_id = shard_id
        self.queue: "queue.Queue[Any]" = queue.Queue(maxsize=depth)
        self.workers: List[threading.Thread] = []


class ComplianceService:
    """Thread-safe compliance front door over a ReplicatedStore.

    Parameters
    ----------
    store:
        The :class:`~repro.distributed.store.ReplicatedStore` under
        service.  The service assumes exclusive ownership: all traffic and
        all maintenance must flow through it once ``start()`` runs.
    config:
        :class:`~repro.config.ServiceConfig` concurrency knobs.
    invariants:
        Optional registry from :func:`repro.analysis.invariants
        .store_invariants` — turns the service into its own oracle: a
        :class:`World` tracks what the service believes live/erased, and
        the registry runs under the topology write lock (periodically via
        ``invariant_check_every``, always at ``close()``).
    initial_live:
        Keys loaded into the store before the service took ownership
        (``load_store``), seeded into the world's live set.
    autostart:
        Start worker pools and the maintenance thread immediately.
        Tests pass ``False`` to stage deterministic queue states.
    """

    def __init__(
        self,
        store: Any,
        config: Optional[ServiceConfig] = None,
        invariants: Optional[Sequence[Invariant]] = None,
        initial_live: Iterable[Any] = (),
        autostart: bool = True,
    ) -> None:
        self._store = store
        self.config = config or ServiceConfig()
        self._topology = _TopologyLock()
        self._shard_locks: Dict[int, threading.Lock] = {}
        self._shard_locks_guard = threading.Lock()
        self._pools: Dict[int, _Pool] = {}
        self._pools_guard = threading.Lock()
        self._subjects: Dict[str, set] = {}
        self._subjects_guard = threading.Lock()
        self._stats = ServiceStats()
        self._stats_guard = threading.Lock()
        self._invariants = list(invariants) if invariants is not None else None
        self._world: Optional[World] = None
        if self._invariants is not None:
            self._world = World.observe(store)
            self._world.live.update(initial_live)
        #: Distinct invariant-violation messages observed (write-lock-held
        #: appends only).
        self.violations: List[str] = []
        self._driver: Optional[Any] = None
        self._maint_stop = threading.Event()
        self._maint_thread: Optional[threading.Thread] = None
        self._started = False
        self._closed = False
        if autostart:
            self.start()

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start worker pools for the current shards and the maintenance
        thread.  Idempotent."""
        if self._started:
            return
        self._started = True
        with self._pools_guard:
            for shard_id in self._store.shard_ids:
                self._ensure_pool_locked(shard_id)
            for pool in self._pools.values():
                self._start_workers(pool)
        self._maint_thread = threading.Thread(
            target=self._maintain, name="svc-maintenance", daemon=True
        )
        self._maint_thread.start()

    def close(self) -> None:
        """Drain and stop: every accepted request executes before the
        workers exit — an in-flight grounded erase always completes (no
        half-grounded unit), then repairs flush and the final invariant
        sweep runs.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            # Never started: start now so staged queues drain through the
            # same worker path (erase batching included).
            self._closed = False
            self.start()
            self._closed = True
        with self._pools_guard:
            pools = list(self._pools.values())
        for pool in pools:
            for _ in pool.workers:
                pool.queue.put(_STOP)
        for pool in pools:
            for worker in pool.workers:
                worker.join()
        self._maint_stop.set()
        if self._maint_thread is not None:
            self._maint_thread.join()
        with self._topology.write():
            repairs = len(self._store.flush_repairs())
            if repairs:
                with self._stats_guard:
                    self._stats.repairs += repairs
            if self._invariants is not None:
                self._check_invariants_locked()

    def __enter__(self) -> "ComplianceService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------- admission
    def submit(self, request: Request) -> "Future[Response]":
        """Route the request to its shard pool.  Returns immediately: a
        full queue (or a closed service) resolves the future right here
        with a 429/503 — by design the rejection path performs **no**
        store access, audit action, or world bookkeeping."""
        future: "Future[Response]" = Future()
        if self._closed:
            future.set_result(
                Response(Status.SHUTTING_DOWN, error="service is closed")
            )
            with self._stats_guard:
                self._stats.rejected += 1
            return future
        pool = self._pool_for(request)
        try:
            pool.queue.put_nowait((request, future))
        except queue.Full:
            with self._stats_guard:
                self._stats.rejected += 1
            future.set_result(
                Response(
                    Status.REJECTED,
                    error=f"shard {pool.shard_id} admission queue full "
                    f"(depth {self.config.queue_depth})",
                )
            )
        else:
            with self._stats_guard:
                self._stats.accepted += 1
        return future

    def call(self, request: Request, timeout: Optional[float] = None) -> Response:
        """Synchronous ``submit`` — the closed-loop client path."""
        return self.submit(request).result(
            timeout if timeout is not None else self.config.request_timeout
        )

    # ------------------------------------------------------------ rebalance
    def begin_rebalance(
        self,
        shards: int,
        batch_size: int = 64,
        weights: Optional[Any] = None,
    ) -> Any:
        """Start a background resize; the maintenance thread steps it
        ``maintenance_budget_keys`` keys per tick, racing live requests."""
        with self._topology.write():
            if self._driver is not None and not self._driver.done:
                raise RuntimeError("a rebalance is already in progress")
            driver = self._store.begin_background_resize(
                shards, batch_size=batch_size, weights=weights
            )
            self._driver = driver
            if self._world is not None:
                self._world.driver = driver
                self._world.moved_at_attach = driver.rebalance.keys_moved
        return driver

    def drain_rebalance(self) -> None:
        """Drive an active rebalance to completion (new shards get worker
        pools as their first requests route to them)."""
        while True:
            with self._topology.write():
                driver = self._driver
                if driver is None or driver.done:
                    return
                driver.step(self.config.maintenance_budget_keys)

    @property
    def rebalance_done(self) -> bool:
        with self._topology.write():
            return self._driver is None or self._driver.done

    # ------------------------------------------------------------ inspection
    def stats(self) -> ServiceStats:
        comp = None
        compaction_stats = getattr(self._store, "compaction_stats", None)
        if compaction_stats is not None:
            with self._topology.read():
                comp = compaction_stats()
        with self._stats_guard:
            snapshot = replace(self._stats)
        if comp is not None:
            snapshot.merges_run = comp.merges_run
            snapshot.bytes_compacted = comp.bytes_compacted
            snapshot.stall_events = comp.stall_events
            snapshot.compaction_queue_depth = comp.queue_depth
        return snapshot

    def check_invariants(self) -> List[str]:
        """Run the registry now (topology write lock held — a quiescent
        point between request executions)."""
        if self._invariants is None:
            return []
        with self._topology.write():
            return self._check_invariants_locked()

    @property
    def world(self) -> Optional[World]:
        return self._world

    # ---------------------------------------------------------- worker pools
    def _pool_for(self, request: Request) -> _Pool:
        key = getattr(request, "key", None)
        with self._topology.read():
            if key is not None:
                shard_id = self._store.shard_of(key)
            else:
                ids = self._store.shard_ids
                shard_id = ids[stable_hash(request.subject) % len(ids)]
        with self._pools_guard:
            return self._ensure_pool_locked(shard_id)

    def _ensure_pool_locked(self, shard_id: int) -> _Pool:
        pool = self._pools.get(shard_id)
        if pool is None:
            pool = _Pool(shard_id, self.config.queue_depth)
            self._pools[shard_id] = pool
            if self._started:
                self._start_workers(pool)
        return pool

    def _start_workers(self, pool: _Pool) -> None:
        for i in range(self.config.workers_per_shard):
            worker = threading.Thread(
                target=self._worker,
                args=(pool,),
                name=f"svc-shard{pool.shard_id}-w{i}",
                daemon=True,
            )
            pool.workers.append(worker)
            worker.start()

    def _worker(self, pool: _Pool) -> None:
        while True:
            item = pool.queue.get()
            if item is _STOP:
                return
            request, future = item
            if isinstance(request, EraseRequest):
                batch = [item]
                carried = None
                saw_stop = False
                # Opportunistic batching: drain consecutive pending erases
                # so one erase_many call amortizes the reclamation pass.
                while len(batch) < self.config.erase_batch:
                    try:
                        nxt = pool.queue.get_nowait()
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        saw_stop = True
                        break
                    if isinstance(nxt[0], EraseRequest):
                        batch.append(nxt)
                    else:
                        carried = nxt
                        break
                self._run_erase_batch(batch)
                if carried is not None:
                    self._run_one(*carried)
                if saw_stop:
                    return
            else:
                self._run_one(request, future)

    # ------------------------------------------------------------- execution
    def _shard_lock(self, shard_id: int) -> threading.Lock:
        with self._shard_locks_guard:
            lock = self._shard_locks.get(shard_id)
            if lock is None:
                lock = threading.Lock()
                self._shard_locks[shard_id] = lock
            return lock

    @contextmanager
    def _locked_shards(self, keys: Iterable[Any]) -> Iterator[None]:
        """Per-shard locks for every shard the keys may touch, acquired in
        sorted shard-id order (deadlock-free).  Caller must already hold
        the topology read lock."""
        involved: set = set()
        for key in keys:
            involved.update(self._store.shards_involved(key))
        locks = [self._shard_lock(shard_id) for shard_id in sorted(involved)]
        for lock in locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(locks):
                lock.release()

    def _run_one(self, request: Request, future: "Future[Response]") -> None:
        try:
            if isinstance(request, ReadRequest):
                response = self._do_read(request)
            elif isinstance(request, CollectRequest):
                response = self._do_collect(request)
            elif isinstance(request, UpdateRequest):
                response = self._do_update(request)
            elif isinstance(request, SarRequest):
                response = self._do_sar(request)
            else:
                response = Response(
                    Status.BAD_REQUEST,
                    error=f"unsupported request type {type(request).__name__}",
                )
        except TupleNotFoundError:
            response = Response(
                Status.NOT_FOUND, error=f"key {request.key!r} not found"
            )
        except Exception as exc:  # a request must never kill its worker
            response = Response(
                Status.ERROR, error=f"{type(exc).__name__}: {exc}"
            )
        with self._stats_guard:
            self._stats.completed += 1
            if response.status in (Status.ERROR, Status.BAD_REQUEST):
                self._stats.errors += 1
        future.set_result(response)

    def _do_read(self, request: ReadRequest) -> Response:
        with self._topology.read():
            with self._locked_shards([request.key]):
                value = self._store.read(
                    request.key,
                    use_cache=False,
                    consistency=request.consistency,
                )
        return Response(Status.OK, value=value)

    def _do_collect(self, request: CollectRequest) -> Response:
        with self._topology.read():
            with self._locked_shards([request.key]):
                self._store.put(request.key, request.value)
                if self._world is not None:
                    self._world.record_write(request.key)
        with self._subjects_guard:
            self._subjects.setdefault(request.subject, set()).add(request.key)
        return Response(Status.CREATED)

    def _do_update(self, request: UpdateRequest) -> Response:
        with self._topology.read():
            with self._locked_shards([request.key]):
                self._store.update(request.key, request.value)
                if self._world is not None:
                    self._world.record_write(request.key)
        return Response(Status.OK)

    def _do_sar(self, request: SarRequest) -> Response:
        with self._subjects_guard:
            keys = sorted(self._subjects.get(request.subject, ()))
        units: List[SarUnit] = []
        for key in keys:
            with self._topology.read():
                with self._locked_shards([key]):
                    try:
                        value = self._store.read(key, use_cache=False)
                    except TupleNotFoundError:
                        # Erased (or reversibly inaccessible) — §3.1:
                        # disclose existence, never the value.
                        units.append(SarUnit(key, None, erased=True))
                    else:
                        units.append(SarUnit(key, value, erased=False))
        return Response(Status.OK, value=tuple(units))

    def _run_erase_batch(self, batch: List[Tuple[EraseRequest, Any]]) -> None:
        keys = [request.key for request, _ in batch]
        try:
            with self._topology.read():
                with self._locked_shards(keys):
                    report = self._store.erase_many(keys)
                    if self._world is not None:
                        for key in keys:
                            self._world.record_erase(key, report)
        except Exception as exc:
            response = Response(
                Status.ERROR, error=f"{type(exc).__name__}: {exc}"
            )
            with self._stats_guard:
                self._stats.completed += len(batch)
                self._stats.errors += len(batch)
            for _, future in batch:
                future.set_result(response)
            return
        response = Response(Status.OK, verified_clean=report.verified_clean)
        with self._stats_guard:
            self._stats.completed += len(batch)
            self._stats.erase_batches += 1
            self._stats.erased_keys += len(keys)
        for _, future in batch:
            future.set_result(response)

    # ----------------------------------------------------------- maintenance
    def _maintain(self) -> None:
        while not self._maint_stop.wait(self.config.maintenance_interval):
            with self._topology.write():
                self._maintenance_tick_locked()

    def _maintenance_tick_locked(self) -> None:
        driver = self._driver
        sweeps = 0
        if driver is not None and not driver.done:
            before = len(driver.repairs)
            driver.step(self.config.maintenance_budget_keys)
            repairs = len(driver.repairs) - before
        else:
            repairs = len(self._store.flush_repairs())
            # A quiet tick also pays one bounded compaction slice, so
            # deferred LSM backends drain between requests instead of
            # stalling a writer (same interleaving contract as the
            # rebalance driver's bounded step).
            budget = self.config.maintenance_compaction_bytes
            maintain = getattr(self._store, "maintain", None)
            if budget and maintain is not None:
                maintain(max_bytes=budget)
            # Every ``antientropy_every``-th quiet tick runs a proactive
            # digest sweep so replica divergence heals without waiting for
            # a quorum read to trip over it.
            every = self.config.antientropy_every
            with self._stats_guard:
                due = every and (self._stats.maintenance_ticks + 1) % every == 0
            sweep = getattr(self._store, "anti_entropy_sweep", None)
            if due and sweep is not None:
                _report, events = sweep(self.config.antientropy_ranges)
                repairs += len(events)
                sweeps = 1
        with self._stats_guard:
            self._stats.maintenance_ticks += 1
            self._stats.repairs += repairs
            self._stats.antientropy_sweeps += sweeps
            ticks = self._stats.maintenance_ticks
        every = self.config.invariant_check_every
        if every and self._invariants is not None and ticks % every == 0:
            self._check_invariants_locked()

    def _check_invariants_locked(self) -> List[str]:
        violations = check_invariants(self._world, self._invariants)
        messages = [str(v) for v in violations]
        for message in messages:
            if message not in self.violations:
                self.violations.append(message)
        with self._stats_guard:
            self._stats.invariant_checks += len(self._invariants)
            self._stats.invariant_violations += len(violations)
        return messages
