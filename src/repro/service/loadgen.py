"""Closed-loop load generator — N client threads driving the service.

Takes any generated :class:`~repro.workloads.base.Workload` (YCSB-C, the
GDPRBench mixes, the erasure study) and replays it *concurrently*: the
operation list is split round-robin across ``clients`` threads, each of
which runs closed-loop — issue a request, wait for the response, record
wall-clock latency, issue the next.  Admission rejections (429) back off
and retry, so backpressure shows up as latency and retry counts rather
than lost operations; this is the canonical closed-loop response to a
bounded queue.

Latency is **wall-clock** (``time.perf_counter``), not simulated — the
simulated :class:`~repro.sim.clock.SimClock` is charged from many racing
threads and measures engine work, while the service's latency claim is
about the real request path (queueing + locking + execution).

Cross-thread hazards are part of the point: a READ may race the DELETE of
its key on another client (counted as a miss — the grounded-erase outcome
§3.1 requires), and every DELETE's ``verified_clean`` bit is recorded
while rebalance steps and read repairs run on the maintenance thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.service.api import (
    CollectRequest,
    EraseRequest,
    ReadRequest,
    Request,
    Status,
    UpdateRequest,
)
from repro.service.server import ComplianceService
from repro.workloads.base import OpKind, Operation, Workload
from repro.workloads.driver import unit_key


@dataclass(frozen=True)
class LoadgenReport:
    """What N concurrent clients did, and how fast."""

    workload: str
    clients: int
    ops: int
    reads: int
    writes: int
    erases: int
    metadata_ops: int
    read_misses: int
    rejected: int
    retries: int
    errors: int
    erases_verified_clean: bool
    wall_seconds: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    ops_per_s: float


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _build_request(
    op: Operation,
    key_fn: Callable[[int], str],
    consistency: str,
    subject_fn: Callable[[int], str],
) -> Optional[Request]:
    if op.kind is OpKind.CREATE:
        return CollectRequest(
            key=key_fn(op.key),
            value=op.payload or (op.key, "payload"),
            subject=subject_fn(op.key),
        )
    if op.kind is OpKind.READ:
        return ReadRequest(key=key_fn(op.key), consistency=consistency)
    if op.kind is OpKind.UPDATE:
        return UpdateRequest(key=key_fn(op.key), value=op.payload or (op.key, "rw"))
    if op.kind is OpKind.DELETE:
        return EraseRequest(key=key_fn(op.key))
    return None  # metadata traffic has no service counterpart


def run_loadgen(
    service: ComplianceService,
    workload: Workload,
    clients: int = 8,
    consistency: str = "one",
    key_fn: Callable[[int], str] = unit_key,
    subject_fn: Callable[[int], str] = lambda k: f"subject-{k % 97}",
    max_retries: int = 50,
    backoff_seconds: float = 0.001,
) -> LoadgenReport:
    """Replay ``workload`` against ``service`` from ``clients`` threads.

    Returns once every client has driven its slice to completion.  A 429
    sleeps ``backoff_seconds`` (doubling, capped at 50 ms) and retries up
    to ``max_retries`` times; a request still rejected after that counts
    in ``rejected`` and is dropped — the loadgen never blocks forever on
    a saturated service.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    slices = [list(workload.operations[i::clients]) for i in range(clients)]

    class _ClientTally:
        __slots__ = (
            "reads", "writes", "erases", "metadata", "misses",
            "rejected", "retries", "errors", "clean", "latencies",
        )

        def __init__(self) -> None:
            self.reads = self.writes = self.erases = 0
            self.metadata = self.misses = 0
            self.rejected = self.retries = self.errors = 0
            self.clean = True
            self.latencies: List[float] = []

    tallies = [_ClientTally() for _ in range(clients)]

    def _client(ops: List[Operation], tally: _ClientTally) -> None:
        for op in ops:
            request = _build_request(op, key_fn, consistency, subject_fn)
            if request is None:
                tally.metadata += 1
                continue
            start = time.perf_counter()
            response = service.call(request)
            delay = backoff_seconds
            attempts = 0
            while response.rejected and attempts < max_retries:
                time.sleep(delay)
                delay = min(delay * 2, 0.05)
                attempts += 1
                tally.retries += 1
                response = service.call(request)
            tally.latencies.append((time.perf_counter() - start) * 1_000)
            if response.rejected:
                tally.rejected += 1
                continue
            if op.kind is OpKind.READ:
                tally.reads += 1
                if response.status is Status.NOT_FOUND:
                    tally.misses += 1
                elif not response.ok:
                    tally.errors += 1
            elif op.kind is OpKind.DELETE:
                tally.erases += 1
                if not response.ok:
                    tally.errors += 1
                elif response.verified_clean is False:
                    tally.clean = False
            else:
                tally.writes += 1
                if response.status is Status.NOT_FOUND:
                    # UPDATE of a key another client just erased — legal
                    # interleaving, not an error.
                    tally.misses += 1
                elif not response.ok:
                    tally.errors += 1

    threads = [
        threading.Thread(
            target=_client,
            args=(slices[i], tallies[i]),
            name=f"loadgen-client-{i}",
        )
        for i in range(clients)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    latencies = sorted(
        latency for tally in tallies for latency in tally.latencies
    )
    total_ops = len(latencies)
    return LoadgenReport(
        workload=workload.name,
        clients=clients,
        ops=total_ops,
        reads=sum(t.reads for t in tallies),
        writes=sum(t.writes for t in tallies),
        erases=sum(t.erases for t in tallies),
        metadata_ops=sum(t.metadata for t in tallies),
        read_misses=sum(t.misses for t in tallies),
        rejected=sum(t.rejected for t in tallies),
        retries=sum(t.retries for t in tallies),
        errors=sum(t.errors for t in tallies),
        erases_verified_clean=all(t.clean for t in tallies),
        wall_seconds=wall,
        p50_ms=_percentile(latencies, 0.50),
        p99_ms=_percentile(latencies, 0.99),
        mean_ms=(sum(latencies) / total_ops) if total_ops else 0.0,
        ops_per_s=(total_ops / wall) if wall > 0 else 0.0,
    )
