"""Sharded, replicated store — async replication, read repair, elastic
weighted sharding with background (budgeted) rebalancing.

Topology: ``shards`` independent shard groups, each a primary plus
``n_replicas`` asynchronous replicas; keys route to their shard over a
consistent-hash ring (:mod:`repro.distributed.ring`) so the topology can
change *online*: :meth:`ReplicatedStore.resize` / :meth:`add_shard` /
:meth:`remove_shard` / :meth:`reweight` migrate only the ring-affected key
fraction instead of reshuffling the whole keyspace the way modulo routing
would, and per-shard **weights** let heterogeneous-capacity nodes take a
proportional keyspace share.  Every node is a
:class:`~repro.systems.backends.StorageBackend` (``psql``, ``lsm``, or
``crypto-shred``), so the distributed erase story is engine-pluggable: the
same copy-tracking machinery runs over MVCC dead tuples, LSM shadowed
values, or unshredded key volumes.

Replication model (per shard): the primary appends every mutation to a
replication log; a log entry becomes *applicable* at ``now +
replication_lag`` (asynchronous shipping).  Replicas apply their backlog
lazily — whenever they serve a read — mirroring how real async replicas
trail the primary.  Reads may be served from a per-node cache whose entries
expire after ``cache_ttl``, and accept a ``consistency`` level: ``"one"``
(any single node, the legacy fast path), ``"quorum"`` (a majority of the
shard's nodes, force-applying only as much replica backlog as the quorum
needs), or ``"all"``.  Quorum and all reads compare each replica's
``applied_seqno`` against the primary's, so a stale replica can never serve
a value the primary has already erased.

**Read repair**: a quorum/all read that observes replica divergence
(participants behind the primary's seqno) queues a repair for the replicas
still lagging after the read.  Repairs run asynchronously — off the read's
critical path, drained by :meth:`ReplicatedStore.flush_repairs` or by a
:class:`RebalanceDriver` step — and replay the replication log, so a
grounded erase can never be undone by one: erased keys' log values are
scrubbed (their PUT/UPDATE entries replay as no-ops) while their DELETEs
still apply.  Each completed repair is announced as a :class:`RepairEvent`
so the facade can record it as a ``REPAIR`` audit action.

Every location that ever physically held a unit's value is recorded by the
copy tracker — primaries, replicas, caches, the replication log, each
node's write-ahead log, *and keys in flight between shards during a
rebalance* (``CopyLocation.MIGRATION``); the erasure questions of §1 become
queries over it:

* where do copies of X live right now? (:meth:`ReplicatedStore.copies_of`)
* did the naive primary-only delete actually remove X? (it did not —
  :meth:`lingering_copies` lists replicas still holding it, caches still
  serving it, dead data not yet reclaimed on any node, and logs still
  carrying the value);
* run the *grounded* distributed erase and verify nothing lingers
  (:meth:`erase_all_copies`), or amortize a whole Art. 17 stream with
  :meth:`erase_many`, which fans the deletions out per shard and runs **one
  reclamation pass per node per batch** — the same batching the engine-level
  ``erase_many`` helpers use.  Both verify clean even mid-rebalance.

**The dual-routing invariant.**  While a rebalance is in progress two rings
coexist: ring-old (the committed topology) and ring-new (the target).  At
*every* step boundary the store routes so no operation can miss the key's
physical location:

* reads try ring-new first and fall back to ring-old — wherever the copy
  currently lives, one of the two owners has it;
* writes to a key whose copy step has not run yet go to its ring-old source
  (the later export picks them up); all other writes route ring-new;
* erases cover **both** owners and cancel the key's move, so an Art. 17
  request landing mid-migration grounds every site the key ever touched.

**MIGRATION copy-site lifecycle.**  A key move passes through three phases,
each a step boundary the invariant above holds across: *pending* (planned,
not yet copied — the key lives only at its ring-old source), *in flight*
(the copy step exported it to the destination; ``copies_of`` reports a
``CopyLocation.MIGRATION`` site named ``shard-src→shard-dst`` while both
copies physically exist), and *moved* (the ground step ran the source
shard's grounded erase — delete + reclaim + replication-log and WAL scrub —
after which the MIGRATION site disappears and exactly one shard holds the
key again).  Each completed move is announced to
:meth:`add_move_listener` subscribers so the facade can record it as a
``MOVE`` audit action (the *Data Capsule* hazard: compliance must track
data as it moves between processing sites).

Driving a rebalance is either stop-the-world (:meth:`Rebalance.run`) or
**background**: a :class:`RebalanceDriver` advances the same migration in
bounded ``step(budget_keys=…)`` increments so live reads, writes, and
grounded erases interleave with key movement — the concurrent-workload
harness in :mod:`repro.workloads.driver` and ``python -m repro rebalance
--background`` are built on it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from enum import Enum
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro import codec
from repro.config import BackendConfig, StoreConfig
from repro.core.locations import CopyLocation
from repro.crypto.vault import KeyVault
from repro.distributed.antientropy import (
    AntiEntropyReport,
    AntiEntropySweeper,
    RangeRepair,
)
from repro.distributed.faults import (
    FaultInjector,
    QuorumUnavailableError,
    ReplicaDownError,
    ShardUnavailableError,
)
from repro.distributed.ring import DEFAULT_VNODES, HashRing, hash_range_of
from repro.lsm.cache import SharedBlockCache
from repro.lsm.compaction import EMPTY_COMPACTION_STATS, CompactionStats
from repro.sim.costs import CostModel
from repro.storage.errors import TupleNotFoundError
from repro.systems.backends import ExportBatch, StorageBackend, make_backend

TABLE = "replicated_data"

#: Read consistency levels: any single node / a majority of the shard's
#: nodes / every node in the shard.
CONSISTENCY_LEVELS = ("one", "quorum", "all")


class _OpType(Enum):
    PUT = "put"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class _LogEntry:
    seqno: int
    op: _OpType
    key: Any
    value: Any
    ready_at: int  # model time when a replica may apply it
    scrubbed: bool = False  # value redacted by a grounded erase


# CopyLocation historically declared here; it now lives in
# repro.core.locations (one enum every storage layer can import without
# cycles) and is re-exported above, unchanged, for existing importers.


@dataclass
class CacheEntry:
    value: Any
    cached_at: int
    expires_at: int


@dataclass(frozen=True)
class DistributedEraseReport:
    """What the grounded distributed erase did."""

    key: Any
    nodes_deleted: int
    caches_invalidated: int
    dead_tuples_vacuumed: int
    verified_clean: bool
    log_values_scrubbed: int = 0
    shard: int = 0


@dataclass(frozen=True)
class BatchEraseReport:
    """What a batch distributed erase did, aggregated over shards.

    ``reclamations`` counts reclamation passes actually run — with N shards
    of R+1 nodes each and K keys, the batch path runs at most
    ``shards_touched × (R+1)`` passes instead of ``K × (R+1)``.
    ``shard_seconds`` is the simulated work per shard touched (shard-index
    order); shards are independent groups, so its max is the critical path
    a parallel deployment waits for.
    """

    n_keys: int
    shards_touched: int
    nodes_deleted: int
    caches_invalidated: int
    dead_tuples_vacuumed: int
    log_values_scrubbed: int
    reclamations: int
    verified_clean: bool
    shard_seconds: Tuple[float, ...] = ()


@dataclass(frozen=True)
class ReplicaChangeReport:
    """What :meth:`ReplicatedStore.set_replicas` did, summed over shards.

    ``catchup_entries`` counts scrubbed-log entries joining replicas
    replayed (their only bootstrap path — an erased value cannot ride in);
    ``grounded_values`` counts live values grounded off leaving replicas
    before they left ``copies_of``'s world.
    """

    replicas_before: int
    replicas_after: int
    shards: int
    added: int
    removed: int
    catchup_entries: int
    grounded_values: int


@dataclass(frozen=True)
class RepairEvent:
    """One completed read repair: lagging replicas re-synced after a
    quorum/all read observed divergence.

    A repair replays the shard's replication log up to the seqno the read
    observed, so it can never undo a grounded erase: an erased key's log
    values are scrubbed (its PUT/UPDATE entries replay as no-ops) and its
    DELETE entries still apply.  ``key`` names the read that observed the
    divergence — the unit the facade's REPAIR audit action speaks about.
    """

    key: Any
    shard: int
    replicas_repaired: int
    entries_applied: int
    at: int  # model time the repair completed


@dataclass(frozen=True)
class MoveEvent:
    """One completed, grounded key move between shards.

    Emitted only after the source shard's grounded erase verified — the
    moment at which exactly one shard holds the key again.
    """

    key: Any
    source: int
    dest: int
    at: int  # model time the move was grounded


@dataclass(frozen=True)
class RebalanceReport:
    """What an online rebalance did, end to end.

    ``moved_fraction`` is ``keys_moved / keys_examined`` — consistent-hash
    routing keeps it near K/N for a one-shard topology change, where modulo
    routing would move nearly everything.  ``verified_clean`` asserts every
    source-side copy of every moved key was grounded away, and (for shard
    removals) that the drained shards hold nothing at all.
    """

    keys_examined: int
    keys_moved: int
    keys_skipped: int  # planned but erased/dead before their batch ran
    batches: int
    shards_from: Tuple[int, ...]
    shards_to: Tuple[int, ...]
    moved_fraction: float
    verified_clean: bool
    seconds: float
    #: Keys with no live value at the source (naive-deleted, residues still
    #: on replicas/caches/logs) whose ownership changed: nothing to copy,
    #: but the source's physical leftovers were ground-erased — otherwise
    #: the ring swap would orphan them invisibly.
    keys_grounded_residue: int = 0


class _Node:
    """One storage node: a backend plus a read cache."""

    def __init__(
        self,
        name: str,
        cost: CostModel,
        row_bytes: int,
        config: BackendConfig,
        extras: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.name = name
        opts = config.backend_kwargs()
        # ``extras`` carries injected *objects* the store pools across its
        # nodes (a SharedBlockCache, a KeyVault) — deliberately not config
        # fields (configs stay declarative/comparable).
        opts.update(extras or {})
        if config.backend == "psql":
            opts.setdefault("table", TABLE)
            opts.setdefault("wal_checkpoint_every", 5_000)
        elif config.backend == "lsm" and "block_cache" in opts:
            # Nodes sharing one block cache must not share cache entries:
            # each node is a distinct physical machine, so its cached
            # copies are tracked (and invalidated) under its own name.
            opts.setdefault("namespace", name)
        self.backend: StorageBackend = make_backend(
            config.backend, cost, row_bytes=row_bytes, **opts
        )
        #: The raw engine object — exposed for forensics and fault injection.
        self.engine = getattr(self.backend, "engine", None)
        self.cache: Dict[Any, CacheEntry] = {}
        self.applied_seqno = 0
        #: Crash-stop flag: a down node is unreachable *and* its storage is
        #: gone (``backend``/``engine`` dropped) — revival builds a fresh
        #: node that bootstraps from the scrubbed replication log.
        self.down = False

    def crash(self) -> None:
        """Crash-stop with storage loss.  The node's heap, WAL, private
        cache, and pooled block-cache share all go with the machine — and
        so does its slice of the pooled cache's *capacity ledger*: the
        namespace is invalidated so a crashed node's cached values cannot
        linger as untracked physical copies."""
        cache = getattr(self.engine, "_block_cache", None)
        token = getattr(self.engine, "_cache_token", None)
        if cache is not None and token is not None:
            cache.invalidate_namespace(token)
        self.down = True
        self.cache.clear()
        self.backend = None  # type: ignore[assignment]
        self.engine = None

    def heap_holds(self, key: Any) -> bool:
        """Live *or dead* physical entries count — retention is physical."""
        return any(k == key for k, _live in self.backend.forensic_scan())

    def heap_sites(self, key: Any) -> List[str]:
        """Named physical sites holding the key's value.

        Engines that can enumerate their physical layout (LSM: memtable +
        per-level SSTables) report one site per copy, so ``copies_of``
        reflects every pre-compaction SSTable copy until a rewrite removes
        it; engines without that granularity report one anonymous site when
        the heap holds the key at all.
        """
        sites = getattr(self.backend, "copy_sites", None)
        if sites is not None:
            return sites(key)
        return [""] if self.heap_holds(key) else []

    def log_holds(self, key: Any) -> bool:
        """Whether the node's WAL still retains the key's row image."""
        return self.backend.log_holds_value(key)


class _Shard:
    """One replication group: a primary, N replicas, and their log."""

    def __init__(
        self,
        index: int,
        cost: CostModel,
        n_replicas: int,
        replication_lag: int,
        cache_ttl: int,
        row_bytes: int,
        config: BackendConfig,
        solo: bool,
        extras: Optional[Mapping[str, Any]] = None,
        repair_sink: Optional[Callable[[int, Any, int], None]] = None,
    ) -> None:
        self.index = index
        self._cost = cost
        self._lag = replication_lag
        self._cache_ttl = cache_ttl
        #: Where a consistent read reports observed divergence so the store
        #: can schedule an asynchronous read repair: ``(shard, key, upto)``.
        self._repair_sink = repair_sink
        # Node-construction parameters are kept: replica elasticity
        # (add/remove/revive) provisions fresh nodes long after __init__.
        self._row_bytes = row_bytes
        self._config = config
        self._extras = extras
        # Single-shard deployments keep the legacy node names.
        self._prefix = prefix = "" if solo else f"shard-{index}/"
        self.primary = _Node(
            f"{prefix}primary", cost, row_bytes, config, extras
        )
        self.replicas = [
            _Node(f"{prefix}replica-{i}", cost, row_bytes, config, extras)
            for i in range(n_replicas)
        ]
        #: Monotonic name counter — names stay unique across add/remove
        #: cycles (a re-used name would alias audit trails and cache
        #: namespaces of two different physical machines).
        self._replica_seq = n_replicas
        self._log: List[_LogEntry] = []
        self._seqno = 0

    # ------------------------------------------------------------- internals
    @property
    def _now(self) -> int:
        return self._cost.clock.now

    def nodes(self) -> Iterator[_Node]:
        """Every node with physical storage: the primary plus live
        replicas.  Down replicas are crash-stopped machines whose storage
        is *gone* — no heap, cache, or WAL to scan, erase, or maintain —
        so every physical iteration skips them by construction."""
        yield self.primary
        yield from (node for node in self.replicas if not node.down)

    def live_replicas(self) -> List[_Node]:
        """Replicas currently up (membership minus crash-stopped nodes)."""
        return [node for node in self.replicas if not node.down]

    def _append_log(self, op: _OpType, key: Any, value: Any) -> None:
        self._seqno += 1
        self._log.append(
            _LogEntry(self._seqno, op, key, value, self._now + self._lag)
        )
        self._cost.charge_log_append()

    def _apply_backlog(
        self, node: _Node, force: bool = False, upto: Optional[int] = None
    ) -> int:
        """Apply every applicable log entry to the replica.

        ``upto`` caps how far the catch-up goes (a quorum read only needs
        the replica at the primary's seqno *as of the read* — not entries
        appended later by concurrent writers).
        """
        if node.down:
            return 0  # crashed machine: nothing to apply onto
        applied = 0
        for entry in self._log:
            if entry.seqno <= node.applied_seqno:
                continue
            if upto is not None and entry.seqno > upto:
                break
            if not force and entry.ready_at > self._now:
                break  # later entries are even younger
            if entry.scrubbed and entry.op is not _OpType.DELETE:
                pass  # value redacted by erase; the delete entry follows
            elif entry.op is _OpType.PUT:
                node.backend.insert(entry.key, entry.value)
            elif entry.op is _OpType.UPDATE:
                node.backend.update(entry.key, entry.value)
            else:
                try:
                    node.backend.delete(entry.key)
                except TupleNotFoundError:
                    pass  # never replicated in the first place
                node.cache.pop(entry.key, None)
            node.applied_seqno = entry.seqno
            applied += 1
        return applied

    # ----------------------------------------------------------------- writes
    def put(self, key: Any, value: Any) -> None:
        self.primary.backend.insert(key, value)
        self._append_log(_OpType.PUT, key, value)

    def update(self, key: Any, value: Any) -> None:
        self.primary.backend.update(key, value)
        self._append_log(_OpType.UPDATE, key, value)

    def naive_delete(self, key: Any) -> None:
        self.primary.backend.delete(key)
        self._append_log(_OpType.DELETE, key, None)

    # ------------------------------------------------------------------ reads
    def read(
        self,
        key: Any,
        replica: Optional[int] = None,
        use_cache: bool = True,
        consistency: str = "one",
    ) -> Any:
        if consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"unknown consistency {consistency!r}; "
                f"choose from {CONSISTENCY_LEVELS}"
            )
        if consistency != "one":
            if replica is not None:
                raise ValueError(
                    "pinning a replica requires consistency='one'"
                )
            return self._read_consistent(key, consistency, use_cache)
        node = self.primary if replica is None else self.replicas[replica]
        if node.down:
            raise ReplicaDownError(
                f"replica {node.name!r} is down (crash-stopped)"
            )
        if node is not self.primary:
            self._apply_backlog(node)
        if use_cache:
            entry = node.cache.get(key)
            if entry is not None:
                if entry.expires_at >= self._now:
                    self._cost.charge_tuple_cpu()
                    return entry.value
                del node.cache[key]
        try:
            value = node.backend.read(key)
        except TupleNotFoundError:
            # Never cache a miss: after a grounded erase the negative probe
            # must not replant a CACHE entry that copies_of would then
            # report as a copy of the erased key.
            node.cache.pop(key, None)
            raise
        if use_cache:
            node.cache[key] = CacheEntry(
                value, self._now, self._now + self._cache_ttl
            )
        return value

    def _read_consistent(self, key: Any, consistency: str, use_cache: bool) -> Any:
        """Quorum / all read: a majority (or all) of the shard's nodes must
        agree, replica ``applied_seqno`` compared against the primary's.

        The most-caught-up replicas are chosen first and force-applied only
        up to the primary's seqno as of the read — the minimum catch-up the
        quorum needs — so a replica whose backlog still holds the victim's
        DELETE applies it *before* answering, and an erased value is never
        served.
        """
        # Quorum is over *membership*, not over whoever happens to be up:
        # a killed replica still counts toward n so the majority threshold
        # cannot silently shrink to "whatever survived".  Only live
        # replicas can participate; if too few remain, fail fast.
        n_nodes = 1 + len(self.replicas)
        needed = n_nodes if consistency == "all" else n_nodes // 2 + 1
        live = self.live_replicas()
        if 1 + len(live) < needed:
            raise QuorumUnavailableError(
                f"{consistency} read needs {needed} of {n_nodes} nodes; "
                f"only {1 + len(live)} reachable on shard {self.index}"
            )
        target = self._seqno
        diverged = any(n.applied_seqno < target for n in live)
        chosen = sorted(
            live, key=lambda n: n.applied_seqno, reverse=True
        )[: needed - 1]
        for node in chosen:
            if node.applied_seqno < target:
                self._apply_backlog(node, force=True, upto=target)
        # Collect (seqno, found, value) per participant; the newest answer
        # wins and the primary — always at `target` — is authoritative.
        answers: List[Tuple[int, bool, Any]] = []
        for node in [self.primary, *chosen]:
            seqno = target if node is self.primary else node.applied_seqno
            try:
                answers.append((seqno, True, node.backend.read(key)))
            except TupleNotFoundError:
                answers.append((seqno, False, None))
        _seq, found, value = max(answers, key=lambda a: a[0])
        # Read repair: the read observed divergence and some replicas are
        # *still* behind target (the quorum only force-applied its own
        # participants).  Report it so the store can re-sync the laggards
        # asynchronously — off this read's critical path.  A miss queues
        # nothing: an erased key must not earn post-erase repair records.
        if (
            found
            and diverged
            and self._repair_sink is not None
            and any(n.applied_seqno < target for n in self.live_replicas())
        ):
            self._repair_sink(self.index, key, target)
        if not found:
            raise TupleNotFoundError(
                f"no live value for key {key!r} at {consistency} consistency"
            )
        if use_cache:
            self.primary.cache[key] = CacheEntry(
                value, self._now, self._now + self._cache_ttl
            )
        return value

    # -------------------------------------------------------------- migration
    def live_keys(self) -> List[Any]:
        """Every key with a live value on the primary (repr-ordered)."""
        return sorted(
            {k for k, live in self.primary.backend.forensic_scan() if live},
            key=repr,
        )

    def export_items(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, Any]]:
        """Live ``(key, value)`` pairs selected by ``predicate``, via the
        primary's bulk export hook."""
        return self.primary.backend.export_range(predicate)

    def import_items(self, items: Sequence[Tuple[Any, Any]]) -> int:
        """Destination side of a migration: bulk-import at the primary and
        log the PUTs so replicas pick the keys up through replication."""
        items = list(items)
        count = self.primary.backend.import_batch(items)
        for key, value in items:
            self._append_log(_OpType.PUT, key, value)
        return count

    def open_export_encoded(
        self, predicate: Callable[[Any], bool], name: str = "export"
    ) -> ExportBatch:
        """Open a *tracked* encoded export on the primary: the batch's
        blobs stream shard-to-shard without a decode/re-encode hop, and
        while it is open every unit it carries reports a ``MIGRATION``
        copy site (a grounded erase scrubs the unit out of the batch)."""
        return self.primary.backend.open_export(predicate, name=name)

    def import_items_encoded(self, items: Sequence[Tuple[Any, bytes]]) -> int:
        """Destination side of an encoded migration: the primary writes the
        blobs natively (no re-encode); the replication log still needs the
        decoded values so replicas can apply the PUTs."""
        items = list(items)
        count = self.primary.backend.import_encoded_batch(items)
        for key, blob in items:
            self._append_log(_OpType.PUT, key, codec.decode(blob))
        return count

    def physically_present_keys(self) -> List[Any]:
        """Every key with *any* physical trace on the shard — live or dead
        heap entries on any node, cache entries, and valued replication-log
        entries.  The rebalance planner uses this superset of
        :meth:`live_keys` so a key with no live value but lingering
        residues still gets grounded when its ownership moves."""
        present: Set[Any] = set()
        for node in self.nodes():
            present.update(k for k, _live in node.backend.forensic_scan())
            present.update(node.cache)
        present.update(
            e.key
            for e in self._log
            if e.op is not _OpType.DELETE and not e.scrubbed
        )
        return sorted(present, key=repr)

    def holds_any(self, keys: Sequence[Any]) -> List[Any]:
        """Subset of ``keys`` still physically present anywhere on the shard
        — one forensic pass per node instead of one per key (the batch
        verification the migration's per-batch grounding uses)."""
        wanted: Set[Any] = set(keys)
        found: Set[Any] = set()
        for node in self.nodes():
            for k, _live in node.backend.forensic_scan():
                if k in wanted:
                    found.add(k)
            found |= wanted & set(node.cache)
            for k in wanted - found:
                if node.log_holds(k):
                    found.add(k)
        for entry in self._log:
            if (
                entry.key in wanted
                and entry.op is not _OpType.DELETE
                and not entry.scrubbed
            ):
                found.add(entry.key)
        return sorted(found, key=repr)

    def decommission(self) -> None:
        """Drain-side teardown for a shard leaving the topology: force the
        replicas past the whole log, reclaim every node (WAL scrub
        included), drop the caches, and redact every remaining valued log
        entry — the shard must hold *nothing* before it is dropped."""
        for node in self.replicas:
            self._apply_backlog(node, force=True)
        for node in self.nodes():
            node.cache.clear()
            node.backend.reclaim()
        for i, entry in enumerate(self._log):
            if entry.op is not _OpType.DELETE and not entry.scrubbed:
                self._log[i] = replace(entry, value=None, scrubbed=True)

    def holds_nothing(self) -> bool:
        """Whether the shard retains no value anywhere (decommission check)."""
        for node in self.nodes():
            stats = node.backend.stats()
            if stats.live_entries or stats.dead_entries or node.cache:
                return False
        return not any(
            e.op is not _OpType.DELETE and not e.scrubbed for e in self._log
        )

    # -------------------------------------------------------------- forensics
    def copies_of(self, key: Any) -> List[Tuple[CopyLocation, str]]:
        found: List[Tuple[CopyLocation, str]] = []
        for node in self.nodes():
            role = (
                CopyLocation.PRIMARY
                if node is self.primary
                else CopyLocation.REPLICA
            )
            for site in node.heap_sites(key):
                name = node.name if not site else f"{node.name}[{site}]"
                found.append((role, name))
            if key in node.cache:
                found.append((CopyLocation.CACHE, node.name))
            # Backends that type their own recovery-log sites report them
            # through copy_locations below; the probe-based fallback would
            # double-count the same log segment for those.
            if not node.backend.reports_typed_wal_sites and node.log_holds(key):
                found.append((CopyLocation.WAL, node.name))
            # Backend-level secondary sites: shared-block-cache entries,
            # open encoded-export batches, and typed WAL row-image sites.
            for loc, site in node.backend.copy_locations(key):
                found.append((loc, f"{node.name}[{site}]"))
        if self._log_holds_value(key):
            found.append((CopyLocation.LOG, self.primary.name))
        return found

    def _log_holds_value(self, key: Any) -> bool:
        return any(
            e.key == key and e.op is not _OpType.DELETE and not e.scrubbed
            for e in self._log
        )

    def _scrub_log(self, key: Any) -> int:
        """Redact the value from every log entry for ``key``.

        Safe only once every replica has applied those entries (the erase
        barrier force-applies first); scrubbed PUT/UPDATE entries become
        no-ops on replay.
        """
        scrubbed = 0
        for i, entry in enumerate(self._log):
            # DELETE entries never carried a value — nothing to redact.
            if (
                entry.key == key
                and entry.op is not _OpType.DELETE
                and not entry.scrubbed
            ):
                self._log[i] = replace(entry, value=None, scrubbed=True)
                scrubbed += 1
        return scrubbed

    # ---------------------------------------------------------------- erasure
    def _reclaim_node(self, node: _Node) -> int:
        """One reclamation pass; returns the dead entries it made
        unrecoverable (and scrubs the node's WAL as a side effect)."""
        dead = node.backend.stats().dead_entries
        node.backend.reclaim()
        return dead

    def _delete_everywhere(self, key: Any) -> Tuple[int, int]:
        """Logical deletes + cache invalidation on every node (no reclaim).

        Returns ``(nodes_deleted, caches_invalidated)``.  Replicas must be
        force-applied past the key's log entries *before* calling.
        """
        nodes_deleted = 0
        caches = 0
        for node in self.nodes():
            if key in node.cache:
                caches += 1
            if node is self.primary:
                if node.backend.exists(key):
                    node.backend.delete(key)
                    self._append_log(_OpType.DELETE, key, None)
                    nodes_deleted += 1
            elif node.backend.exists(key):
                # The hot path of a batch erase: the erase barrier only
                # caught replicas up to pre-batch entries, so this batch's
                # DELETEs have not replicated yet — delete directly.
                node.backend.delete(key)
                nodes_deleted += 1
            node.cache.pop(key, None)
            node.backend.scrub_exports([key])
        return nodes_deleted, caches

    def erase_all_copies(self, key: Any) -> DistributedEraseReport:
        """The grounded distributed erase: track and delete every copy."""
        # Count cache copies before the erase barrier touches them.
        caches = sum(1 for node in self.nodes() if key in node.cache)
        nodes_deleted = 0
        if self.primary.backend.exists(key):
            self.primary.backend.delete(key)
            self._append_log(_OpType.DELETE, key, None)
            nodes_deleted += 1
        self.primary.cache.pop(key, None)
        self.primary.backend.scrub_exports([key])
        vacuumed = self._reclaim_node(self.primary)
        # Down replicas are skipped: a crash-stopped machine holds nothing
        # physical to erase, and its eventual revival bootstraps from the
        # log this erase is about to scrub — so it comes back clean too.
        for node in self.live_replicas():
            self._apply_backlog(node, force=True)
            if node.backend.exists(key):  # pragma: no cover - safety
                node.backend.delete(key)
                nodes_deleted += 1
            node.cache.pop(key, None)
            node.backend.scrub_exports([key])
            vacuumed += self._reclaim_node(node)
        # Every replica is now caught up past the key's log entries, so the
        # values they carried can be redacted — the log is a copy location
        # (§1) and must not outlive the erase.
        scrubbed = self._scrub_log(key)
        return DistributedEraseReport(
            key=key,
            nodes_deleted=nodes_deleted,
            caches_invalidated=caches,
            dead_tuples_vacuumed=vacuumed,
            verified_clean=not self.copies_of(key),
            log_values_scrubbed=scrubbed,
            shard=self.index,
        )

    def erase_many(self, keys: Sequence[Any]) -> Tuple[int, int, int, int, int]:
        """Batch grounded erase within the shard: every key is logically
        deleted on every node, then each node reclaims **once**.

        Returns ``(nodes_deleted, caches, vacuumed, scrubbed, reclaims)``.
        """
        # Erase barrier first: replicas catch up past every victim's
        # entries so the deletes and the log scrub are safe.
        for node in self.live_replicas():
            self._apply_backlog(node, force=True)
        nodes_deleted = 0
        caches = 0
        for key in keys:
            d, c = self._delete_everywhere(key)
            nodes_deleted += d
            caches += c
        # Force the just-appended DELETE entries onto the replicas too, so
        # no replica resurrects a victim later.
        for node in self.live_replicas():
            self._apply_backlog(node, force=True)
        vacuumed = 0
        reclaims = 0
        for node in self.nodes():
            vacuumed += self._reclaim_node(node)
            reclaims += 1
        scrubbed = sum(self._scrub_log(key) for key in keys)
        return nodes_deleted, caches, vacuumed, scrubbed, reclaims

    def replication_backlog(self, replica: int) -> int:
        node = self.replicas[replica]
        if node.down:
            raise ReplicaDownError(
                f"replica {node.name!r} is down (crash-stopped)"
            )
        return sum(1 for e in self._log if e.seqno > node.applied_seqno)

    # ----------------------------------------------------- replica elasticity
    def _make_replica_node(self, name: Optional[str] = None) -> _Node:
        """A fresh, empty replica node (no name re-use unless asked)."""
        if name is None:
            name = f"{self._prefix}replica-{self._replica_seq}"
            self._replica_seq += 1
        return _Node(
            name, self._cost, self._row_bytes, self._config, self._extras
        )

    def add_replica(self) -> int:
        """Join a fresh replica and catch it up by replaying the shard's
        replication log — the *scrubbed* log, so an erased value can never
        ride in on a new machine: the victim's PUT/UPDATE entries replay as
        no-ops and its DELETEs still apply.  Returns entries replayed."""
        node = self._make_replica_node()
        self.replicas.append(node)
        return self._apply_backlog(node, force=True)

    def remove_replica(self, index: int) -> int:
        """Grounded leave: every physical copy on the departing replica is
        erased — live values deleted, cache dropped, one reclamation pass
        (dead tuples + WAL scrub) — before the node leaves ``copies_of``'s
        world.  Returns the live values grounded.  Removing a down replica
        is a pure membership change (its storage died with the machine)."""
        node = self.replicas[index]
        if node.down:
            self.replicas.pop(index)
            return 0
        victims = sorted(
            {k for k, live in node.backend.forensic_scan() if live}, key=repr
        )
        for key in victims:
            node.backend.delete(key)
        node.cache.clear()
        node.backend.scrub_exports(victims)
        node.backend.reclaim()
        self.replicas.pop(index)
        return len(victims)

    # --------------------------------------------------------- fault handling
    def kill_replica(self, index: int) -> None:
        """Crash-stop one replica (storage loss; membership unchanged)."""
        node = self.replicas[index]
        if node.down:
            raise KeyError(f"replica {node.name!r} is already down")
        node.crash()

    def revive_replica(self, index: int) -> int:
        """Replace a crashed replica with a fresh machine under the same
        name and bootstrap it from the scrubbed replication log — recovery
        is state transfer from the durable log, never a resurrected disk.
        Returns the log entries replayed."""
        dead = self.replicas[index]
        if not dead.down:
            raise KeyError(f"replica {dead.name!r} is not down")
        node = self._make_replica_node(name=dead.name)
        self.replicas[index] = node
        return self._apply_backlog(node, force=True)

    def resync_range(
        self, range_index: int, n_ranges: int
    ) -> Tuple[int, int]:
        """Heal one keyspace arc on every live replica — the repair half of
        the anti-entropy loop (:mod:`repro.distributed.antientropy`).

        Two phases, both erasure-safe by construction: first the replica
        force-applies its full backlog (scrubbed entries replay as no-ops),
        then any *remaining* divergence in the arc — state the log cannot
        explain, i.e. out-of-band corruption or loss — is fixed directly
        from the primary's live values: missing/differing keys overwritten,
        stray keys deleted and reclaimed.  A grounded-erased value is live
        nowhere on the primary, so neither phase can resurrect it.

        Returns ``(replicas_repaired, entries_fixed)`` where entries counts
        log entries applied plus keys directly overwritten/deleted.
        """
        def in_arc(key: Any) -> bool:
            return hash_range_of(key, n_ranges) == range_index

        want = dict(self.primary.backend.export_range(in_arc))
        repaired = 0
        entries = 0
        for node in self.live_replicas():
            fixed = self._apply_backlog(node, force=True)
            have = dict(node.backend.export_range(in_arc))
            strays = [k for k in have if k not in want]
            for key in strays:
                node.backend.delete(key)
                node.cache.pop(key, None)
                fixed += 1
            for key, value in want.items():
                if key not in have:
                    node.backend.insert(key, value)
                    fixed += 1
                elif have[key] != value:
                    node.backend.update(key, value)
                    node.cache.pop(key, None)
                    fixed += 1
            if strays:
                # Direct deletes leave dead entries outside the erase
                # path's reclamation; ground them before reporting healed.
                node.backend.reclaim()
            if fixed:
                repaired += 1
                entries += fixed
        return repaired, entries


class Rebalance:
    """One online topology change, migrated batch by batch.

    Built by :meth:`ReplicatedStore.begin_resize` (and the ``add`` /
    ``remove`` variants); :meth:`run` drives it to completion, or
    :meth:`step` advances one half-batch at a time so callers can interleave
    traffic — reads, writes, and erases all keep working mid-rebalance.

    Each batch takes two steps.  The *copy* step exports the batch from its
    source shard (``StorageBackend.export_range``) and imports it at the
    destination (``import_batch`` + replication-log PUTs); from that moment
    the keys are in flight and ``copies_of`` reports a ``MIGRATION`` site
    for each.  The *ground* step runs the source shard's grounded batch
    erase — delete on every node, one reclamation pass per node, replication
    log scrubbed — verifies the source holds nothing, and emits a
    :class:`MoveEvent` per key.  A key erased by the compliance layer while
    pending or in flight is cancelled: the erase already grounded both
    sides, so the migration skips it.
    """

    def __init__(
        self,
        store: "ReplicatedStore",
        new_ring: HashRing,
        added: Sequence[int],
        removed: Sequence[int],
        batch_size: int,
    ) -> None:
        self._store = store
        self.old_ring = store._ring
        self.new_ring = new_ring
        self.added = tuple(added)
        self.removed = tuple(removed)
        self._t0 = store._cost.clock.now
        self._pending: Dict[Any, Tuple[int, int]] = {}
        self._in_flight: Dict[Any, Tuple[int, int]] = {}
        self._cancelled: Set[Any] = set()
        self._moved = 0
        self._skipped = 0
        self._batches_run = 0
        self._clean = True
        self._grounded_residue = 0
        self._last_step_keys = 0
        #: The last :meth:`step` could not progress: the batch it must run
        #: names a partitioned shard.  Cleared by the next productive step.
        self._stalled = False
        examined = 0
        plan: Dict[Tuple[int, int], List[Any]] = {}
        residue: Dict[int, List[Any]] = {}
        for src in sorted(store._shards):
            if src in self.added:
                continue  # freshly created — nothing to move off it
            live = set(store._shards[src].live_keys())
            for key in sorted(live, key=repr):
                examined += 1
                dst = new_ring.owner(key)
                if dst != src:
                    self._pending[key] = (src, dst)
                    plan.setdefault((src, dst), []).append(key)
            # Keys with no live value but physical leftovers (a naive
            # delete's dead tuple, lagging replica copy, cache entry, or
            # unscrubbed log value): nothing to copy, but once the ring
            # stops routing here those residues would be orphaned —
            # invisible to copies_of and unreachable by any later erase.
            # Ground them at the source as part of the rebalance.
            for key in store._shards[src].physically_present_keys():
                if key not in live and new_ring.owner(key) != src:
                    residue.setdefault(src, []).append(key)
        self.keys_examined = examined
        #: ("ground", src, src, keys) erases source residues;
        #: ("copy", src, dst, keys) streams a batch to its new owner.
        self._queue: Deque[Tuple[str, int, int, List[Any]]] = deque()
        for src, keys in sorted(residue.items()):
            self._queue.append(("ground", src, src, keys))
        for (src, dst), keys in sorted(plan.items()):
            for i in range(0, len(keys), batch_size):
                self._queue.append(("copy", src, dst, keys[i:i + batch_size]))
        # The batch whose copy step ran but whose ground step has not:
        # (src, dst, exported keys, planned-but-dead keys to ground).
        self._current: Optional[Tuple[int, int, List[Any], List[Any]]] = None
        self._report: Optional[RebalanceReport] = None

    # ------------------------------------------------------------- inspection
    @property
    def done(self) -> bool:
        return self._current is None and not self._queue

    @property
    def report(self) -> Optional[RebalanceReport]:
        """The final report, once the migration has finalized."""
        return self._report

    @property
    def stalled(self) -> bool:
        """Whether the last step was blocked by a partitioned shard.  Work
        remains, but no batch can run until the partition heals — a driver
        should back off instead of spinning."""
        return self._stalled

    def _partitioned(self, shard_index: int) -> bool:
        """Migration traffic honors partitions like client traffic does."""
        injector = getattr(self._store, "_fault_injector", None)
        return injector is not None and injector.is_partitioned(shard_index)

    @property
    def keys_pending(self) -> int:
        """Keys planned to move whose copy step has not run yet."""
        return len(self._pending)

    @property
    def keys_in_flight(self) -> int:
        """Keys copied to their destination but not yet grounded at source."""
        return len(self._in_flight)

    @property
    def keys_moved(self) -> int:
        """Keys fully migrated so far (copied *and* grounded at the source).

        Every increment emits a :class:`MoveEvent`, so the audit trail a
        move listener accumulates must stay equal to this counter — the
        runtime invariant registry checks exactly that."""
        return self._moved

    @property
    def last_step_keys(self) -> int:
        """Keys the most recent :meth:`step` copied or grounded — what a
        :class:`RebalanceDriver` charges against its budget."""
        return self._last_step_keys

    def owners(self, key: Any) -> Tuple[int, int]:
        """(ring-old owner, ring-new owner) for the key."""
        return self.old_ring.owner(key), self.new_ring.owner(key)

    def in_flight_route(self, key: Any) -> Optional[Tuple[int, int]]:
        return self._in_flight.get(key)

    def is_pending(self, key: Any) -> bool:
        """Whether the key is planned to move but not yet copied."""
        return key in self._pending

    # ---------------------------------------------------------------- routing
    def route_read(self, key: Any) -> Tuple[int, int]:
        """Dual routing: try ring-new first, fall back to ring-old."""
        old, new = self.owners(key)
        return new, old

    def route_write(self, key: Any) -> int:
        """Writes to a not-yet-copied key go to its source shard (they are
        picked up by the later export); everything else routes ring-new."""
        if key in self._pending:
            return self._pending[key][0]
        return self.new_ring.owner(key)

    def cancel(self, key: Any) -> None:
        """An erase beat the migration to this key — stop tracking it."""
        pending = self._pending.pop(key, None)
        in_flight = self._in_flight.pop(key, None)
        if pending is not None or in_flight is not None:
            self._cancelled.add(key)

    # -------------------------------------------------------------- execution
    def step(self) -> bool:
        """Advance one half-batch; returns False when no work remains.

        The step that exhausts the plan also finalizes — commits the new
        ring, decommissions drained shards, clears the store's rebalance
        state — so driving with ``while r.step(): pass`` is equivalent to
        :meth:`run` (whose report is then available via :attr:`report`).
        """
        if self._report is not None:
            return False
        self._last_step_keys = 0
        self._stalled = False
        store = self._store
        if self._current is not None:
            src, dst, keys, dead = self._current
            if self._partitioned(src):
                # The in-flight batch must ground at its source before any
                # other work — and the source is unreachable.  Stall.
                self._stalled = True
                return True
            victims = [k for k in keys if k not in self._cancelled]
            # Planned keys that died between planning and export carry no
            # live value to move, but their source residues (dead tuples,
            # lagging replica copies, log values) are grounded with the
            # batch — the ring is about to stop routing here.
            ground = victims + [k for k in dead if k not in self._cancelled]
            self._last_step_keys = len(ground)
            if ground:
                store._shards[src].erase_many(ground)
                if store._shards[src].holds_any(ground):
                    self._clean = False
            now = store._cost.clock.now
            for key in victims:
                self._in_flight.pop(key, None)
                self._moved += 1
                store._emit_move(MoveEvent(key, src, dst, now))
            self._current = None
            self._batches_run += 1
            if self.done and not self._try_finalize():
                self._stalled = True
            return True
        while self._queue:
            kind, src, dst, keys = self._queue[0]
            if self._partitioned(src) or (
                kind == "copy" and self._partitioned(dst)
            ):
                # Head-of-line stall: batches are ordered (a shard's
                # residue grounds before its keys stream out), so the
                # migration waits for the heal rather than reordering.
                self._stalled = True
                return True
            self._queue.popleft()
            if kind == "ground":
                keys = [k for k in keys if k not in self._cancelled]
                if not keys:
                    continue
                store._shards[src].erase_many(keys)
                if store._shards[src].holds_any(keys):
                    self._clean = False  # pragma: no cover - safety net
                self._grounded_residue += len(keys)
                self._last_step_keys = len(keys)
                self._batches_run += 1
                if self.done and not self._try_finalize():
                    self._stalled = True  # pragma: no cover - safety net
                return True
            keys = [k for k in keys if k in self._pending]
            if not keys:
                continue
            wanted = set(keys)
            # Encoded transport: the source hands out its stored blobs (no
            # decode), the destination writes them natively (no re-encode).
            # The open batch is a tracked MIGRATION copy site until the
            # import lands and the ``with`` block releases it.
            with store._shards[src].open_export_encoded(
                lambda k: k in wanted, name=f"rebalance:{src}->{dst}"
            ) as batch:
                items = batch.items
                exported = {k for k, _b in items}
                dead = []
                for key in keys:
                    self._pending.pop(key, None)
                    if key in exported:
                        self._in_flight[key] = (src, dst)
                    else:
                        self._skipped += 1  # died (naive-deleted) since planning
                        dead.append(key)
                store._shards[dst].import_items_encoded(items)
            self._current = (src, dst, sorted(exported, key=repr), dead)
            self._last_step_keys = len(keys)
            return True
        # Plan exhausted (or empty from the start): all that remains is
        # committing the topology, which drains removed shards — blocked
        # while any of them is partitioned.
        if not self._try_finalize():
            self._stalled = True
            return True
        return False

    def run(self) -> RebalanceReport:
        """Drive the migration to completion and commit the new topology.

        Stop-the-world driving cannot wait out a partition the way a
        background driver can, so a stall here is an error, not a retry."""
        while self.step():
            if self._stalled:
                raise ShardUnavailableError(
                    "rebalance stalled: a shard it must touch is "
                    "partitioned — heal it or drive in the background"
                )
        if self._report is None:  # pragma: no cover - safety net
            self._finalize()
        return self._report

    def _try_finalize(self) -> bool:
        """Finalize unless a removed shard is partitioned (its drain-side
        decommission must not mutate an unreachable machine)."""
        if any(self._partitioned(sid) for sid in self.removed):
            return False
        self._finalize()
        return True

    def _finalize(self) -> RebalanceReport:
        if self._report is not None:
            return self._report
        store = self._store
        for sid in self.removed:
            shard = store._shards[sid]
            shard.decommission()
            if not shard.holds_nothing():
                self._clean = False  # pragma: no cover - safety net
            del store._shards[sid]
        store._ring = self.new_ring
        store._rebalance = None
        examined = self.keys_examined
        self._report = RebalanceReport(
            keys_examined=examined,
            keys_moved=self._moved,
            keys_skipped=self._skipped + len(self._cancelled),
            batches=self._batches_run,
            shards_from=self.old_ring.nodes,
            shards_to=self.new_ring.nodes,
            moved_fraction=(self._moved / examined) if examined else 0.0,
            verified_clean=self._clean,
            seconds=(store._cost.clock.now - self._t0) / 1e6,
            keys_grounded_residue=self._grounded_residue,
        )
        return self._report


class RebalanceDriver:
    """Background rebalancing: advance a migration in bounded increments
    interleaved with live traffic.

    Wraps a :class:`Rebalance` (from the ``begin_*`` stepwise variants) and
    drives it ``budget_keys`` keys at a time: each :meth:`step` advances
    whole half-batches until at least that many keys have been copied or
    grounded, then drains the store's pending read repairs — the background
    maintenance loop a deployment runs between serving requests.  Because a
    batch never splits, a single call overshoots the budget by at most one
    half-batch (``batch_size - 1`` keys); pick ``batch_size <= budget_keys``
    at ``begin_*`` time for tight budgets.

    Reads, writes, and grounded erases stay correct at every step boundary
    — the store dual-routes and tracks ``MIGRATION`` copy sites for as long
    as the driver has work left (see the module docstring for the
    invariant).  The step that exhausts the plan also finalizes the
    topology, exactly like :meth:`Rebalance.run`.
    """

    def __init__(
        self,
        rebalance: Rebalance,
        antientropy: Optional[AntiEntropySweeper] = None,
        sweep_every: int = 4,
    ) -> None:
        if sweep_every < 1:
            raise ValueError("sweep_every must be >= 1")
        self._rebalance = rebalance
        self._store = rebalance._store
        #: Optional anti-entropy loop: every ``sweep_every``-th step runs a
        #: digest sweep before the repair flush, so divergence queued by
        #: the sweep heals in the same step that found it.
        self._antientropy = antientropy
        self._sweep_every = sweep_every
        self.steps = 0
        self.keys_processed = 0
        #: Read repairs completed while driving (flushed after each step).
        self.repairs: List[RepairEvent] = []
        #: Anti-entropy sweep reports, when a sweeper is attached.
        self.sweeps: List[AntiEntropyReport] = []

    @property
    def rebalance(self) -> Rebalance:
        return self._rebalance

    @property
    def done(self) -> bool:
        """Whether the migration has finalized (topology committed)."""
        return self._rebalance.report is not None

    @property
    def stalled(self) -> bool:
        """Whether the migration is currently blocked by a partition."""
        return self._rebalance.stalled

    @property
    def report(self) -> Optional[RebalanceReport]:
        return self._rebalance.report

    def step(self, budget_keys: int = 64) -> int:
        """Advance the migration by roughly ``budget_keys`` keys.

        Returns the number of keys actually copied or grounded this call
        (0 once the rebalance has finalized, or while every runnable batch
        waits on a partitioned shard — check :attr:`stalled`).  Always
        flushes the store's pending read repairs before returning, even
        after completion — the driver doubles as the background repair
        (and, with a sweeper attached, anti-entropy) loop.
        """
        if budget_keys < 1:
            raise ValueError("budget_keys must be >= 1")
        processed = 0
        while processed < budget_keys:
            if not self._rebalance.step():
                break
            if self._rebalance.stalled:
                break  # blocked on a partition — budget can't be spent
            processed += self._rebalance.last_step_keys
        self.steps += 1
        self.keys_processed += processed
        if self._antientropy is not None and self.steps % self._sweep_every == 0:
            self.sweeps.append(self._antientropy.sweep())
        self.repairs.extend(self._store.flush_repairs())
        return processed

    def run(self, budget_keys: int = 64) -> RebalanceReport:
        """Drive to completion in ``budget_keys`` increments.

        Refuses to spin on a partition: a stalled step makes no progress,
        so waiting here would loop forever — heal first, or keep calling
        :meth:`step` from a loop that also heals faults.
        """
        while self._rebalance.report is None:
            self.step(budget_keys)
            if self._rebalance.report is None and self._rebalance.stalled:
                raise ShardUnavailableError(
                    "rebalance stalled: a shard it must touch is "
                    "partitioned — heal it before driving to completion"
                )
        return self._rebalance.report


class ReplicatedStore:
    """``shards`` primaries, each with N asynchronous read-cached replicas,
    over a pluggable storage backend and a weighted consistent-hash ring."""

    def __init__(
        self,
        cost: CostModel,
        n_replicas: int = 2,
        replication_lag: int = 50_000,
        cache_ttl: int = 500_000,
        row_bytes: int = 70,
        shards: int = 1,
        backend: Union[str, BackendConfig] = "psql",
        backend_opts: Optional[Mapping[str, Any]] = None,
        vnodes: int = DEFAULT_VNODES,
        shard_weights: Optional[Mapping[int, float]] = None,
    ) -> None:
        if n_replicas < 0:
            raise ValueError("n_replicas must be non-negative")
        if replication_lag < 0 or cache_ttl < 0:
            raise ValueError("lag and TTL must be non-negative")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._cost = cost
        config = BackendConfig.coerce(
            backend, backend_opts, owner="ReplicatedStore"
        )
        self.backend_name = config.backend
        #: The typed deployment description every node is built from.
        self.backend_config = config
        self._n_replicas = n_replicas
        self._lag = replication_lag
        self._cache_ttl = cache_ttl
        self._row_bytes = row_bytes
        #: Shared physical infrastructure across every node of every shard,
        #: mirroring :class:`repro.systems.backends.BackendGroup`: one
        #: pooled block-cache budget (``BackendConfig(backend="lsm",
        #: shared_block_cache=capacity)``) instead of a private slice per
        #: node, and one key vault (``shared_vault=True`` on crypto-shred)
        #: so every node's per-unit keys co-locate for batched shreds.
        self.block_cache: Optional[SharedBlockCache] = None
        self.vault: Optional[KeyVault] = None
        extras: Dict[str, Any] = {}
        if config.backend == "lsm":
            capacity = config.shared_block_cache_capacity
            if capacity:
                self.block_cache = SharedBlockCache(capacity)
                extras["block_cache"] = self.block_cache
        elif config.backend == "crypto-shred" and config.shared_vault:
            self.vault = KeyVault()
            extras["vault"] = self.vault
        self._node_extras = extras
        self._shards: Dict[int, _Shard] = {
            index: self._make_shard(index, solo=(shards == 1))
            for index in range(shards)
        }
        self._ring = HashRing(
            self._shards, vnodes=vnodes, weights=shard_weights
        )
        self._next_shard_id = shards
        self._rebalance: Optional[Rebalance] = None
        #: Attached by :class:`repro.distributed.faults.FaultInjector` —
        #: ``None`` means no fault layer, every shard reachable.
        self._fault_injector: Optional[FaultInjector] = None
        self._move_listeners: List[Callable[[MoveEvent], None]] = []
        self._repair_listeners: List[Callable[[RepairEvent], None]] = []
        #: Read repairs awaiting their asynchronous run: ``(shard, key)`` →
        #: the highest primary seqno a consistent read observed divergence
        #: against.  Drained by :meth:`flush_repairs`.
        self._pending_repairs: Dict[Tuple[int, Any], int] = {}

    @classmethod
    def from_config(cls, cost: CostModel, config: StoreConfig) -> "ReplicatedStore":
        """Build a store from one declarative :class:`StoreConfig` — the
        construction surface the service layer and ``serve`` CLI use."""
        return cls(
            cost,
            n_replicas=config.n_replicas,
            replication_lag=config.replication_lag,
            cache_ttl=config.cache_ttl,
            row_bytes=config.row_bytes,
            shards=config.shards,
            backend=config.backend,
            vnodes=config.vnodes,
            shard_weights=config.weights_mapping,
        )

    def _make_shard(self, index: int, solo: bool = False) -> _Shard:
        return _Shard(
            index,
            self._cost,
            self._n_replicas,
            self._lag,
            self._cache_ttl,
            self._row_bytes,
            self.backend_config,
            solo=solo,
            extras=self._node_extras,
            repair_sink=self._queue_repair,
        )

    # -------------------------------------------------------------- topology
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._shards))

    @property
    def shard_weights(self) -> Dict[int, float]:
        """Shard id → ring weight (heavier shards own more keyspace)."""
        return self._ring.weights

    @property
    def rebalance_active(self) -> bool:
        """Whether a begun rebalance has not yet finalized — reads and
        erases dual-route while this holds."""
        return self._rebalance is not None

    def shards_involved(self, key: Any) -> Tuple[int, ...]:
        """Every shard a read/write/erase of ``key`` may touch right now
        (sorted).  Outside a rebalance that is the single ring owner;
        mid-rebalance the dual-routing pair (source and destination) — the
        lock scope the service layer's per-shard discipline needs."""
        if self._rebalance is None:
            return (self._ring.owner(key),)
        old, new = self._rebalance.owners(key)
        return tuple(sorted({old, new}))

    def shard_of(self, key: Any) -> int:
        """The shard the key routes to (ring owner; during a rebalance,
        writes to a not-yet-copied key still route to its source shard)."""
        if self._rebalance is not None:
            return self._rebalance.route_write(key)
        return self._ring.owner(key)

    def _shard(self, key: Any) -> _Shard:
        return self._shards[self.shard_of(key)]

    def shards(self) -> Iterator[_Shard]:
        for index in sorted(self._shards):
            yield self._shards[index]

    @property
    def primary(self) -> _Node:
        """Legacy single-shard accessor: the lowest shard's primary."""
        return self._shards[min(self._shards)].primary

    @property
    def replicas(self) -> List[_Node]:
        """Legacy single-shard accessor: the lowest shard's replicas."""
        return self._shards[min(self._shards)].replicas

    @property
    def replica_count(self) -> int:
        """Replicas per shard."""
        return self._n_replicas

    def nodes(self) -> Iterator[_Node]:
        for shard in self.shards():
            yield from shard.nodes()

    # ------------------------------------------------------- fault awareness
    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The attached fault injector, if a harness installed one."""
        return self._fault_injector

    def _check_reachable(self, *shard_indices: int) -> None:
        """Fail fast if any shard a serving-path operation must touch is
        partitioned.  Erase paths call this for *every* involved shard
        before mutating anything, so a partial erase cannot be mistaken
        for a grounded one.  Forensic surfaces (``copies_of``,
        ``lingering_copies``) never call it — the compliance auditor's
        view is global, not routed."""
        injector = self._fault_injector
        if injector is None:
            return
        for index in shard_indices:
            if injector.is_partitioned(index):
                raise ShardUnavailableError(
                    f"shard {index} is partitioned from the router"
                )

    # ----------------------------------------------------- replica elasticity
    def set_replicas(self, n_replicas: int) -> ReplicaChangeReport:
        """Elastically change the per-shard replica count, grounded both
        ways: joining replicas bootstrap by replaying the scrubbed
        replication log (never a resurrected value), and leaving replicas
        have every live copy erased — delete, cache drop, reclamation —
        before they stop being ``copies_of``'s problem.

        Removals drop the highest-index replicas first.  Refused while a
        rebalance is migrating keys (two concurrent topology changes) or
        while any injected fault is active (a crashed replica cannot be
        grounded-removed; heal first).
        """
        if n_replicas < 0:
            raise ValueError("n_replicas must be non-negative")
        if self._rebalance is not None:
            raise RuntimeError(
                "cannot change the replica count mid-rebalance"
            )
        injector = self._fault_injector
        if injector is not None and injector.active_count:
            raise RuntimeError(
                "cannot change the replica count with active faults: "
                f"{', '.join(injector.active_faults)}"
            )
        before = self._n_replicas
        added = removed = 0
        catchup = grounded = 0
        for shard in self.shards():
            while len(shard.replicas) < n_replicas:
                catchup += shard.add_replica()
                added += 1
            while len(shard.replicas) > n_replicas:
                grounded += shard.remove_replica(len(shard.replicas) - 1)
                removed += 1
        self._n_replicas = n_replicas
        return ReplicaChangeReport(
            replicas_before=before,
            replicas_after=n_replicas,
            shards=len(self._shards),
            added=added,
            removed=removed,
            catchup_entries=catchup,
            grounded_values=grounded,
        )

    # ------------------------------------------------------------ antientropy
    def anti_entropy_sweep(
        self, n_ranges: int = 16
    ) -> Tuple[AntiEntropyReport, List[RepairEvent]]:
        """One full anti-entropy cycle: digest-compare every live replica
        against its primary, queue divergent arcs through the read-repair
        queue, and flush it — returning the sweep report and the
        :class:`RepairEvent` s the healing emitted.  For the periodic
        version attach an :class:`AntiEntropySweeper` to a
        :class:`RebalanceDriver` or run the service maintenance tick."""
        report = AntiEntropySweeper(self, n_ranges=n_ranges).sweep()
        return report, self.flush_repairs()

    # ------------------------------------------------------------ maintenance
    def maintain(self, max_bytes: Optional[int] = None) -> int:
        """Run one bounded maintenance slice of deferred backend work
        (compaction on LSM nodes) across every shard node; returns merges
        run.  ``max_bytes`` is a *per-node* input-byte budget — the same
        bounded-slice contract as :meth:`RebalanceDriver.step`, so the
        service maintenance thread can interleave slices with live
        requests without an unbounded stall."""
        merges = 0
        for node in self.nodes():
            merges += node.backend.maintain(max_bytes=max_bytes)
        return merges

    def compaction_stats(self) -> "CompactionStats":
        """Aggregated merge/throttle counters across every shard node."""
        total = EMPTY_COMPACTION_STATS
        for node in self.nodes():
            total = total + node.backend.compaction_stats()
        return total

    @property
    def rebalance_in_progress(self) -> bool:
        return self._rebalance is not None

    # ------------------------------------------------------------ rebalancing
    def add_move_listener(self, listener: Callable[[MoveEvent], None]) -> None:
        """Subscribe to grounded key moves (the facade records them as MOVE
        audit actions)."""
        self._move_listeners.append(listener)

    def _emit_move(self, event: MoveEvent) -> None:
        for listener in self._move_listeners:
            listener(event)

    # ------------------------------------------------------------ read repair
    def add_repair_listener(
        self, listener: Callable[[RepairEvent], None]
    ) -> None:
        """Subscribe to completed read repairs (the facade records them as
        REPAIR audit actions)."""
        self._repair_listeners.append(listener)

    def _emit_repair(self, event: RepairEvent) -> None:
        for listener in self._repair_listeners:
            listener(event)

    def _queue_repair(self, shard_index: int, key: Any, upto: int) -> None:
        """A consistent read observed divergence: remember the laggards'
        catch-up target.  Deduplicated per (shard, key) — repeated diverged
        reads raise the target instead of queueing duplicate work."""
        slot = (shard_index, key)
        self._pending_repairs[slot] = max(
            self._pending_repairs.get(slot, 0), upto
        )

    @property
    def pending_repairs(self) -> int:
        """Read repairs queued but not yet flushed."""
        return len(self._pending_repairs)

    def flush_repairs(self) -> List[RepairEvent]:
        """Run every queued read repair: force-apply each lagging replica's
        backlog up to the seqno its diverged read observed.

        Replaying the log respects grounded erases — a key erased since the
        repair was queued has its log values scrubbed (PUT/UPDATE replay as
        no-ops) and its replicas already force-applied by the erase barrier,
        so the repair finds nothing to do and emits no event; a repaired
        replica can never resurrect an erased value.  Returns the
        :class:`RepairEvent` per (shard, key) that actually re-synced
        something; each is also announced to :meth:`add_repair_listener`
        subscribers."""
        pending, self._pending_repairs = self._pending_repairs, {}
        events: List[RepairEvent] = []
        injector = self._fault_injector
        for (sid, key), upto in sorted(
            pending.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            shard = self._shards.get(sid)
            if shard is None:
                continue  # the shard was decommissioned since the read
            if injector is not None and injector.is_partitioned(sid):
                # Repair traffic honors partitions too: keep the repair
                # queued (at its highest observed target) for the heal.
                slot = (sid, key)
                self._pending_repairs[slot] = max(
                    self._pending_repairs.get(slot, 0), upto
                )
                continue
            if isinstance(key, RangeRepair):
                # An anti-entropy sweep queued a divergent keyspace arc:
                # re-sync it from the primary's live state (backlog replay
                # first, direct overwrite/delete for what the log cannot
                # explain) — see _Shard.resync_range for why this can
                # never resurrect an erased value.
                repaired, entries = shard.resync_range(
                    key.range_index, key.n_ranges
                )
                if repaired:
                    event = RepairEvent(
                        repr(key), sid, repaired, entries,
                        self._cost.clock.now,
                    )
                    events.append(event)
                    self._emit_repair(event)
                continue
            repaired = 0
            entries = 0
            for node in shard.replicas:
                if node.applied_seqno < upto:
                    applied = shard._apply_backlog(node, force=True, upto=upto)
                    if applied:
                        repaired += 1
                        entries += applied
            if repaired:
                event = RepairEvent(
                    key, sid, repaired, entries, self._cost.clock.now
                )
                events.append(event)
                self._emit_repair(event)
        return events

    def _begin(
        self,
        added: Sequence[int],
        removed: Sequence[int],
        batch_size: int,
        weights: Optional[
            Union[Mapping[int, float], Sequence[float]]
        ] = None,
    ) -> Rebalance:
        survivors = [sid for sid in self._shards if sid not in set(removed)]
        weight_map = self._resolve_weights(weights, survivors)
        rebalance = Rebalance(
            self,
            self._ring.with_nodes(survivors, weights=weight_map),
            added,
            removed,
            batch_size,
        )
        self._rebalance = rebalance
        return rebalance

    @staticmethod
    def _resolve_weights(
        weights: Optional[Union[Mapping[int, float], Sequence[float]]],
        survivors: Sequence[int],
    ) -> Optional[Dict[int, float]]:
        """Normalize a weights argument against the target topology.

        A mapping names shard ids explicitly; a plain sequence is zipped
        against the target shard ids in sorted order (convenient for grows,
        where the new ids are assigned by the store).
        """
        if weights is None:
            return None
        if isinstance(weights, Mapping):
            unknown = sorted(set(weights) - set(survivors))
            if unknown:
                raise ValueError(
                    f"weights name shards {unknown} absent from the "
                    f"target topology {sorted(survivors)}"
                )
            return {sid: float(w) for sid, w in weights.items()}
        listed = [float(w) for w in weights]
        ordered = sorted(survivors)
        if len(listed) != len(ordered):
            raise ValueError(
                f"got {len(listed)} weights for {len(ordered)} target "
                "shards; pass one per shard (sorted by shard id) or a "
                "mapping"
            )
        return dict(zip(ordered, listed))

    def _check_can_rebalance(self, batch_size: int) -> None:
        """Every validation, before any shard is spawned or drained — a
        rejected begin_* call must leave the topology untouched."""
        if self._rebalance is not None:
            raise RuntimeError("a rebalance is already in progress")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def begin_resize(
        self,
        shards: int,
        batch_size: int = 64,
        weights: Optional[
            Union[Mapping[int, float], Sequence[float]]
        ] = None,
    ) -> Rebalance:
        """Start an online resize to ``shards`` shard groups.

        Growing spawns fresh shards; shrinking drains the highest-id shards
        into the survivors.  ``weights`` (a shard-id mapping, or one float
        per target shard sorted by id) sets the target ring's capacity
        weights; omitted, surviving shards keep theirs and new shards get
        1.0.  The returned :class:`Rebalance` must be driven (``run()``,
        ``step()`` repeatedly, or a :class:`RebalanceDriver`) to complete
        the change; until then the store dual-routes."""
        self._check_can_rebalance(batch_size)
        if shards < 1:
            raise ValueError("shards must be >= 1")
        current = sorted(self._shards)
        added: List[int] = []
        removed: List[int] = []
        if shards > len(current):
            added = [self._spawn_shard() for _ in range(shards - len(current))]
        elif shards < len(current):
            removed = current[shards:]
        return self._begin(added, removed, batch_size, weights=weights)

    def resize(
        self,
        shards: int,
        batch_size: int = 64,
        weights: Optional[
            Union[Mapping[int, float], Sequence[float]]
        ] = None,
    ) -> RebalanceReport:
        """Online resize, run to completion."""
        return self.begin_resize(
            shards, batch_size=batch_size, weights=weights
        ).run()

    def begin_add_shard(
        self, batch_size: int = 64, weight: float = 1.0
    ) -> Rebalance:
        self._check_can_rebalance(batch_size)
        new = self._spawn_shard()
        return self._begin([new], [], batch_size, weights={new: weight})

    def add_shard(
        self, batch_size: int = 64, weight: float = 1.0
    ) -> RebalanceReport:
        """Grow by one shard (ring weight ``weight``), migrating only the
        ring-affected keys."""
        return self.begin_add_shard(batch_size=batch_size, weight=weight).run()

    def begin_reweight(
        self,
        weights: Union[Mapping[int, float], Sequence[float]],
        batch_size: int = 64,
    ) -> Rebalance:
        """Start an online capacity reweight: same shards, new ring weights.

        Only the arcs that changed hands migrate — a capacity upgrade
        rebalances exactly like a shard-count change, grounded moves and
        all."""
        self._check_can_rebalance(batch_size)
        if not weights:
            raise ValueError("reweight needs at least one shard weight")
        return self._begin([], [], batch_size, weights=weights)

    def reweight(
        self,
        weights: Union[Mapping[int, float], Sequence[float]],
        batch_size: int = 64,
    ) -> RebalanceReport:
        """Online reweight, run to completion."""
        return self.begin_reweight(weights, batch_size=batch_size).run()

    def begin_background_resize(
        self,
        shards: int,
        batch_size: int = 64,
        weights: Optional[
            Union[Mapping[int, float], Sequence[float]]
        ] = None,
    ) -> RebalanceDriver:
        """A :class:`RebalanceDriver` over :meth:`begin_resize` — the
        background, budget-stepped way to drive the same migration."""
        return RebalanceDriver(
            self.begin_resize(shards, batch_size=batch_size, weights=weights)
        )

    def begin_remove_shard(self, index: int, batch_size: int = 64) -> Rebalance:
        self._check_can_rebalance(batch_size)
        if index not in self._shards:
            raise KeyError(f"no shard {index!r}")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        return self._begin([], [index], batch_size)

    def remove_shard(self, index: int, batch_size: int = 64) -> RebalanceReport:
        """Drain shard ``index`` into the survivors and drop it, verified
        clean (grounded erase of every moved key, then decommission)."""
        return self.begin_remove_shard(index, batch_size=batch_size).run()

    def _spawn_shard(self) -> int:
        index = self._next_shard_id
        self._next_shard_id += 1
        self._shards[index] = self._make_shard(index, solo=False)
        return index

    # ----------------------------------------------------------------- writes
    def put(self, key: Any, value: Any) -> None:
        sid = self.shard_of(key)
        self._check_reachable(sid)
        self._shards[sid].put(key, value)

    def update(self, key: Any, value: Any) -> None:
        sid = self.shard_of(key)
        self._check_reachable(sid)
        self._shards[sid].update(key, value)

    def naive_delete(self, key: Any) -> None:
        """The under-specified erase: DELETE at the owning shard's primary,
        replication does the rest *eventually* — replicas and caches keep
        serving and holding the value until lag/TTL/reclamation catch up."""
        sid = self.shard_of(key)
        self._check_reachable(sid)
        self._shards[sid].naive_delete(key)

    # ------------------------------------------------------------------ reads
    def read(
        self,
        key: Any,
        replica: Optional[int] = None,
        use_cache: bool = True,
        consistency: str = "one",
    ) -> Any:
        """Read from the owning shard — primary, one of its replicas, or a
        ``consistency`` level ("one" / "quorum" / "all").  Mid-rebalance the
        read dual-routes: ring-new first, fall back to ring-old."""
        rebalance = self._rebalance
        if rebalance is None:
            sid = self.shard_of(key)
            self._check_reachable(sid)
            return self._shards[sid].read(
                key, replica=replica, use_cache=use_cache, consistency=consistency
            )
        first, fallback = rebalance.route_read(key)
        self._check_reachable(first)
        try:
            return self._shards[first].read(
                key, replica=replica, use_cache=use_cache, consistency=consistency
            )
        except TupleNotFoundError:
            if fallback == first:
                raise
            self._check_reachable(fallback)
            return self._shards[fallback].read(
                key, replica=replica, use_cache=use_cache, consistency=consistency
            )

    # -------------------------------------------------------------- forensics
    def copies_of(self, key: Any) -> List[Tuple[CopyLocation, str]]:
        """Every location physically holding the value right now — live
        entries, dead (unreclaimed) data, cache entries, log/WAL row images
        on the key's owning shard, and (mid-rebalance) both the old and new
        owners plus a MIGRATION site while the move is in flight."""
        rebalance = self._rebalance
        if rebalance is None:
            return self._shard(key).copies_of(key)
        old, new = rebalance.owners(key)
        found = list(self._shards[old].copies_of(key))
        if new != old:
            found.extend(self._shards[new].copies_of(key))
        route = rebalance.in_flight_route(key)
        if route is not None:
            src, dst = route
            found.append((CopyLocation.MIGRATION, f"shard-{src}→shard-{dst}"))
        return found

    def lingering_copies(self, key: Any) -> List[Tuple[CopyLocation, str]]:
        """Copies surviving a delete — the §1 compliance hazard."""
        return self.copies_of(key)

    # ---------------------------------------------------------------- erasure
    def erase_all_copies(self, key: Any) -> DistributedEraseReport:
        """The grounded distributed erase: track and delete every copy on
        the key's shard — primary, replicas, caches, replication log, and
        each node's WAL — then verify via the tracker.  Mid-rebalance the
        erase covers *both* owning shards and cancels the key's move."""
        rebalance = self._rebalance
        if rebalance is None:
            sid = self.shard_of(key)
            self._check_reachable(sid)
            return self._shards[sid].erase_all_copies(key)
        old, new = rebalance.owners(key)
        # Both owners must be reachable *before* anything mutates — a
        # half-erased key (one owner grounded, one frozen behind a
        # partition) must never be reported as erased at all.
        self._check_reachable(old, new)
        rebalance.cancel(key)
        report = self._shards[new].erase_all_copies(key)
        if old != new:
            other = self._shards[old].erase_all_copies(key)
            report = DistributedEraseReport(
                key=key,
                nodes_deleted=report.nodes_deleted + other.nodes_deleted,
                caches_invalidated=(
                    report.caches_invalidated + other.caches_invalidated
                ),
                dead_tuples_vacuumed=(
                    report.dead_tuples_vacuumed + other.dead_tuples_vacuumed
                ),
                verified_clean=not self.copies_of(key),
                log_values_scrubbed=(
                    report.log_values_scrubbed + other.log_values_scrubbed
                ),
                shard=new,
            )
        return report

    def erase_many(self, keys: Sequence[Any]) -> BatchEraseReport:
        """Batch grounded erase: fan the victims out per shard, delete every
        copy, and run **one reclamation pass per node** instead of one per
        key — the distributed analogue of the engine batch helpers.
        Mid-rebalance every victim is erased on both of its owners and its
        move is cancelled."""
        keys = list(keys)
        rebalance = self._rebalance
        # Reachability first, for every involved shard, before any move is
        # cancelled or any copy deleted — the batch grounds atomically with
        # respect to partitions or not at all.
        involved: Set[int] = set()
        for key in keys:
            if rebalance is None:
                involved.add(self.shard_of(key))
            else:
                involved.update(rebalance.owners(key))
        self._check_reachable(*sorted(involved))
        by_shard: Dict[int, List[Any]] = {}
        for key in keys:
            if rebalance is None:
                by_shard.setdefault(self.shard_of(key), []).append(key)
            else:
                old, new = rebalance.owners(key)
                rebalance.cancel(key)
                by_shard.setdefault(new, []).append(key)
                if old != new:
                    by_shard.setdefault(old, []).append(key)
        nodes_deleted = caches = vacuumed = scrubbed = reclaims = 0
        shard_seconds: List[float] = []
        for shard_index, shard_keys in sorted(by_shard.items()):
            before = self._cost.clock.now
            d, c, v, s, r = self._shards[shard_index].erase_many(shard_keys)
            shard_seconds.append((self._cost.clock.now - before) / 1e6)
            nodes_deleted += d
            caches += c
            vacuumed += v
            scrubbed += s
            reclaims += r
        clean = all(not self.copies_of(key) for key in keys)
        return BatchEraseReport(
            n_keys=len(keys),
            shards_touched=len(by_shard),
            nodes_deleted=nodes_deleted,
            caches_invalidated=caches,
            dead_tuples_vacuumed=vacuumed,
            log_values_scrubbed=scrubbed,
            reclamations=reclaims,
            verified_clean=clean,
            shard_seconds=tuple(shard_seconds),
        )

    # ------------------------------------------------------------- statistics
    def replication_backlog(self, replica: int, shard: int = 0) -> int:
        """Log entries the replica has not applied yet."""
        return self._shards[shard].replication_backlog(replica)
