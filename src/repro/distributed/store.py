"""Sharded, replicated store with asynchronous replication and read caches.

Topology: ``shards`` independent shard groups, each a primary plus
``n_replicas`` asynchronous replicas; keys route to their shard by a stable
content hash.  Every node is a :class:`~repro.systems.backends.StorageBackend`
(``psql``, ``lsm``, or ``crypto-shred``), so the distributed erase story is
engine-pluggable: the same copy-tracking machinery runs over MVCC dead
tuples, LSM shadowed values, or unshredded key volumes.

Replication model (per shard): the primary appends every mutation to a
replication log; a log entry becomes *applicable* at ``now +
replication_lag`` (asynchronous shipping).  Replicas apply their backlog
lazily — whenever they serve a read — mirroring how real async replicas
trail the primary.  Reads may be served from a per-node cache whose entries
expire after ``cache_ttl``.

Every location that ever physically held a unit's value is recorded by the
copy tracker — primaries, replicas, caches, the replication log, *and each
node's write-ahead log* (whose INSERT/UPDATE records carry row images until
a grounded erase scrubs them); the erasure questions of §1 become queries
over it:

* where do copies of X live right now? (:meth:`ReplicatedStore.copies_of`)
* did the naive primary-only delete actually remove X? (it did not —
  :meth:`lingering_copies` lists replicas still holding it, caches still
  serving it, dead data not yet reclaimed on any node, and logs still
  carrying the value);
* run the *grounded* distributed erase and verify nothing lingers
  (:meth:`erase_all_copies`), or amortize a whole Art. 17 stream with
  :meth:`erase_many`, which fans the deletions out per shard and runs **one
  reclamation pass per node per batch** — the same batching the engine-level
  ``erase_many`` helpers use.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.sim.costs import CostModel
from repro.storage.errors import TupleNotFoundError
from repro.systems.backends import StorageBackend, make_backend

TABLE = "replicated_data"


class _OpType(Enum):
    PUT = "put"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class _LogEntry:
    seqno: int
    op: _OpType
    key: Any
    value: Any
    ready_at: int  # model time when a replica may apply it
    scrubbed: bool = False  # value redacted by a grounded erase


class CopyLocation(Enum):
    """Where a physical copy of a value can live.

    ``LOG`` is the replication log itself: PUT/UPDATE entries carry the
    value, so the log is a retention location just like any replica — a
    grounded erase must scrub it, or "verified clean" is a lie.  ``WAL`` is
    a node's engine-level write-ahead log, which keeps row images
    replayable until the node's reclamation pass scrubs them — the same
    hazard one storage layer down.
    """

    PRIMARY = "primary"
    REPLICA = "replica"
    CACHE = "cache"
    LOG = "log"
    WAL = "wal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class CacheEntry:
    value: Any
    cached_at: int
    expires_at: int


@dataclass(frozen=True)
class DistributedEraseReport:
    """What the grounded distributed erase did."""

    key: Any
    nodes_deleted: int
    caches_invalidated: int
    dead_tuples_vacuumed: int
    verified_clean: bool
    log_values_scrubbed: int = 0
    shard: int = 0


@dataclass(frozen=True)
class BatchEraseReport:
    """What a batch distributed erase did, aggregated over shards.

    ``reclamations`` counts reclamation passes actually run — with N shards
    of R+1 nodes each and K keys, the batch path runs at most
    ``shards_touched × (R+1)`` passes instead of ``K × (R+1)``.
    ``shard_seconds`` is the simulated work per shard touched (shard-index
    order); shards are independent groups, so its max is the critical path
    a parallel deployment waits for.
    """

    n_keys: int
    shards_touched: int
    nodes_deleted: int
    caches_invalidated: int
    dead_tuples_vacuumed: int
    log_values_scrubbed: int
    reclamations: int
    verified_clean: bool
    shard_seconds: Tuple[float, ...] = ()


def _stable_hash(key: Any) -> int:
    """Deterministic content hash for shard routing (``hash()`` is salted)."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class _Node:
    """One storage node: a backend plus a read cache."""

    def __init__(
        self,
        name: str,
        cost: CostModel,
        row_bytes: int,
        backend: str,
        backend_opts: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.name = name
        opts = dict(backend_opts or {})
        if backend == "psql":
            opts.setdefault("table", TABLE)
            opts.setdefault("wal_checkpoint_every", 5_000)
        self.backend: StorageBackend = make_backend(
            backend, cost, row_bytes=row_bytes, **opts
        )
        #: The raw engine object — exposed for forensics and fault injection.
        self.engine = getattr(self.backend, "engine", None)
        self.cache: Dict[Any, CacheEntry] = {}
        self.applied_seqno = 0

    def heap_holds(self, key: Any) -> bool:
        """Live *or dead* physical entries count — retention is physical."""
        return any(k == key for k, _live in self.backend.forensic_scan())

    def heap_sites(self, key: Any) -> List[str]:
        """Named physical sites holding the key's value.

        Engines that can enumerate their physical layout (LSM: memtable +
        per-level SSTables) report one site per copy, so ``copies_of``
        reflects every pre-compaction SSTable copy until a rewrite removes
        it; engines without that granularity report one anonymous site when
        the heap holds the key at all.
        """
        sites = getattr(self.backend, "copy_sites", None)
        if sites is not None:
            return sites(key)
        return [""] if self.heap_holds(key) else []

    def log_holds(self, key: Any) -> bool:
        """Whether the node's WAL still retains the key's row image."""
        return self.backend.log_holds_value(key)


class _Shard:
    """One replication group: a primary, N replicas, and their log."""

    def __init__(
        self,
        index: int,
        cost: CostModel,
        n_replicas: int,
        replication_lag: int,
        cache_ttl: int,
        row_bytes: int,
        backend: str,
        solo: bool,
        backend_opts: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.index = index
        self._cost = cost
        self._lag = replication_lag
        self._cache_ttl = cache_ttl
        # Single-shard deployments keep the legacy node names.
        prefix = "" if solo else f"shard-{index}/"
        self.primary = _Node(
            f"{prefix}primary", cost, row_bytes, backend, backend_opts
        )
        self.replicas = [
            _Node(f"{prefix}replica-{i}", cost, row_bytes, backend, backend_opts)
            for i in range(n_replicas)
        ]
        self._log: List[_LogEntry] = []
        self._seqno = 0

    # ------------------------------------------------------------- internals
    @property
    def _now(self) -> int:
        return self._cost.clock.now

    def nodes(self) -> Iterator[_Node]:
        yield self.primary
        yield from self.replicas

    def _append_log(self, op: _OpType, key: Any, value: Any) -> None:
        self._seqno += 1
        self._log.append(
            _LogEntry(self._seqno, op, key, value, self._now + self._lag)
        )
        self._cost.charge_log_append()

    def _apply_backlog(self, node: _Node, force: bool = False) -> int:
        """Apply every applicable log entry to the replica."""
        applied = 0
        for entry in self._log:
            if entry.seqno <= node.applied_seqno:
                continue
            if not force and entry.ready_at > self._now:
                break  # later entries are even younger
            if entry.scrubbed and entry.op is not _OpType.DELETE:
                pass  # value redacted by erase; the delete entry follows
            elif entry.op is _OpType.PUT:
                node.backend.insert(entry.key, entry.value)
            elif entry.op is _OpType.UPDATE:
                node.backend.update(entry.key, entry.value)
            else:
                try:
                    node.backend.delete(entry.key)
                except TupleNotFoundError:
                    pass  # never replicated in the first place
                node.cache.pop(entry.key, None)
            node.applied_seqno = entry.seqno
            applied += 1
        return applied

    # ----------------------------------------------------------------- writes
    def put(self, key: Any, value: Any) -> None:
        self.primary.backend.insert(key, value)
        self._append_log(_OpType.PUT, key, value)

    def update(self, key: Any, value: Any) -> None:
        self.primary.backend.update(key, value)
        self._append_log(_OpType.UPDATE, key, value)

    def naive_delete(self, key: Any) -> None:
        self.primary.backend.delete(key)
        self._append_log(_OpType.DELETE, key, None)

    # ------------------------------------------------------------------ reads
    def read(
        self, key: Any, replica: Optional[int] = None, use_cache: bool = True
    ) -> Any:
        node = self.primary if replica is None else self.replicas[replica]
        if node is not self.primary:
            self._apply_backlog(node)
        if use_cache:
            entry = node.cache.get(key)
            if entry is not None:
                if entry.expires_at >= self._now:
                    self._cost.charge_tuple_cpu()
                    return entry.value
                del node.cache[key]
        value = node.backend.read(key)
        if use_cache:
            node.cache[key] = CacheEntry(
                value, self._now, self._now + self._cache_ttl
            )
        return value

    # -------------------------------------------------------------- forensics
    def copies_of(self, key: Any) -> List[Tuple[CopyLocation, str]]:
        found: List[Tuple[CopyLocation, str]] = []
        for node in self.nodes():
            role = (
                CopyLocation.PRIMARY
                if node is self.primary
                else CopyLocation.REPLICA
            )
            for site in node.heap_sites(key):
                name = node.name if not site else f"{node.name}[{site}]"
                found.append((role, name))
            if key in node.cache:
                found.append((CopyLocation.CACHE, node.name))
            if node.log_holds(key):
                found.append((CopyLocation.WAL, node.name))
        if self._log_holds_value(key):
            found.append((CopyLocation.LOG, self.primary.name))
        return found

    def _log_holds_value(self, key: Any) -> bool:
        return any(
            e.key == key and e.op is not _OpType.DELETE and not e.scrubbed
            for e in self._log
        )

    def _scrub_log(self, key: Any) -> int:
        """Redact the value from every log entry for ``key``.

        Safe only once every replica has applied those entries (the erase
        barrier force-applies first); scrubbed PUT/UPDATE entries become
        no-ops on replay.
        """
        scrubbed = 0
        for i, entry in enumerate(self._log):
            # DELETE entries never carried a value — nothing to redact.
            if (
                entry.key == key
                and entry.op is not _OpType.DELETE
                and not entry.scrubbed
            ):
                self._log[i] = replace(entry, value=None, scrubbed=True)
                scrubbed += 1
        return scrubbed

    # ---------------------------------------------------------------- erasure
    def _reclaim_node(self, node: _Node) -> int:
        """One reclamation pass; returns the dead entries it made
        unrecoverable (and scrubs the node's WAL as a side effect)."""
        dead = node.backend.stats().dead_entries
        node.backend.reclaim()
        return dead

    def _delete_everywhere(self, key: Any) -> Tuple[int, int]:
        """Logical deletes + cache invalidation on every node (no reclaim).

        Returns ``(nodes_deleted, caches_invalidated)``.  Replicas must be
        force-applied past the key's log entries *before* calling.
        """
        nodes_deleted = 0
        caches = 0
        for node in self.nodes():
            if key in node.cache:
                caches += 1
            if node is self.primary:
                if node.backend.exists(key):
                    node.backend.delete(key)
                    self._append_log(_OpType.DELETE, key, None)
                    nodes_deleted += 1
            elif node.backend.exists(key):
                # The hot path of a batch erase: the erase barrier only
                # caught replicas up to pre-batch entries, so this batch's
                # DELETEs have not replicated yet — delete directly.
                node.backend.delete(key)
                nodes_deleted += 1
            node.cache.pop(key, None)
        return nodes_deleted, caches

    def erase_all_copies(self, key: Any) -> DistributedEraseReport:
        """The grounded distributed erase: track and delete every copy."""
        # Count cache copies before the erase barrier touches them.
        caches = sum(1 for node in self.nodes() if key in node.cache)
        nodes_deleted = 0
        if self.primary.backend.exists(key):
            self.primary.backend.delete(key)
            self._append_log(_OpType.DELETE, key, None)
            nodes_deleted += 1
        self.primary.cache.pop(key, None)
        vacuumed = self._reclaim_node(self.primary)
        for node in self.replicas:
            self._apply_backlog(node, force=True)
            if node.backend.exists(key):  # pragma: no cover - safety
                node.backend.delete(key)
                nodes_deleted += 1
            node.cache.pop(key, None)
            vacuumed += self._reclaim_node(node)
        # Every replica is now caught up past the key's log entries, so the
        # values they carried can be redacted — the log is a copy location
        # (§1) and must not outlive the erase.
        scrubbed = self._scrub_log(key)
        return DistributedEraseReport(
            key=key,
            nodes_deleted=nodes_deleted,
            caches_invalidated=caches,
            dead_tuples_vacuumed=vacuumed,
            verified_clean=not self.copies_of(key),
            log_values_scrubbed=scrubbed,
            shard=self.index,
        )

    def erase_many(self, keys: Sequence[Any]) -> Tuple[int, int, int, int, int]:
        """Batch grounded erase within the shard: every key is logically
        deleted on every node, then each node reclaims **once**.

        Returns ``(nodes_deleted, caches, vacuumed, scrubbed, reclaims)``.
        """
        # Erase barrier first: replicas catch up past every victim's
        # entries so the deletes and the log scrub are safe.
        for node in self.replicas:
            self._apply_backlog(node, force=True)
        nodes_deleted = 0
        caches = 0
        for key in keys:
            d, c = self._delete_everywhere(key)
            nodes_deleted += d
            caches += c
        # Force the just-appended DELETE entries onto the replicas too, so
        # no replica resurrects a victim later.
        for node in self.replicas:
            self._apply_backlog(node, force=True)
        vacuumed = 0
        reclaims = 0
        for node in self.nodes():
            vacuumed += self._reclaim_node(node)
            reclaims += 1
        scrubbed = sum(self._scrub_log(key) for key in keys)
        return nodes_deleted, caches, vacuumed, scrubbed, reclaims

    def replication_backlog(self, replica: int) -> int:
        node = self.replicas[replica]
        return sum(1 for e in self._log if e.seqno > node.applied_seqno)


class ReplicatedStore:
    """``shards`` primaries, each with N asynchronous read-cached replicas,
    over a pluggable storage backend."""

    def __init__(
        self,
        cost: CostModel,
        n_replicas: int = 2,
        replication_lag: int = 50_000,
        cache_ttl: int = 500_000,
        row_bytes: int = 70,
        shards: int = 1,
        backend: str = "psql",
        backend_opts: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if n_replicas < 0:
            raise ValueError("n_replicas must be non-negative")
        if replication_lag < 0 or cache_ttl < 0:
            raise ValueError("lag and TTL must be non-negative")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._cost = cost
        self.backend_name = backend
        self._shards = [
            _Shard(
                index,
                cost,
                n_replicas,
                replication_lag,
                cache_ttl,
                row_bytes,
                backend,
                solo=(shards == 1),
                backend_opts=backend_opts,
            )
            for index in range(shards)
        ]

    # -------------------------------------------------------------- topology
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_of(self, key: Any) -> int:
        """The shard the key routes to (stable content hash)."""
        return _stable_hash(key) % len(self._shards)

    def _shard(self, key: Any) -> _Shard:
        return self._shards[self.shard_of(key)]

    def shards(self) -> Iterator[_Shard]:
        return iter(self._shards)

    @property
    def primary(self) -> _Node:
        """Legacy single-shard accessor: shard 0's primary."""
        return self._shards[0].primary

    @property
    def replicas(self) -> List[_Node]:
        """Legacy single-shard accessor: shard 0's replicas."""
        return self._shards[0].replicas

    @property
    def replica_count(self) -> int:
        """Replicas per shard."""
        return len(self._shards[0].replicas)

    def nodes(self) -> Iterator[_Node]:
        for shard in self._shards:
            yield from shard.nodes()

    # ----------------------------------------------------------------- writes
    def put(self, key: Any, value: Any) -> None:
        self._shard(key).put(key, value)

    def update(self, key: Any, value: Any) -> None:
        self._shard(key).update(key, value)

    def naive_delete(self, key: Any) -> None:
        """The under-specified erase: DELETE at the owning shard's primary,
        replication does the rest *eventually* — replicas and caches keep
        serving and holding the value until lag/TTL/reclamation catch up."""
        self._shard(key).naive_delete(key)

    # ------------------------------------------------------------------ reads
    def read(
        self, key: Any, replica: Optional[int] = None, use_cache: bool = True
    ) -> Any:
        """Read from the owning shard (primary, or one of its replicas)."""
        return self._shard(key).read(key, replica=replica, use_cache=use_cache)

    # -------------------------------------------------------------- forensics
    def copies_of(self, key: Any) -> List[Tuple[CopyLocation, str]]:
        """Every location physically holding the value right now — live
        entries, dead (unreclaimed) data, cache entries, and log/WAL
        row images — on the key's owning shard."""
        return self._shard(key).copies_of(key)

    def lingering_copies(self, key: Any) -> List[Tuple[CopyLocation, str]]:
        """Copies surviving a delete — the §1 compliance hazard."""
        return self.copies_of(key)

    # ---------------------------------------------------------------- erasure
    def erase_all_copies(self, key: Any) -> DistributedEraseReport:
        """The grounded distributed erase: track and delete every copy on
        the key's shard — primary, replicas, caches, replication log, and
        each node's WAL — then verify via the tracker."""
        return self._shard(key).erase_all_copies(key)

    def erase_many(self, keys: Sequence[Any]) -> BatchEraseReport:
        """Batch grounded erase: fan the victims out per shard, delete every
        copy, and run **one reclamation pass per node** instead of one per
        key — the distributed analogue of the engine batch helpers."""
        by_shard: Dict[int, List[Any]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        nodes_deleted = caches = vacuumed = scrubbed = reclaims = 0
        shard_seconds: List[float] = []
        for shard_index, shard_keys in sorted(by_shard.items()):
            before = self._cost.clock.now
            d, c, v, s, r = self._shards[shard_index].erase_many(shard_keys)
            shard_seconds.append((self._cost.clock.now - before) / 1e6)
            nodes_deleted += d
            caches += c
            vacuumed += v
            scrubbed += s
            reclaims += r
        clean = all(not self.copies_of(key) for key in keys)
        return BatchEraseReport(
            n_keys=len(list(keys)),
            shards_touched=len(by_shard),
            nodes_deleted=nodes_deleted,
            caches_invalidated=caches,
            dead_tuples_vacuumed=vacuumed,
            log_values_scrubbed=scrubbed,
            reclamations=reclaims,
            verified_clean=clean,
            shard_seconds=tuple(shard_seconds),
        )

    # ------------------------------------------------------------- statistics
    def replication_backlog(self, replica: int, shard: int = 0) -> int:
        """Log entries the replica has not applied yet."""
        return self._shards[shard].replication_backlog(replica)
