"""Replicated store with asynchronous replication and read caches.

Replication model: the primary appends every mutation to a replication log;
a log entry becomes *applicable* at ``now + replication_lag`` (asynchronous
shipping).  Replicas apply their backlog lazily — whenever they serve a
read — mirroring how real async replicas trail the primary.  Reads may be
served from a per-node cache whose entries expire after ``cache_ttl``.

Every location that ever physically held a unit's value is recorded by the
copy tracker — primaries, replicas, caches, *and the replication log
itself*, whose PUT/UPDATE entries carry values until a grounded erase
scrubs them; the erasure questions of §1 become queries over it:

* where do copies of X live right now? (:meth:`ReplicatedStore.copies_of`)
* did the naive primary-only delete actually remove X? (it did not —
  :meth:`lingering_copies` lists replicas still holding it, caches still
  serving it, and dead tuples not yet vacuumed on any node);
* run the *grounded* distributed erase and verify nothing lingers
  (:meth:`erase_all_copies`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.costs import CostModel
from repro.storage.engine import RelationalEngine
from repro.storage.errors import TupleNotFoundError

TABLE = "replicated_data"


class _OpType(Enum):
    PUT = "put"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class _LogEntry:
    seqno: int
    op: _OpType
    key: Any
    value: Any
    ready_at: int  # model time when a replica may apply it
    scrubbed: bool = False  # value redacted by a grounded erase


class CopyLocation(Enum):
    """Where a physical copy of a value can live.

    ``LOG`` is the replication log itself: PUT/UPDATE entries carry the
    value, so the log is a retention location just like any replica — a
    grounded erase must scrub it, or "verified clean" is a lie.
    """

    PRIMARY = "primary"
    REPLICA = "replica"
    CACHE = "cache"
    LOG = "log"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class CacheEntry:
    value: Any
    cached_at: int
    expires_at: int


@dataclass(frozen=True)
class DistributedEraseReport:
    """What the grounded distributed erase did."""

    key: Any
    nodes_deleted: int
    caches_invalidated: int
    dead_tuples_vacuumed: int
    verified_clean: bool
    log_values_scrubbed: int = 0


class _Node:
    """One storage node: an engine plus a read cache."""

    def __init__(self, name: str, cost: CostModel, row_bytes: int) -> None:
        self.name = name
        self.engine = RelationalEngine(cost, wal_checkpoint_every=5_000)
        self.engine.create_table(TABLE, row_bytes)
        self.cache: Dict[Any, CacheEntry] = {}
        self.applied_seqno = 0

    def physically_holds(self, key: Any) -> bool:
        """Live *or dead* tuples count — retention is physical."""
        return any(k == key for k, _live in self.engine.forensic_scan(TABLE))


class ReplicatedStore:
    """A primary plus N asynchronous replicas with read caches."""

    def __init__(
        self,
        cost: CostModel,
        n_replicas: int = 2,
        replication_lag: int = 50_000,
        cache_ttl: int = 500_000,
        row_bytes: int = 70,
    ) -> None:
        if n_replicas < 0:
            raise ValueError("n_replicas must be non-negative")
        if replication_lag < 0 or cache_ttl < 0:
            raise ValueError("lag and TTL must be non-negative")
        self._cost = cost
        self._lag = replication_lag
        self._cache_ttl = cache_ttl
        self.primary = _Node("primary", cost, row_bytes)
        self.replicas = [
            _Node(f"replica-{i}", cost, row_bytes) for i in range(n_replicas)
        ]
        self._log: List[_LogEntry] = []
        self._seqno = 0

    # ------------------------------------------------------------- internals
    @property
    def _now(self) -> int:
        return self._cost.clock.now

    def _append_log(self, op: _OpType, key: Any, value: Any) -> None:
        self._seqno += 1
        self._log.append(
            _LogEntry(self._seqno, op, key, value, self._now + self._lag)
        )
        self._cost.charge_log_append()

    def _apply_backlog(self, node: _Node, force: bool = False) -> int:
        """Apply every applicable log entry to the replica."""
        applied = 0
        for entry in self._log:
            if entry.seqno <= node.applied_seqno:
                continue
            if not force and entry.ready_at > self._now:
                break  # later entries are even younger
            if entry.scrubbed and entry.op is not _OpType.DELETE:
                pass  # value redacted by erase; the delete entry follows
            elif entry.op is _OpType.PUT:
                node.engine.insert(TABLE, entry.key, entry.value)
            elif entry.op is _OpType.UPDATE:
                node.engine.update(TABLE, entry.key, entry.value)
            else:
                try:
                    node.engine.delete(TABLE, entry.key)
                except TupleNotFoundError:
                    pass  # never replicated in the first place
                node.cache.pop(entry.key, None)
            node.applied_seqno = entry.seqno
            applied += 1
        return applied

    # ----------------------------------------------------------------- writes
    def put(self, key: Any, value: Any) -> None:
        self.primary.engine.insert(TABLE, key, value)
        self._append_log(_OpType.PUT, key, value)

    def update(self, key: Any, value: Any) -> None:
        self.primary.engine.update(TABLE, key, value)
        self._append_log(_OpType.UPDATE, key, value)

    def naive_delete(self, key: Any) -> None:
        """The under-specified erase: DELETE at the primary, replication
        does the rest *eventually* — replicas and caches keep serving and
        holding the value until lag/TTL/vacuum catch up."""
        self.primary.engine.delete(TABLE, key)
        self._append_log(_OpType.DELETE, key, None)

    # ------------------------------------------------------------------ reads
    def read(
        self, key: Any, replica: Optional[int] = None, use_cache: bool = True
    ) -> Any:
        """Read from a replica (or the primary when ``replica`` is None)."""
        node = self.primary if replica is None else self.replicas[replica]
        if node is not self.primary:
            self._apply_backlog(node)
        if use_cache:
            entry = node.cache.get(key)
            if entry is not None:
                if entry.expires_at >= self._now:
                    self._cost.charge_tuple_cpu()
                    return entry.value
                del node.cache[key]
        value = node.engine.read(TABLE, key)
        if use_cache:
            node.cache[key] = CacheEntry(value, self._now, self._now + self._cache_ttl)
        return value

    # -------------------------------------------------------------- forensics
    def copies_of(self, key: Any) -> List[Tuple[CopyLocation, str]]:
        """Every location physically holding the value right now —
        live tuples, dead (unvacuumed) tuples, and cache entries."""
        found: List[Tuple[CopyLocation, str]] = []
        if self.primary.physically_holds(key):
            found.append((CopyLocation.PRIMARY, self.primary.name))
        if key in self.primary.cache:
            found.append((CopyLocation.CACHE, self.primary.name))
        for node in self.replicas:
            if node.physically_holds(key):
                found.append((CopyLocation.REPLICA, node.name))
            if key in node.cache:
                found.append((CopyLocation.CACHE, node.name))
        if self._log_holds_value(key):
            found.append((CopyLocation.LOG, "primary"))
        return found

    def _log_holds_value(self, key: Any) -> bool:
        """Whether any unscrubbed replication-log entry retains the value."""
        return any(
            e.key == key and e.op is not _OpType.DELETE and not e.scrubbed
            for e in self._log
        )

    def _scrub_log(self, key: Any) -> int:
        """Redact the value from every log entry for ``key``.

        Safe only once every replica has applied those entries (the erase
        barrier force-applies first); scrubbed PUT/UPDATE entries become
        no-ops on replay.
        """
        scrubbed = 0
        for i, entry in enumerate(self._log):
            # DELETE entries never carried a value — nothing to redact.
            if (
                entry.key == key
                and entry.op is not _OpType.DELETE
                and not entry.scrubbed
            ):
                self._log[i] = replace(entry, value=None, scrubbed=True)
                scrubbed += 1
        return scrubbed

    def lingering_copies(self, key: Any) -> List[Tuple[CopyLocation, str]]:
        """Copies surviving a delete — the §1 compliance hazard."""
        return self.copies_of(key)

    # ---------------------------------------------------------------- erasure
    def erase_all_copies(self, key: Any) -> DistributedEraseReport:
        """The grounded distributed erase: track and delete every copy.

        Deletes at the primary (if still live), force-applies the deletion
        to every replica (synchronous erase barrier), invalidates every
        cache entry, vacuums every node so no dead tuple retains the value,
        and verifies via the tracker.
        """
        nodes_deleted = 0
        # Count cache copies before the erase barrier touches them.
        caches = sum(1 for node in self.nodes() if key in node.cache)
        if self.primary.engine.exists(TABLE, key):
            self.primary.engine.delete(TABLE, key)
            self._append_log(_OpType.DELETE, key, None)
            nodes_deleted += 1
        self.primary.cache.pop(key, None)
        vacuumed = self.primary.engine.vacuum(TABLE)
        for node in self.replicas:
            self._apply_backlog(node, force=True)
            if node.engine.exists(TABLE, key):  # pragma: no cover - safety
                node.engine.delete(TABLE, key)
                nodes_deleted += 1
            node.cache.pop(key, None)
            vacuumed += node.engine.vacuum(TABLE)
        # Every replica is now caught up past the key's log entries, so the
        # values they carried can be redacted — the log is a copy location
        # (§1) and must not outlive the erase.
        scrubbed = self._scrub_log(key)
        return DistributedEraseReport(
            key=key,
            nodes_deleted=nodes_deleted,
            caches_invalidated=caches,
            dead_tuples_vacuumed=vacuumed,
            verified_clean=not self.copies_of(key),
            log_values_scrubbed=scrubbed,
        )

    # ------------------------------------------------------------- statistics
    @property
    def replica_count(self) -> int:
        return len(self.replicas)

    def replication_backlog(self, replica: int) -> int:
        """Log entries the replica has not applied yet."""
        node = self.replicas[replica]
        return sum(1 for e in self._log if e.seqno > node.applied_seqno)

    def nodes(self) -> Iterator[_Node]:
        yield self.primary
        yield from self.replicas
