"""Anti-entropy — hash-range digests that heal replica divergence
*proactively*, instead of waiting for a quorum read to trip over it.

Read repair (PR 5) is reactive: divergence is only found when a
``consistency="quorum"|"all"`` read happens to observe it, which means a
key nobody reads consistently can stay diverged forever — and a replica
that silently lost or gained state (a fault, a bug, a partial apply)
diverges in a way ``applied_seqno`` comparison alone cannot see, because
seqno says what the replica *claims* to have applied, not what its heap
actually holds.

The sweep closes both gaps with a Merkle-style summary, one level deep:

1. cut the 64-bit keyspace ring into ``n_ranges`` equal arcs
   (:func:`repro.distributed.ring.hash_range_of` — the same
   ``stable_hash`` the router uses, so an arc is contiguous keyspace);
2. per node, fold every live ``(key, value)`` pair into its arc's digest
   — an XOR of ``blake2b(encode_stable(key) + encode_stable(value))``
   words, order-independent so no sort pass is needed and equal content
   always produces equal digests (:func:`repro.codec.encode_stable` is
   the canonical value encoding the Bloom path already relies on);
3. compare each live replica's digest vector against the primary's and
   queue one :class:`RangeRepair` marker per divergent arc **through the
   existing read-repair queue** — the sweep never mutates anything
   itself.  :meth:`ReplicatedStore.flush_repairs` drains the markers like
   any other repair: the replica first force-applies its (scrubbed)
   backlog, then the arc is re-synced directly from the primary's live
   state, and a :class:`~repro.distributed.store.RepairEvent` is emitted
   (key ``antientropy:range-i/n``) so the facade records a ``REPAIR``
   audit action.

Erasure safety is inherited, not re-argued: backlog replay applies
scrubbed PUT/UPDATE entries as no-ops, and the direct re-sync copies only
values *live on the primary right now* — a grounded-erased value is live
nowhere, so neither step can resurrect it.

Down replicas are skipped (a killed node has no heap to digest; its
revival bootstrap is the catch-up path), and partitioned shards are
skipped entirely (anti-entropy is network traffic too).  The sweep is
driven from three places: ``ReplicatedStore.anti_entropy_sweep()``,
``RebalanceDriver(..., antientropy=...)`` steps, and the service
maintenance tick (``ServiceConfig.antientropy_every``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro import codec
from repro.distributed.ring import hash_range_of

#: Default number of keyspace arcs a sweep digests per node.
DEFAULT_RANGES = 16


def pair_digest(key: Any, value: Any) -> int:
    """One 64-bit word per live pair, over the canonical encodings of both
    key and value — value-stable across processes and backends."""
    blob = codec.encode_stable(key) + codec.encode_stable(value)
    return int.from_bytes(
        hashlib.blake2b(blob, digest_size=8).digest(), "big"
    )


def range_digests(backend: Any, n_ranges: int) -> List[int]:
    """Digest vector for one node: arc index → XOR-fold of its live pairs
    (0 = empty arc).  Uses the backend's bulk ``export_range`` scan, the
    same live-pairs surface migration exports stream through."""
    digests = [0] * n_ranges
    for key, value in backend.export_range(lambda _k: True):
        digests[hash_range_of(key, n_ranges)] ^= pair_digest(key, value)
    return digests


@dataclass(frozen=True)
class RangeRepair:
    """A divergent arc queued for re-sync — the *key* slot of the shared
    read-repair queue, so arc repairs dedup per (shard, arc) exactly like
    key repairs dedup per (shard, key)."""

    range_index: int
    n_ranges: int

    def __repr__(self) -> str:  # stable queue ordering (sorted by repr)
        return f"antientropy:range-{self.range_index}/{self.n_ranges}"


@dataclass(frozen=True)
class AntiEntropyReport:
    """What one sweep saw (queueing only — repairs run at the next flush)."""

    shards_scanned: int
    shards_skipped: int  # partitioned at sweep time
    replicas_compared: int
    replicas_skipped: int  # down at sweep time
    divergent_ranges: int
    repairs_queued: int
    n_ranges: int


class AntiEntropySweeper:
    """Periodic digest comparison over one store.

    Stateless between sweeps (digests are recomputed, never cached — a
    cache would be one more copy site to ground); hold one per driver or
    service and call :meth:`sweep` on whatever cadence the maintenance
    loop runs.
    """

    def __init__(self, store: Any, n_ranges: int = DEFAULT_RANGES) -> None:
        if n_ranges < 1:
            raise ValueError("n_ranges must be >= 1")
        self._store = store
        self.n_ranges = n_ranges
        self.sweeps = 0
        self.divergent_ranges = 0
        self.repairs_queued = 0

    def sweep(self) -> AntiEntropyReport:
        """Compare every live replica against its primary, arc by arc, and
        queue a :class:`RangeRepair` per divergent arc."""
        store = self._store
        injector = getattr(store, "_fault_injector", None)
        scanned = skipped_shards = 0
        compared = skipped_replicas = 0
        divergent = queued = 0
        for shard in store.shards():
            if injector is not None and injector.is_partitioned(shard.index):
                skipped_shards += 1
                continue
            scanned += 1
            replicas = list(shard.replicas)
            live = [r for r in replicas if not r.down]
            skipped_replicas += len(replicas) - len(live)
            if not live:
                continue
            # Let each replica apply whatever backlog is already *ready*
            # (the same lazy catch-up a pinned read performs) so ordinary
            # in-lag shipping does not read as divergence.
            for node in live:
                shard._apply_backlog(node)
            primary = range_digests(shard.primary.backend, self.n_ranges)
            target = shard._seqno
            diverged_arcs: set = set()
            for node in live:
                compared += 1
                theirs = range_digests(node.backend, self.n_ranges)
                for arc, (mine, got) in enumerate(zip(primary, theirs)):
                    if mine != got:
                        diverged_arcs.add(arc)
            for arc in sorted(diverged_arcs):
                divergent += 1
                # Through the shared read-repair queue: dedup per
                # (shard, arc), drained by the next flush_repairs().
                store._queue_repair(
                    shard.index, RangeRepair(arc, self.n_ranges), target
                )
                queued += 1
        self.sweeps += 1
        self.divergent_ranges += divergent
        self.repairs_queued += queued
        return AntiEntropyReport(
            shards_scanned=scanned,
            shards_skipped=skipped_shards,
            replicas_compared=compared,
            replicas_skipped=skipped_replicas,
            divergent_ranges=divergent,
            repairs_queued=queued,
            n_ranges=self.n_ranges,
        )


__all__ = [
    "AntiEntropyReport",
    "AntiEntropySweeper",
    "DEFAULT_RANGES",
    "RangeRepair",
    "pair_digest",
    "range_digests",
]
