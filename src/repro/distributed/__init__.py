"""Distributed substrate — replicas, caches, sharding, and erasure
propagation.

Paper §1: "If erasure means removing the data not just from the primary
location, but removing it completely (from all locations in disk and
memory), a technique will have to be built to track the copies and delete
all of them."  This package is that technique, plus the hazard it guards
against:

* :class:`~repro.distributed.store.ReplicatedStore` — consistent-hash
  shard groups (each a primary with N asynchronous replicas over a
  pluggable storage backend) with per-node read caches and
  ``consistency="one"|"quorum"|"all"`` reads;
* a copy tracker recording every location that ever held a data unit —
  including keys in flight between shards during an online rebalance
  (``CopyLocation.MIGRATION``);
* :meth:`~repro.distributed.store.ReplicatedStore.naive_delete` — deletes
  at the primary only, demonstrating lingering replica/cache copies;
* :meth:`~repro.distributed.store.ReplicatedStore.erase_all_copies` — the
  grounded distributed erase: delete + vacuum every node, invalidate every
  cache, scrub the logs, verify via the tracker — even mid-rebalance;
* :meth:`~repro.distributed.store.ReplicatedStore.resize` /
  :meth:`~repro.distributed.store.ReplicatedStore.add_shard` /
  :meth:`~repro.distributed.store.ReplicatedStore.remove_shard` /
  :meth:`~repro.distributed.store.ReplicatedStore.reweight` — online
  topology and capacity changes (per-shard ring weights) whose every key
  move is grounded at the source and announced as a
  :class:`~repro.distributed.store.MoveEvent`;
* :class:`~repro.distributed.store.RebalanceDriver` — drives the same
  migration in bounded ``step(budget_keys=…)`` increments so live traffic
  interleaves with key movement;
* **read repair** — quorum/all reads that observe replica divergence queue
  an asynchronous re-sync (:meth:`~repro.distributed.store.ReplicatedStore.flush_repairs`),
  announced as :class:`~repro.distributed.store.RepairEvent` objects, never
  able to resurrect an erased value;
* **replica elasticity** —
  :meth:`~repro.distributed.store.ReplicatedStore.set_replicas` joins fresh
  replicas by scrubbed-log replay and grounds leaving replicas' copies
  before dropping them;
* **anti-entropy** (:mod:`repro.distributed.antientropy`) — periodic
  hash-range digest sweeps that heal replica divergence proactively,
  through the same repair queue, without waiting for a quorum read to
  trip over it;
* **fault injection** (:mod:`repro.distributed.faults`) — seeded
  kill/revive/partition/heal schedules the store's dispatch honors, so
  every guarantee above can be asserted on a degraded-but-serving
  topology.
"""

from repro.distributed.antientropy import (
    AntiEntropyReport,
    AntiEntropySweeper,
    RangeRepair,
)
from repro.distributed.faults import (
    FaultAction,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultReport,
    QuorumUnavailableError,
    ReplicaDownError,
    ShardUnavailableError,
)
from repro.distributed.ring import HashRing, hash_range_of, stable_hash
from repro.distributed.store import (
    CacheEntry,
    CopyLocation,
    DistributedEraseReport,
    MoveEvent,
    Rebalance,
    RebalanceDriver,
    RebalanceReport,
    RepairEvent,
    ReplicaChangeReport,
    ReplicatedStore,
)

__all__ = [
    "ReplicatedStore",
    "CopyLocation",
    "CacheEntry",
    "DistributedEraseReport",
    "HashRing",
    "MoveEvent",
    "Rebalance",
    "RebalanceDriver",
    "RebalanceReport",
    "RepairEvent",
    "ReplicaChangeReport",
    "stable_hash",
    "hash_range_of",
    "AntiEntropyReport",
    "AntiEntropySweeper",
    "RangeRepair",
    "FaultAction",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "QuorumUnavailableError",
    "ReplicaDownError",
    "ShardUnavailableError",
]
