"""Distributed substrate — replicas, caches, and erasure propagation.

Paper §1: "If erasure means removing the data not just from the primary
location, but removing it completely (from all locations in disk and
memory), a technique will have to be built to track the copies and delete
all of them."  This package is that technique, plus the hazard it guards
against:

* :class:`~repro.distributed.store.ReplicatedStore` — a primary with N
  asynchronous replicas (each a full PSQL-like engine, so *per-node*
  dead-tuple retention applies too) and per-node read caches;
* a copy tracker recording every location that ever held a data unit;
* :meth:`~repro.distributed.store.ReplicatedStore.naive_delete` — deletes
  at the primary only, demonstrating lingering replica/cache copies;
* :meth:`~repro.distributed.store.ReplicatedStore.erase_all_copies` — the
  grounded distributed erase: delete + vacuum every node, invalidate every
  cache, verify via the tracker.
"""

from repro.distributed.store import (
    CacheEntry,
    CopyLocation,
    DistributedEraseReport,
    ReplicatedStore,
)

__all__ = [
    "ReplicatedStore",
    "CopyLocation",
    "CacheEntry",
    "DistributedEraseReport",
]
