"""Consistent-hash ring — elastic, *weighted* shard routing with vnodes.

Static modulo routing (``hash(key) % shards``) reassigns almost *every* key
when the shard count changes: growing 4 → 5 shards moves ~80% of the
keyspace, and every moved key is a copy the compliance layer must track and
ground (§1 — a rebalance that silently copies values between sites is an
Art. 17 leak in waiting).  A consistent-hash ring bounds the blast radius:
each shard owns the arcs between its virtual nodes, so adding or removing
one shard relocates only the ~K/N keys whose arc changed hands, and every
surviving shard keeps its position.

**Weights** model heterogeneous capacity: a shard with weight 2.0
contributes twice the vnodes and therefore owns roughly twice the fair
share of the keyspace.  Changing only a weight is itself a topology change
— the planner diffs ownership the same way and migrates exactly the arcs
that changed hands, so a capacity upgrade rebalances online like a
shard-count change does.

The ring is deliberately immutable: topology changes produce a *new* ring
(:meth:`HashRing.with_nodes`), and the migration planner diffs old vs new
ownership key by key.  That makes **dual-routing** during an online
rebalance trivial — reads try ring-new first and fall back to ring-old,
writes to not-yet-copied keys stay at their ring-old source — because both
rings coexist until every move is grounded and the store commits ring-new.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Virtual nodes per unit of shard weight.  More vnodes → smoother key
#: spread and finer movement granularity on resize, at O(shards × vnodes)
#: ring-build cost.
DEFAULT_VNODES = 64


def stable_hash(key: Any) -> int:
    """Deterministic content hash (``hash()`` is salted per process)."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def hash_range_of(key: Any, n_ranges: int) -> int:
    """The hash-range bucket ``key`` falls in when the 64-bit ring is cut
    into ``n_ranges`` equal arcs — the partitioning unit anti-entropy
    digests compare (:mod:`repro.distributed.antientropy`).  Derived from
    the same :func:`stable_hash` the ring routes by, so one bucket is one
    contiguous keyspace arc, not an arbitrary modulus class."""
    if n_ranges < 1:
        raise ValueError("n_ranges must be >= 1")
    return stable_hash(key) * n_ranges >> 64


class HashRing:
    """An immutable consistent-hash ring over integer shard ids.

    Each shard id contributes ``round(vnodes × weight)`` points on the
    64-bit ring (at least one); a key belongs to the shard owning the first
    point at or after the key's hash (wrapping).  Shard ids — not list
    positions — identify nodes, so removing shard 1 from ``{0, 1, 2}``
    leaves shards 0 and 2 exactly where they were.

    ``weights`` maps shard id → relative capacity (default 1.0 each);
    heavier shards take proportionally more keyspace.
    """

    def __init__(
        self,
        nodes: Iterable[int],
        vnodes: int = DEFAULT_VNODES,
        weights: Optional[Mapping[int, float]] = None,
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: Tuple[int, ...] = tuple(sorted(set(nodes)))
        if not self._nodes:
            raise ValueError("a ring needs at least one node")
        given = dict(weights or {})
        unknown = sorted(set(given) - set(self._nodes))
        if unknown:
            raise ValueError(
                f"weights name shards {unknown} not on the ring "
                f"{list(self._nodes)}"
            )
        for node, weight in given.items():
            if weight <= 0:
                raise ValueError(
                    f"shard {node!r} weight must be positive, got {weight!r}"
                )
        self._weights: Dict[int, float] = {
            node: float(given.get(node, 1.0)) for node in self._nodes
        }
        points: List[Tuple[int, int]] = [
            (stable_hash(f"vnode/{node}/{v}"), node)
            for node in self._nodes
            for v in range(self.vnode_count(node))
        ]
        points.sort()
        self._points = points
        self._positions = [position for position, _node in points]

    # ------------------------------------------------------------- topology
    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    @property
    def weights(self) -> Dict[int, float]:
        """Shard id → weight (a copy; rings are immutable)."""
        return dict(self._weights)

    def weight_of(self, node: int) -> float:
        return self._weights[node]

    def vnode_count(self, node: int) -> int:
        """Ring points the node contributes: ``round(vnodes × weight)``,
        floored at 1 so even a tiny weight keeps the shard routable."""
        return max(1, round(self.vnodes * self._weights[node]))

    def expected_share(self, node: int) -> float:
        """The keyspace fraction the node's weight entitles it to."""
        total = sum(self._weights.values())
        return self._weights[node] / total

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    def with_nodes(
        self,
        nodes: Iterable[int],
        weights: Optional[Mapping[int, float]] = None,
    ) -> "HashRing":
        """A new ring over ``nodes`` with the same vnode density.

        Surviving nodes keep their current weight unless ``weights``
        overrides it; nodes new to the ring default to weight 1.0.
        """
        nodes = tuple(nodes)
        merged = {n: self._weights[n] for n in nodes if n in self._weights}
        if weights:
            merged.update(weights)
        return HashRing(nodes, vnodes=self.vnodes, weights=merged)

    def with_weights(self, weights: Mapping[int, float]) -> "HashRing":
        """Same nodes, new weights for the listed shards — a capacity
        change is a topology change like any other."""
        return self.with_nodes(self._nodes, weights=weights)

    # -------------------------------------------------------------- routing
    def owner(self, key: Any) -> int:
        """The shard id owning ``key`` (first vnode at/after its hash)."""
        index = bisect.bisect_right(self._positions, stable_hash(key))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]

    def moved_keys(self, keys: Sequence[Any], new: "HashRing") -> List[Any]:
        """Keys whose owner differs between this ring and ``new`` — the
        migration set a resize must ground."""
        return [key for key in keys if self.owner(key) != new.owner(key)]
