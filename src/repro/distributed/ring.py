"""Consistent-hash ring — elastic shard routing with virtual nodes.

Static modulo routing (``hash(key) % shards``) reassigns almost *every* key
when the shard count changes: growing 4 → 5 shards moves ~80% of the
keyspace, and every moved key is a copy the compliance layer must track and
ground (§1 — a rebalance that silently copies values between sites is an
Art. 17 leak in waiting).  A consistent-hash ring bounds the blast radius:
each shard owns the arcs between its virtual nodes, so adding or removing
one shard relocates only the ~K/N keys whose arc changed hands, and every
surviving shard keeps its position.

The ring is deliberately immutable: topology changes produce a *new* ring
(:meth:`HashRing.with_nodes`), and the migration planner diffs old vs new
ownership key by key.  That makes dual-routing during an online rebalance
trivial — route ring-new first, fall back to ring-old — because both rings
coexist until the move is grounded.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Iterable, List, Sequence, Tuple

#: Virtual nodes per shard.  More vnodes → smoother key spread and finer
#: movement granularity on resize, at O(shards × vnodes) ring-build cost.
DEFAULT_VNODES = 64


def stable_hash(key: Any) -> int:
    """Deterministic content hash (``hash()`` is salted per process)."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """An immutable consistent-hash ring over integer shard ids.

    Each shard id contributes ``vnodes`` points on the 64-bit ring; a key
    belongs to the shard owning the first point at or after the key's hash
    (wrapping).  Shard ids — not list positions — identify nodes, so
    removing shard 1 from ``{0, 1, 2}`` leaves shards 0 and 2 exactly where
    they were.
    """

    def __init__(self, nodes: Iterable[int], vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: Tuple[int, ...] = tuple(sorted(set(nodes)))
        if not self._nodes:
            raise ValueError("a ring needs at least one node")
        points: List[Tuple[int, int]] = [
            (stable_hash(f"vnode/{node}/{v}"), node)
            for node in self._nodes
            for v in range(vnodes)
        ]
        points.sort()
        self._points = points
        self._positions = [position for position, _node in points]

    # ------------------------------------------------------------- topology
    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    def with_nodes(self, nodes: Iterable[int]) -> "HashRing":
        """A new ring over ``nodes`` with the same vnode density."""
        return HashRing(nodes, vnodes=self.vnodes)

    # -------------------------------------------------------------- routing
    def owner(self, key: Any) -> int:
        """The shard id owning ``key`` (first vnode at/after its hash)."""
        index = bisect.bisect_right(self._positions, stable_hash(key))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]

    def moved_keys(self, keys: Sequence[Any], new: "HashRing") -> List[Any]:
        """Keys whose owner differs between this ring and ``new`` — the
        migration set a resize must ground."""
        return [key for key in keys if self.owner(key) != new.owner(key)]
