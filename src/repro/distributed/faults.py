"""Seeded fault injection — kill/revive replicas, partition/heal shards.

The paper's core claim is a property of a *running* system: "erase all
copies" has to hold while replicas crash, shards drop off the network, and
a rebalance is mid-flight.  This module is the harness that makes the
degraded topologies reproducible:

* a :class:`FaultPlan` is a deterministic, seeded schedule of fault
  transitions (``kill_replica`` / ``revive_replica`` / ``partition_shard``
  / ``heal``) keyed by operation index, replayed by
  :func:`repro.workloads.driver.run_interleaved` between workload ops;
* a :class:`FaultInjector` applies the transitions to a live
  :class:`~repro.distributed.store.ReplicatedStore`, whose ``_Shard``
  dispatch honors the resulting state — pinned reads to a down replica
  raise :class:`ReplicaDownError`, quorum reads that cannot assemble a
  majority of reachable nodes raise :class:`QuorumUnavailableError`, and
  every serving-path operation routed to a partitioned shard raises
  :class:`ShardUnavailableError`.

**The fault model.**  A *killed* replica is a crash-stop with storage
loss: the machine is gone, and its disk with it — ``copies_of`` stops
reporting the node because nothing physical remains.  *Revival*
provisions a fresh, empty replica under the same name which catches up by
replaying the shard's **scrubbed** replication log (the same bootstrap a
joining replica uses), so recovery can never resurrect an erased value:
the victim's PUT/UPDATE entries were redacted by the erase and replay as
no-ops, while its DELETEs still apply.  A *partitioned* shard keeps its
state but is unreachable from the router: serving-path operations fail
fast and nothing mutates until :meth:`FaultInjector.heal`.  Forensic
surfaces (``copies_of``, ``lingering_copies``, the invariant registry's
independent scans) deliberately bypass partitions — they model the
compliance auditor's global view, not a client's.

This is the *infrastructure* fault layer.  The compliance-misbehaviour
injection suite (``tests/integration/test_failure_injection.py``) is a
different animal: it corrupts the Figure-1 policy/consent/audit state and
asserts the right invariant *names* the violation.  Here nothing may trip
at all — the invariants must hold through every degraded topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Set, Tuple

#: Fault transition kinds a plan may schedule.
FAULT_KINDS = ("kill_replica", "revive_replica", "partition_shard", "heal")


class FaultError(RuntimeError):
    """Base class for unavailability raised by injected faults."""


class ReplicaDownError(FaultError):
    """A read was pinned to a replica that is currently killed."""


class ShardUnavailableError(FaultError):
    """A serving-path operation routed to a partitioned shard."""


class QuorumUnavailableError(FaultError):
    """Too few reachable nodes to assemble the requested quorum."""


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault transition.

    ``at_op`` is the workload-operation index the transition fires
    *before* (the driver applies every due action, in order, between
    ops).  ``replica`` is meaningful for the replica kinds only.
    """

    at_op: int
    kind: str
    shard: int
    replica: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.at_op < 0:
            raise ValueError("at_op must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault transitions, sorted by ``at_op``.

    Plans built by :meth:`seeded` are guaranteed *self-healing*: every
    kill has a matching revive and every partition a matching heal, both
    scheduled within the plan's horizon — so a run that applies the whole
    plan ends on a fully-reachable topology (the drain in
    ``run_interleaved`` additionally heals any leftovers defensively).
    """

    actions: Tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.actions, key=lambda a: a.at_op))
        object.__setattr__(self, "actions", ordered)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[FaultAction]:
        return iter(self.actions)

    def due(self, op_index: int, applied: int) -> List[FaultAction]:
        """Actions scheduled at or before ``op_index`` that have not been
        applied yet (``applied`` = how many the caller already took)."""
        out: List[FaultAction] = []
        for action in self.actions[applied:]:
            if action.at_op > op_index:
                break
            out.append(action)
        return out

    @property
    def kills(self) -> int:
        return sum(1 for a in self.actions if a.kind == "kill_replica")

    @property
    def partitions(self) -> int:
        return sum(1 for a in self.actions if a.kind == "partition_shard")

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        shards: int,
        replicas: int,
        n_ops: int,
        events: int = 4,
    ) -> "FaultPlan":
        """A reproducible kill/partition schedule for a run of ``n_ops``.

        Draws ``events`` fault windows from ``random.Random(seed)``: each
        window opens with a kill or a partition and closes with the
        matching revive/heal strictly before ``n_ops``.  Windows never
        stack on the same target (a replica is not killed twice before
        its revive), at most one shard is partitioned at a time (so a
        majority of the keyspace keeps serving), and at most one replica
        per shard is down at a time (so ``quorum`` stays assemblable on
        ``replicas >= 2`` topologies).
        """
        if shards < 1 or n_ops < 4:
            raise ValueError("need shards >= 1 and n_ops >= 4")
        if events < 0:
            raise ValueError("events must be non-negative")
        rng = random.Random(seed)
        actions: List[FaultAction] = []
        #: (shard, replica) → op index the kill window closes at.
        open_kills: Dict[Tuple[int, int], int] = {}
        open_partition: Tuple[int, int] = (-1, -1)  # (shard, heal op)
        drawn = 0
        attempts = 0
        while drawn < events and attempts < events * 8:
            attempts += 1
            start = rng.randrange(1, max(2, n_ops - 2))
            length = rng.randrange(max(2, n_ops // 8), max(3, n_ops // 3))
            end = min(start + length, n_ops - 1)
            if end <= start:
                continue
            kind = (
                "kill_replica"
                if replicas and rng.random() < 0.6
                else "partition_shard"
            )
            shard = rng.randrange(shards)
            if kind == "kill_replica":
                replica = rng.randrange(replicas)
                busy = any(
                    s == shard and start < closes
                    for (s, _r), closes in open_kills.items()
                )
                if busy:
                    continue
                open_kills[(shard, replica)] = end
                actions.append(
                    FaultAction(start, "kill_replica", shard, replica)
                )
                actions.append(
                    FaultAction(end, "revive_replica", shard, replica)
                )
            else:
                p_shard, p_heal = open_partition
                if p_shard >= 0 and start < p_heal:
                    continue  # one partition at a time
                open_partition = (shard, end)
                actions.append(FaultAction(start, "partition_shard", shard))
                actions.append(FaultAction(end, "heal", shard))
            drawn += 1
        return cls(actions=tuple(actions))


@dataclass(frozen=True)
class FaultReport:
    """What applying (part of) a plan to a live store did."""

    applied: int
    skipped: int
    kills: int
    revives: int
    partitions: int
    heals: int
    catchup_entries: int  # log entries revived replicas replayed


class FaultInjector:
    """Applies fault transitions to a live ``ReplicatedStore``.

    One injector per store (the store exposes it as
    ``store.fault_injector`` so the ``_Shard`` dispatch and the invariant
    registry can consult the active-fault state).  All mutations go
    through shard-level seams (``_Shard.kill_replica`` /
    ``_revive_replica``); the injector itself only tracks which faults
    are active.
    """

    def __init__(self, store: Any) -> None:
        existing = getattr(store, "_fault_injector", None)
        if existing is not None:
            raise RuntimeError("store already has a fault injector attached")
        self._store = store
        store._fault_injector = self
        self._partitioned: Set[int] = set()
        self._down: Set[Tuple[int, int]] = set()
        self.kills = 0
        self.revives = 0
        self.partitions = 0
        self.heals = 0
        self.catchup_entries = 0

    # ------------------------------------------------------------ inspection
    @property
    def active_faults(self) -> Tuple[str, ...]:
        """Human-readable active faults (empty = fully healed)."""
        out = [
            f"replica-down:shard-{s}/replica-{r}"
            for s, r in sorted(self._down)
        ]
        out.extend(f"partitioned:shard-{s}" for s in sorted(self._partitioned))
        return tuple(out)

    @property
    def active_count(self) -> int:
        return len(self._down) + len(self._partitioned)

    def is_partitioned(self, shard: int) -> bool:
        return shard in self._partitioned

    def is_down(self, shard: int, replica: int) -> bool:
        return (shard, replica) in self._down

    # ------------------------------------------------------------ transitions
    def kill_replica(self, shard: int, replica: int) -> None:
        """Crash-stop one replica: unreachable, storage lost."""
        self._store._shards[shard].kill_replica(replica)
        self._down.add((shard, replica))
        self.kills += 1

    def revive_replica(self, shard: int, replica: int) -> int:
        """Provision a fresh replica under the dead one's name and catch it
        up from the scrubbed replication log; returns entries replayed."""
        entries = self._store._shards[shard].revive_replica(replica)
        self._down.discard((shard, replica))
        self.revives += 1
        self.catchup_entries += entries
        return entries

    def partition_shard(self, shard: int) -> None:
        """Make the shard unreachable from the router (state retained)."""
        if shard not in self._store._shards:
            raise KeyError(f"no shard {shard!r}")
        self._partitioned.add(shard)
        self.partitions += 1

    def heal(self, shard: int) -> None:
        """Heal the shard's partition."""
        if shard in self._partitioned:
            self._partitioned.discard(shard)
            self.heals += 1

    def heal_all(self) -> FaultReport:
        """Heal every active fault: revive every down replica, lift every
        partition.  Returns what it did (the drain-time safety net)."""
        applied = 0
        catchup_before = self.catchup_entries
        kills = revives = partitions = heals = 0
        for shard, replica in sorted(self._down):
            if shard in self._store._shards:
                self.revive_replica(shard, replica)
                revives += 1
            else:
                self._down.discard((shard, replica))
            applied += 1
        for shard in sorted(self._partitioned):
            self.heal(shard)
            heals += 1
            applied += 1
        return FaultReport(
            applied=applied,
            skipped=0,
            kills=kills,
            revives=revives,
            partitions=partitions,
            heals=heals,
            catchup_entries=self.catchup_entries - catchup_before,
        )

    # ------------------------------------------------------------------ plans
    def apply(self, actions: Sequence[FaultAction]) -> FaultReport:
        """Apply scheduled transitions, tolerantly: an action naming a
        shard that was decommissioned since the plan was drawn (or a
        revive for a replica that is not down) is skipped, not fatal —
        plans are drawn against the initial topology and a live rebalance
        may have changed it."""
        applied = skipped = 0
        kills = revives = partitions = heals = 0
        catchup_before = self.catchup_entries
        for action in actions:
            try:
                if action.kind == "kill_replica":
                    if self.is_down(action.shard, action.replica):
                        raise KeyError("already down")
                    self.kill_replica(action.shard, action.replica)
                    kills += 1
                elif action.kind == "revive_replica":
                    if not self.is_down(action.shard, action.replica):
                        raise KeyError("not down")
                    self.revive_replica(action.shard, action.replica)
                    revives += 1
                elif action.kind == "partition_shard":
                    self.partition_shard(action.shard)
                    partitions += 1
                else:
                    self.heal(action.shard)
                    heals += 1
                applied += 1
            except (KeyError, IndexError):
                skipped += 1
        return FaultReport(
            applied=applied,
            skipped=skipped,
            kills=kills,
            revives=revives,
            partitions=partitions,
            heals=heals,
            catchup_entries=self.catchup_entries - catchup_before,
        )


__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "QuorumUnavailableError",
    "ReplicaDownError",
    "ShardUnavailableError",
]
