"""Role-based access control (P_Base's grounding, §4.2).

"The system implements role-based access control using roles, role
attributes, and role memberships."  Checks are O(1) set lookups — the
cheapest interpretation of lawful processing, and the reason P_Base is the
fastest profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from repro.access.errors import AccessDenied
from repro.sim.costs import CostModel


@dataclass(frozen=True)
class Permission:
    """(table, operation, purpose) the holder may perform.

    ``purpose`` may be ``"*"`` — RBAC is coarse: it cannot express
    per-data-unit or per-time-window constraints, which is exactly the
    interpretive gap between P_Base and P_SYS.
    """

    table: str
    operation: str
    purpose: str = "*"

    def covers(self, table: str, operation: str, purpose: str) -> bool:
        return (
            self.table == table
            and self.operation == operation
            and self.purpose in ("*", purpose)
        )


@dataclass
class Role:
    """A named role with attributes and permissions."""

    name: str
    attributes: Dict[str, str] = field(default_factory=dict)
    permissions: Set[Permission] = field(default_factory=set)

    def grant(self, permission: Permission) -> None:
        self.permissions.add(permission)

    def allows(self, table: str, operation: str, purpose: str) -> bool:
        return any(p.covers(table, operation, purpose) for p in self.permissions)


#: Approximate bytes per role / membership row (role metadata tables).
ROLE_BYTES = 256
MEMBERSHIP_BYTES = 48


class RbacController:
    """Role registry + memberships + O(1)-ish checks."""

    def __init__(self, cost: CostModel) -> None:
        self._cost = cost
        self._roles: Dict[str, Role] = {}
        self._members: Dict[str, Set[str]] = {}  # entity -> role names

    # --------------------------------------------------------------- manage
    def create_role(self, name: str, **attributes: str) -> Role:
        if name in self._roles:
            raise ValueError(f"role {name!r} already exists")
        role = Role(name, dict(attributes))
        self._roles[name] = role
        return role

    def role(self, name: str) -> Role:
        try:
            return self._roles[name]
        except KeyError:
            raise KeyError(f"unknown role: {name!r}") from None

    def grant(self, role_name: str, permission: Permission) -> None:
        self.role(role_name).grant(permission)

    def add_member(self, entity_name: str, role_name: str) -> None:
        self.role(role_name)  # validate
        self._members.setdefault(entity_name, set()).add(role_name)

    def remove_member(self, entity_name: str, role_name: str) -> None:
        self._members.get(entity_name, set()).discard(role_name)

    def roles_of(self, entity_name: str) -> FrozenSet[str]:
        return frozenset(self._members.get(entity_name, set()))

    # ---------------------------------------------------------------- checks
    def is_allowed(
        self, entity_name: str, table: str, operation: str, purpose: str
    ) -> bool:
        self._cost.charge_rbac_check()
        return any(
            self._roles[role_name].allows(table, operation, purpose)
            for role_name in self._members.get(entity_name, ())
        )

    def check(
        self, entity_name: str, table: str, operation: str, purpose: str
    ) -> None:
        if not self.is_allowed(entity_name, table, operation, purpose):
            raise AccessDenied(entity_name, purpose, f"{table}/{operation}")

    # ----------------------------------------------------------------- space
    @property
    def size_bytes(self) -> int:
        roles = len(self._roles) * ROLE_BYTES
        members = sum(len(r) for r in self._members.values()) * MEMBERSHIP_BYTES
        return roles + members
