"""Sieve — a middleware for scalable fine-grained access control.

Reimplementation of the approach of Pappachan et al. [51] at the level of
detail the paper's evaluation depends on: instead of scanning every policy
attached to a unit, Sieve

1. groups policies into **guarded expressions**: one guard per
   (entity, purpose) pair, holding only that pair's policies;
2. maintains an **index** over the guards (here a hash index, standing in
   for Sieve's exploitation of "UDFs, index usage hints, etc."), so a check
   descends to one guard and evaluates only its candidates;
3. pays for this with substantial metadata: guard index entries, per-guard
   structures, and denormalized policy rows — the dominant share of P_SYS's
   17.1× space factor in Table 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.access.errors import AccessDenied
from repro.access.fgac import PolicyStore
from repro.core.entities import Entity
from repro.core.policy import Policy
from repro.sim.costs import CostModel

#: Bytes per guarded-expression structure (guard predicate, stats, hints).
GUARD_BYTES = 48

#: Bytes per guard-index entry.
GUARD_INDEX_ENTRY_BYTES = 12

#: Bytes per denormalized policy row inside a guard (Sieve keeps its own
#: representation alongside the base policy table).
GUARD_POLICY_BYTES = 72


class SieveMiddleware:
    """FGAC with guarded-expression indexing."""

    def __init__(self, cost: CostModel, store: Optional[PolicyStore] = None) -> None:
        self._cost = cost
        self.store = store if store is not None else PolicyStore()
        # guard key: (unit_id, entity name, purpose) -> candidate policies.
        self._guards: Dict[Tuple[str, str, str], List[Policy]] = {}

    # --------------------------------------------------------------- manage
    def attach(self, unit_id: str, policy: Policy) -> None:
        """Register the policy in the base store and its guard."""
        self.store.add(unit_id, policy)
        key = (unit_id, policy.entity.name, policy.purpose)
        self._guards.setdefault(key, []).append(policy)
        self._cost.charge_policy_insert()

    def detach_unit(self, unit_id: str) -> int:
        """Drop all policies and guards of a unit (erase path)."""
        removed = self.store.remove_unit(unit_id)
        for key in [k for k in self._guards if k[0] == unit_id]:
            del self._guards[key]
        return removed

    # ---------------------------------------------------------------- checks
    def evaluate(
        self, unit_id: str, entity: Entity, purpose: str, at: int
    ) -> Tuple[bool, int]:
        """(allowed, candidates_evaluated) via the guard index."""
        self._cost.charge_sieve_lookup()
        candidates = self._guards.get((unit_id, entity.name, purpose), ())
        evaluated = 0
        for policy in candidates:
            evaluated += 1
            if policy.authorizes(purpose, entity, at):
                self._cost.charge_fgac_eval(evaluated)
                return True, evaluated
        self._cost.charge_fgac_eval(max(evaluated, 1))
        return False, evaluated

    def check(self, unit_id: str, entity: Entity, purpose: str, at: int) -> int:
        allowed, evaluated = self.evaluate(unit_id, entity, purpose, at)
        if not allowed:
            raise AccessDenied(entity.name, purpose, unit_id)
        return evaluated

    # ----------------------------------------------------------------- space
    @property
    def guard_count(self) -> int:
        return len(self._guards)

    @property
    def size_bytes(self) -> int:
        """Base policy rows + guards + guard index + denormalized copies."""
        guards = len(self._guards)
        denormalized = sum(len(v) for v in self._guards.values())
        return (
            self.store.size_bytes
            + guards * (GUARD_BYTES + GUARD_INDEX_ENTRY_BYTES)
            + denormalized * GUARD_POLICY_BYTES
        )
