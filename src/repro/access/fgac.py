"""Fine-grained access control — per-data-unit policies.

FGAC evaluates the actual Data-CASE policies ⟨p, e, t_b, t_f⟩ attached to
each data unit at access time.  PostgreSQL "does not support FGAC" at this
granularity (§4.2), which is why P_SYS retrofits a middleware; the naive
controller here is the baseline that middleware improves on — and the
subject of the Sieve ablation bench.

The :class:`PolicyStore` doubles as the *metadata table* holding policies:
P_GBench "stores policies and other metadata in a table separate from the
one containing personal data", so lookups there charge a join probe.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.access.errors import AccessDenied
from repro.core.entities import Entity
from repro.core.policy import Policy
from repro.sim.costs import CostModel

#: Approximate bytes per stored policy row (unit id, purpose, entity, window).
POLICY_ROW_BYTES = 72


class PolicyStore:
    """Policies keyed by data unit — the separate metadata table."""

    def __init__(self) -> None:
        self._by_unit: Dict[str, List[Policy]] = {}
        self._count = 0

    def add(self, unit_id: str, policy: Policy) -> None:
        self._by_unit.setdefault(unit_id, []).append(policy)
        self._count += 1

    def policies_of(self, unit_id: str) -> List[Policy]:
        return list(self._by_unit.get(unit_id, ()))

    def remove_unit(self, unit_id: str) -> int:
        removed = len(self._by_unit.pop(unit_id, ()))
        self._count -= removed
        return removed

    @property
    def policy_count(self) -> int:
        return self._count

    @property
    def unit_count(self) -> int:
        return len(self._by_unit)

    @property
    def size_bytes(self) -> int:
        return self._count * POLICY_ROW_BYTES

    def units(self) -> Iterable[str]:
        return self._by_unit.keys()


class FgacController:
    """Naive fine-grained checks: scan every policy of the unit.

    ``join_per_check`` models P_GBench's schema: policies live in a separate
    table, so every check pays a join probe before evaluating candidates.
    """

    def __init__(
        self,
        cost: CostModel,
        store: Optional[PolicyStore] = None,
        join_per_check: bool = False,
    ) -> None:
        self._cost = cost
        self.store = store if store is not None else PolicyStore()
        self._join = join_per_check

    # --------------------------------------------------------------- manage
    def attach(self, unit_id: str, policy: Policy) -> None:
        self.store.add(unit_id, policy)
        self._cost.charge_policy_insert()

    # ---------------------------------------------------------------- checks
    def evaluate(
        self, unit_id: str, entity: Entity, purpose: str, at: int
    ) -> Tuple[bool, int]:
        """(allowed, policies_evaluated) — scans until a policy authorizes."""
        if self._join:
            self._cost.charge_policy_table_join()
        policies = self.store.policies_of(unit_id)
        evaluated = 0
        for policy in policies:
            evaluated += 1
            if policy.authorizes(purpose, entity, at):
                self._cost.charge_fgac_eval(evaluated)
                return True, evaluated
        self._cost.charge_fgac_eval(max(evaluated, 1))
        return False, evaluated

    def check(self, unit_id: str, entity: Entity, purpose: str, at: int) -> int:
        allowed, evaluated = self.evaluate(unit_id, entity, purpose, at)
        if not allowed:
            raise AccessDenied(entity.name, purpose, unit_id)
        return evaluated

    @property
    def size_bytes(self) -> int:
        return self.store.size_bytes
