"""Access-control exceptions."""

from __future__ import annotations


class AccessDenied(PermissionError):
    """The controller refused the operation.

    Carries enough context for the obligations invariant (Figure 1, VIII):
    a denied operation that was nonetheless executed is a breach.
    """

    def __init__(self, entity: str, purpose: str, resource: str) -> None:
        super().__init__(
            f"access denied: entity={entity!r} purpose={purpose!r} "
            f"resource={resource!r}"
        )
        self.entity = entity
        self.purpose = purpose
        self.resource = resource
