"""Access-control substrate.

Three enforcement tiers matching the profiles of §4.2:

* :mod:`repro.access.rbac` — role-based access control (P_Base): roles,
  role attributes, memberships; O(1) checks.
* :mod:`repro.access.fgac` — fine-grained access control: per-data-unit
  policies evaluated at access time.  Naive evaluation scans every policy
  attached to the unit.
* :mod:`repro.access.sieve` — a reimplementation of the Sieve middleware
  [51]: policies are grouped into guarded expressions indexed by
  (entity, purpose), cutting the candidate set per check while adding the
  considerable metadata footprint Table 2 reports for P_SYS.
"""

from repro.access.errors import AccessDenied
from repro.access.fgac import FgacController, PolicyStore
from repro.access.rbac import Permission, RbacController, Role
from repro.access.sieve import SieveMiddleware

__all__ = [
    "AccessDenied",
    "Role",
    "Permission",
    "RbacController",
    "PolicyStore",
    "FgacController",
    "SieveMiddleware",
]
