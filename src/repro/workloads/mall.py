"""The Mall dataset — simulated smart-space observations.

The paper enriches GDPRBench records with "the Mall dataset from [51]
comprising simulated data generated from personal devices in a shopping
complex.  Each record consists of a personal data-id and the recorded date
and time generated using the SmartBench simulator [35]."

This module is that simulator's stand-in: a seeded generator of device
observations in a mall with zones, WiFi access points, and per-device
dwell/movement behaviour.  Records serialize to ≈70 bytes of personal data,
matching Table 2's 7 MB for 100k records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List

#: The mall floor plan: zones a device can be observed in.
ZONES = (
    "entrance-north",
    "entrance-south",
    "atrium",
    "food-court",
    "electronics",
    "apparel",
    "grocery",
    "cinema",
    "parking",
)

#: WiFi access points per zone.
APS_PER_ZONE = 4

#: Nominal serialized record size (personal data id + timestamp + zone +
#: AP + device type + rssi) — 70 bytes, aligning with Table 2.
RECORD_BYTES = 70

#: Simulated observation cadence (one observation per device per tick).
TICK_MICROS = 60_000_000  # one minute


@dataclass(frozen=True)
class MallRecord:
    """One personal-device observation."""

    record_id: int
    device_id: int
    subject_id: int
    timestamp: int
    zone: str
    access_point: str
    rssi: int

    @property
    def size_bytes(self) -> int:
        return RECORD_BYTES

    def as_row(self) -> Dict[str, object]:
        """The row payload stored in the personal-data table."""
        return {
            "pid": self.record_id,
            "device": self.device_id,
            "subject": self.subject_id,
            "ts": self.timestamp,
            "zone": self.zone,
            "ap": self.access_point,
            "rssi": self.rssi,
        }


class MallDataset:
    """Seeded generator of mall observations.

    Devices perform a lazy random walk over zones: with probability
    ``move_prob`` a device transfers to an adjacent zone each tick,
    otherwise it dwells — giving realistic per-device locality (bursts of
    observations in one zone), which matters for the metadata-predicate
    reads (GDPRBench's READ_BY_META locates records by zone).
    """

    def __init__(
        self,
        n_devices: int = 1_000,
        seed: int = 42,
        move_prob: float = 0.3,
        start_time: int = 0,
    ) -> None:
        if n_devices < 1:
            raise ValueError("need at least one device")
        if not 0.0 <= move_prob <= 1.0:
            raise ValueError("move_prob must be a probability")
        self._rng = random.Random(seed)
        self._n_devices = n_devices
        self._move_prob = move_prob
        self._time = start_time
        self._next_record_id = 0
        self._positions: Dict[int, int] = {
            d: self._rng.randrange(len(ZONES)) for d in range(n_devices)
        }

    # -------------------------------------------------------------- generate
    def _observe(self, device: int) -> MallRecord:
        zone_index = self._positions[device]
        if self._rng.random() < self._move_prob:
            step = self._rng.choice((-1, 1))
            zone_index = (zone_index + step) % len(ZONES)
            self._positions[device] = zone_index
        zone = ZONES[zone_index]
        ap = f"{zone}-ap{self._rng.randrange(APS_PER_ZONE)}"
        record = MallRecord(
            record_id=self._next_record_id,
            device_id=device,
            subject_id=device,  # one device per data subject
            timestamp=self._time,
            zone=zone,
            access_point=ap,
            rssi=-30 - self._rng.randrange(60),
        )
        self._next_record_id += 1
        return record

    def generate(self, n_records: int) -> List[MallRecord]:
        """The next ``n_records`` observations, round-robin over devices."""
        if n_records < 0:
            raise ValueError("n_records must be non-negative")
        records: List[MallRecord] = []
        while len(records) < n_records:
            for device in range(self._n_devices):
                records.append(self._observe(device))
                if len(records) == n_records:
                    break
            self._time += TICK_MICROS
        return records

    def stream(self) -> Iterator[MallRecord]:
        """Endless observation stream (one tick per device sweep)."""
        while True:
            for device in range(self._n_devices):
                yield self._observe(device)
            self._time += TICK_MICROS

    # --------------------------------------------------------------- queries
    @property
    def device_count(self) -> int:
        return self._n_devices

    @staticmethod
    def total_bytes(records: List[MallRecord]) -> int:
        return sum(r.size_bytes for r in records)
