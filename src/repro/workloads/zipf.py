"""Zipfian sampling — YCSB's request distribution.

A precomputed-CDF sampler: exact, deterministic under a seed, and O(log n)
per draw via binary search.  YCSB's default skew constant is 0.99.
"""

from __future__ import annotations

import bisect
import random
from typing import List


class ZipfianSampler:
    """Draws item ranks in ``[0, n)`` with P(rank i) ∝ 1/(i+1)^theta."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self._n = n
        self._theta = theta
        self._rng = random.Random(seed)
        cdf: List[float] = []
        total = 0.0
        for i in range(n):
            total += 1.0 / ((i + 1) ** theta)
            cdf.append(total)
        self._cdf = [c / total for c in cdf]

    @property
    def n(self) -> int:
        return self._n

    @property
    def theta(self) -> float:
        return self._theta

    def sample(self) -> int:
        """One rank draw; rank 0 is the hottest item."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u)

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """Exact probability mass of ``rank``."""
        if not 0 <= rank < self._n:
            raise IndexError(f"rank out of range: {rank}")
        previous = self._cdf[rank - 1] if rank else 0.0
        return self._cdf[rank] - previous
