"""Workload model — operations, key management, workload containers."""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Iterator, List, Sequence, Tuple


class OpKind(Enum):
    """Operation kinds across the GDPRBench/YCSB mixes.

    ``*_META`` operations touch the metadata store (policies, subject
    records) rather than personal data; ``READ_BY_META`` reads data located
    through a metadata predicate (GDPRBench's "reads of data using
    metadata").
    """

    CREATE = "create"
    READ = "read"
    UPDATE = "update"
    DELETE = "delete"
    READ_META = "read-metadata"
    UPDATE_META = "update-metadata"
    READ_BY_META = "read-by-metadata"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Operation:
    """One benchmark operation."""

    kind: OpKind
    key: int
    payload: Any = None


class KeyPool:
    """Tracks live keys so deletes always target an existing record.

    O(1) uniform sampling and removal via the swap-pop idiom; creates mint
    monotonically increasing fresh keys.
    """

    def __init__(self, initial: int, rng: random.Random) -> None:
        if initial < 0:
            raise ValueError("initial key count must be non-negative")
        self._rng = rng
        self._alive: List[int] = list(range(initial))
        self._position: Dict[int, int] = {k: k for k in self._alive}
        self._next_key = initial

    def __len__(self) -> int:
        return len(self._alive)

    def __contains__(self, key: int) -> bool:
        return key in self._position

    def sample(self) -> int:
        """A uniformly random live key."""
        if not self._alive:
            raise IndexError("key pool is empty")
        return self._alive[self._rng.randrange(len(self._alive))]

    def create(self) -> int:
        key = self._next_key
        self._next_key += 1
        self._position[key] = len(self._alive)
        self._alive.append(key)
        return key

    def remove_random(self) -> int:
        key = self.sample()
        self.remove(key)
        return key

    def remove(self, key: int) -> None:
        pos = self._position.pop(key)
        last = self._alive.pop()
        if last != key:
            self._alive[pos] = last
            self._position[last] = pos

    def live_keys(self) -> Sequence[int]:
        return tuple(self._alive)


@dataclass
class Workload:
    """A named operation mix over a loaded dataset.

    ``operations`` is materialized so a run is exactly reproducible and the
    same workload object can be replayed against every profile.
    """

    name: str
    record_count: int
    operations: List[Operation]
    description: str = ""

    @property
    def transaction_count(self) -> int:
        return len(self.operations)

    def mix(self) -> Dict[OpKind, float]:
        """Observed operation-kind fractions — sanity-checked in tests
        against the paper's stated percentages."""
        if not self.operations:
            return {}
        counts: Dict[OpKind, int] = {}
        for op in self.operations:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        total = len(self.operations)
        return {kind: count / total for kind, count in counts.items()}

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)


def build_mixed_workload(
    name: str,
    record_count: int,
    n_transactions: int,
    mix: Sequence[Tuple[OpKind, float]],
    seed: int,
    description: str = "",
) -> Workload:
    """Generate a workload from a (kind, weight) mix.

    Keys for READ/UPDATE/DELETE come from a shared :class:`KeyPool` so the
    stream never touches a deleted record; CREATEs mint fresh keys.  If the
    pool ever empties (extreme delete-heavy mixes), remaining delete slots
    degrade to creates, keeping the stream executable.
    """
    weights = [w for _k, w in mix]
    if any(w < 0 for w in weights) or not weights or sum(weights) <= 0:
        raise ValueError("mix weights must be non-negative and sum > 0")
    rng = random.Random(seed)
    pool = KeyPool(record_count, rng)
    kinds = [k for k, _w in mix]
    operations: List[Operation] = []
    for _ in range(n_transactions):
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == OpKind.CREATE:
            operations.append(Operation(kind, pool.create()))
        elif kind == OpKind.DELETE:
            if len(pool) == 0:
                operations.append(Operation(OpKind.CREATE, pool.create()))
            else:
                operations.append(Operation(kind, pool.remove_random()))
        else:
            if len(pool) == 0:
                operations.append(Operation(OpKind.CREATE, pool.create()))
            else:
                operations.append(Operation(kind, pool.sample()))
    return Workload(name, record_count, operations, description)
