"""YCSB Workload C [20] — 100% reads, zipfian request distribution.

The paper uses it as the non-GDPR control: no metadata operations, so it
measures the residual overhead compliance machinery imposes on ordinary
traffic ("the impact of changes required for compliance is small on
non-GDPR operations").
"""

from __future__ import annotations

from repro.workloads.base import Operation, OpKind, Workload
from repro.workloads.zipf import ZipfianSampler


def ycsb_c_workload(
    record_count: int,
    n_transactions: int,
    seed: int = 10,
    theta: float = 0.99,
) -> Workload:
    """Workload C: read-only, zipfian-skewed keys."""
    sampler = ZipfianSampler(record_count, theta=theta, seed=seed)
    operations = [
        Operation(OpKind.READ, sampler.sample()) for _ in range(n_transactions)
    ]
    return Workload(
        "YCSB-C",
        record_count,
        operations,
        description="YCSB Workload C: 100% zipfian reads",
    )
