"""Workload generators.

Deterministic (seeded) reimplementations of the benchmarks the paper
evaluates with:

* :mod:`repro.workloads.gdprbench` — GDPRBench [68]: the Controller (WCon),
  Processor (WPro) and Customer (WCus) mixes, plus the Figure-4(a) erasure
  study workload (20% deletes / 80% reads);
* :mod:`repro.workloads.ycsb` — YCSB [20] Workload C (100% zipfian reads);
* :mod:`repro.workloads.mall` — the Mall dataset [51]: simulated personal-
  device observations in a shopping complex, SmartBench-style records [35];
* :mod:`repro.workloads.driver` — the concurrent-workload harness: replay
  any generated workload against a sharded store while a background
  rebalance advances in bounded steps between operations.
"""

from repro.workloads.base import KeyPool, Operation, OpKind, Workload
from repro.workloads.driver import (
    InterleavedRunResult,
    load_store,
    run_interleaved,
    unit_key,
)
from repro.workloads.gdprbench import (
    controller_workload,
    customer_workload,
    erasure_study_workload,
    processor_workload,
)
from repro.workloads.mall import MallDataset, MallRecord
from repro.workloads.ycsb import ycsb_c_workload
from repro.workloads.zipf import ZipfianSampler

__all__ = [
    "OpKind",
    "Operation",
    "Workload",
    "KeyPool",
    "ZipfianSampler",
    "controller_workload",
    "processor_workload",
    "customer_workload",
    "erasure_study_workload",
    "ycsb_c_workload",
    "MallDataset",
    "MallRecord",
    "InterleavedRunResult",
    "load_store",
    "run_interleaved",
    "unit_key",
]
