"""GDPRBench workloads [68], as specified in the paper (§4.2):

* **Controller (WCon)** — "25% create, 25% deletes, and 50% updates to
  metadata";
* **Processor (WPro)** — "80% reads of data using keys, and 20% reads of
  data using metadata";
* **Customer (WCus)** — "20% each of reads, updates, and deletes of data,
  and reads and updates of metadata";
* the **erasure study** customer mix of Figure 4(a) — "20% deletes on
  data, rest are reads".
"""

from __future__ import annotations

from repro.workloads.base import OpKind, Workload, build_mixed_workload


def controller_workload(
    record_count: int, n_transactions: int, seed: int = 1
) -> Workload:
    """WCon: create/delete churn plus metadata maintenance."""
    return build_mixed_workload(
        "WCon",
        record_count,
        n_transactions,
        [
            (OpKind.CREATE, 0.25),
            (OpKind.DELETE, 0.25),
            (OpKind.UPDATE_META, 0.50),
        ],
        seed,
        description="GDPRBench Controller: 25% create, 25% delete, "
        "50% metadata update",
    )


def processor_workload(
    record_count: int, n_transactions: int, seed: int = 2
) -> Workload:
    """WPro: read-only processing, partly located via metadata."""
    return build_mixed_workload(
        "WPro",
        record_count,
        n_transactions,
        [
            (OpKind.READ, 0.80),
            (OpKind.READ_BY_META, 0.20),
        ],
        seed,
        description="GDPRBench Processor: 80% key reads, 20% metadata reads",
    )


def customer_workload(
    record_count: int, n_transactions: int, seed: int = 3
) -> Workload:
    """WCus: the data-subject exercising rights — everything in equal parts."""
    return build_mixed_workload(
        "WCus",
        record_count,
        n_transactions,
        [
            (OpKind.READ, 0.20),
            (OpKind.UPDATE, 0.20),
            (OpKind.DELETE, 0.20),
            (OpKind.READ_META, 0.20),
            (OpKind.UPDATE_META, 0.20),
        ],
        seed,
        description="GDPRBench Customer: 20% each data read/update/delete, "
        "metadata read/update",
    )


def erasure_study_workload(
    record_count: int, n_transactions: int, seed: int = 4
) -> Workload:
    """The Figure-4(a) mix: 20% deletes on data, rest reads."""
    return build_mixed_workload(
        "WCus-erasure",
        record_count,
        n_transactions,
        [
            (OpKind.DELETE, 0.20),
            (OpKind.READ, 0.80),
        ],
        seed,
        description="Erasure study (Fig 4a): 20% deletes, 80% reads",
    )


def pure_delete_workload(
    record_count: int, n_transactions: int, seed: int = 5
) -> Workload:
    """100% deletes — the control the paper cites: on this mix VACUUM is
    pure overhead and plain DELETE wins ("the expected performance is
    observed for a workload composed only of deletions")."""
    return build_mixed_workload(
        "W-delete-only",
        record_count,
        n_transactions,
        [(OpKind.DELETE, 1.0)],
        seed,
        description="Deletion-only control workload",
    )
