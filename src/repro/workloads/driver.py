"""Concurrent-workload driver — live traffic interleaved with background
rebalancing.

The elastic-sharding claims only matter if they hold *under load*: the
paper's §1 guarantee ("erase all copies" means every physical site) has to
survive a migration that is still running while reads, writes, and grounded
erases keep arriving.  This module turns any generated
:class:`~repro.workloads.base.Workload` (YCSB, the GDPRBench mixes, the
erasure study) into live traffic against a
:class:`~repro.distributed.store.ReplicatedStore`, interleaving a bounded
:meth:`~repro.distributed.store.RebalanceDriver.step` of background key
movement every ``ops_per_step`` operations:

* ``READ`` ops run at the chosen consistency level, so quorum reads that
  observe replica divergence (migration imports create fresh backlog at the
  destination shards) queue the read repairs the driver then flushes;
* ``DELETE`` ops run the **grounded** distributed erase — each one is the
  Art. 17 stress case landing mid-rebalance, and the run records whether
  every single one verified clean;
* ``CREATE``/``UPDATE`` ops write through the dual-routing path, landing at
  the key's correct owner whichever migration phase it is in;
* metadata operations (policy/subject-record traffic) have no replicated-
  store counterpart and are counted but not applied.

``bench_sharding.py``'s rebalance-under-load section and ``python -m repro
rebalance --background`` are both thin wrappers over
:func:`run_interleaved`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.analysis.invariants import Invariant, World, check_invariants
from repro.distributed.faults import FaultError, FaultInjector, FaultPlan
from repro.storage.errors import TupleNotFoundError
from repro.workloads.base import OpKind, Workload


def unit_key(key: int) -> str:
    """The store key for a workload's integer key (matches the ``u%06d``
    convention the sharding benches load with)."""
    return f"u{key:06d}"


def load_store(
    store: Any,
    workload: Workload,
    key_fn: Callable[[int], str] = unit_key,
    value_fn: Callable[[int], Any] = lambda i: (i, "payload"),
) -> List[str]:
    """Load the workload's initial records; returns the keys loaded."""
    keys = [key_fn(i) for i in range(workload.record_count)]
    for i, key in enumerate(keys):
        store.put(key, value_fn(i))
    return keys


@dataclass(frozen=True)
class InterleavedRunResult:
    """What a workload-under-rebalance run did, and whether it stayed
    grounded.

    ``erases_verified_clean`` is the §1 acceptance bit: every DELETE in the
    mix ran as a grounded ``erase_all_copies`` *while the migration was in
    whatever phase it happened to be in*, and all of them verified zero
    lingering copies.  ``repairs`` counts completed read repairs (replica
    re-syncs triggered by diverged quorum reads).

    When the run carries a registry from
    :mod:`repro.analysis.invariants`, ``invariants_checked`` counts the
    individual invariant evaluations performed (once per registered
    invariant at every step boundary, plus a final post-drain sweep) and
    ``invariant_violations`` collects the distinct violation messages —
    empty on a healthy run.
    """

    workload: str
    ops_applied: int
    reads: int
    writes: int
    erases: int
    metadata_ops: int
    read_misses: int
    erases_verified_clean: bool
    driver_steps: int
    keys_stepped: int
    repairs: int
    rebalance_completed: bool
    invariants_checked: int = 0
    invariant_violations: Tuple[str, ...] = ()
    #: Fault-plan transitions applied / skipped (stale topology) during the
    #: run, when a :class:`~repro.distributed.faults.FaultPlan` was given.
    fault_events_applied: int = 0
    fault_events_skipped: int = 0
    #: Operations that failed fast against an injected fault (a partitioned
    #: shard or an unassemblable quorum) — unavailability, not data loss:
    #: the harness never counts them as applied writes or grounded erases.
    fault_errors: int = 0


def run_interleaved(
    store: Any,
    workload: Workload,
    driver: Optional[Any] = None,
    ops_per_step: int = 32,
    budget_keys: int = 32,
    consistency: str = "one",
    key_fn: Callable[[int], str] = unit_key,
    drain: bool = True,
    invariants: Optional[Sequence[Invariant]] = None,
    faults: Optional[FaultPlan] = None,
) -> InterleavedRunResult:
    """Replay ``workload`` against ``store`` while ``driver`` advances a
    background rebalance ``budget_keys`` keys at a time.

    Every ``ops_per_step`` operations the driver takes one bounded step
    (and flushes pending read repairs); with no driver the repairs are
    still flushed on the same cadence, so a pure-traffic run exercises the
    asynchronous repair loop too.  With ``drain`` the migration is driven
    to completion after the traffic ends — the store never stays
    dual-routing forever because the workload was short.

    ``invariants`` (a registry from :mod:`repro.analysis.invariants`)
    turns the run into its own oracle: the harness maintains a
    :class:`World` of what it believes live/erased, and evaluates every
    registered invariant at each step boundary and once after the drain —
    exactly the moments the migration's dual-routing state just changed.

    ``faults`` (a :class:`~repro.distributed.faults.FaultPlan`) replays a
    seeded kill/revive/partition/heal schedule between operations: every
    transition due at the current op index is applied before the op runs,
    and operations that fail fast against an injected fault count as
    ``fault_errors`` rather than applied work.  Before the drain, every
    remaining scheduled transition is applied and all still-active faults
    are healed — the drain must terminate, and the plan's own epilogue is
    exactly the revive/heal tail — so the post-drain invariant sweep always
    runs on a fully-healed topology.
    """
    if ops_per_step < 1:
        raise ValueError("ops_per_step must be >= 1")
    reads = writes = erases = metadata = misses = 0
    repairs = 0
    injector: Optional[FaultInjector] = None
    plan_applied = 0
    fault_applied = fault_skipped = fault_errors = 0
    if faults is not None:
        injector = getattr(store, "_fault_injector", None) or FaultInjector(
            store
        )

    def apply_due(op_index: int) -> None:
        nonlocal plan_applied, fault_applied, fault_skipped
        due = faults.due(op_index, plan_applied)
        if due:
            plan_applied += len(due)
            report = injector.apply(due)
            fault_applied += report.applied
            fault_skipped += report.skipped
    world = (
        World.observe(store, driver=driver) if invariants is not None else None
    )
    invariants_checked = 0
    violations: List[str] = []

    def run_checks() -> None:
        nonlocal invariants_checked
        if world is None:
            return
        invariants_checked += len(invariants)
        for violation in check_invariants(world, invariants):
            message = str(violation)
            if message not in violations:
                violations.append(message)
    # Only repairs completed during THIS run count — the driver may have
    # flushed some in earlier steps (or an earlier run over the same
    # driver).
    driver_repairs_before = len(driver.repairs) if driver is not None else 0
    clean = True
    for i, op in enumerate(workload):
        if faults is not None:
            apply_due(i)
        try:
            if op.kind is OpKind.CREATE:
                store.put(key_fn(op.key), op.payload or (op.key, "payload"))
                if world is not None:
                    world.record_write(key_fn(op.key))
                writes += 1
            elif op.kind is OpKind.READ:
                try:
                    store.read(
                        key_fn(op.key), use_cache=False, consistency=consistency
                    )
                except TupleNotFoundError:
                    misses += 1
                reads += 1
            elif op.kind is OpKind.UPDATE:
                try:
                    store.update(
                        key_fn(op.key), op.payload or (op.key, "rewritten")
                    )
                except TupleNotFoundError:
                    if faults is None:
                        raise
                    # The key's CREATE failed fast against a fault earlier
                    # in this run — nothing to update is unavailability
                    # fallout, not an error.
                    misses += 1
                else:
                    if world is not None:
                        world.record_write(key_fn(op.key))
                    writes += 1
            elif op.kind is OpKind.DELETE:
                report = store.erase_all_copies(key_fn(op.key))
                clean = clean and report.verified_clean
                if world is not None:
                    world.record_erase(key_fn(op.key), report)
                erases += 1
            else:  # metadata traffic has no replicated-store counterpart
                metadata += 1
        except FaultError:
            # Fail-fast unavailability (partitioned shard, unassemblable
            # quorum).  Deliberately counted *before* any ground-truth
            # update: a DELETE that failed here did not erase, so the
            # harness keeps expecting the key live — and the invariant
            # sweep will catch the store if that stops being true.
            fault_errors += 1
        if (i + 1) % ops_per_step == 0:
            if driver is not None and not driver.done:
                driver.step(budget_keys)
            else:
                repairs += len(store.flush_repairs())
            run_checks()
    if faults is not None:
        # Epilogue before the drain: run the rest of the schedule (its
        # revive/heal tail included), then defensively heal anything still
        # active — a drain against a permanent partition would never
        # terminate, and the post-drain checks must see a healed topology.
        rest = list(faults.actions[plan_applied:])
        if rest:
            plan_applied += len(rest)
            report = injector.apply(rest)
            fault_applied += report.applied
            fault_skipped += report.skipped
        injector.heal_all()
    if driver is not None and drain:
        while not driver.done:
            driver.step(budget_keys)
    repairs += len(store.flush_repairs())
    if driver is not None:
        repairs += len(driver.repairs) - driver_repairs_before
    run_checks()
    return InterleavedRunResult(
        workload=workload.name,
        ops_applied=workload.transaction_count,
        reads=reads,
        writes=writes,
        erases=erases,
        metadata_ops=metadata,
        read_misses=misses,
        erases_verified_clean=clean,
        driver_steps=driver.steps if driver is not None else 0,
        keys_stepped=driver.keys_processed if driver is not None else 0,
        repairs=repairs,
        rebalance_completed=driver.done if driver is not None else False,
        invariants_checked=invariants_checked,
        invariant_violations=tuple(violations),
        fault_events_applied=fault_applied,
        fault_events_skipped=fault_skipped,
        fault_errors=fault_errors,
    )
