"""An LSM-tree storage substrate (Cassandra-style tombstone deletes).

The paper's §1 motivation: logical deletes via tombstones are fast, but the
deleted value is *physically retained* until compaction merges it away —
prior work (Lethe, [62]) showed this can illegally retain data for a long
time.  This package implements a memtable + SSTable engine with pluggable
compaction (size-tiered or leveled, :mod:`repro.lsm.compaction`) that
measures exactly that retention window, and supplies the "Tombstones
(Indexing)" series of Figure 4(a).
"""

from repro.lsm.bloom import BloomFilter, BloomHashCache
from repro.lsm.compaction import (
    COMPACTION_POLICIES,
    CompactionEvent,
    CompactionPolicy,
    CompactionScheduler,
    CompactionStats,
    CompactionTask,
    LeveledPolicy,
    SizeTieredPolicy,
    make_compaction_policy,
)
from repro.lsm.engine import LSMEngine, RetentionRecord
from repro.lsm.memtable import TOMBSTONE, Memtable
from repro.lsm.sstable import SSTable

__all__ = [
    "BloomFilter",
    "BloomHashCache",
    "COMPACTION_POLICIES",
    "CompactionEvent",
    "CompactionPolicy",
    "CompactionScheduler",
    "CompactionStats",
    "CompactionTask",
    "LeveledPolicy",
    "SizeTieredPolicy",
    "make_compaction_policy",
    "Memtable",
    "TOMBSTONE",
    "SSTable",
    "LSMEngine",
    "RetentionRecord",
]
