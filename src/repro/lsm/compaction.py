"""Compaction policies and scheduling — the LSM engine's reclamation seam.

The paper grounds "delete" on an LSM store as *tombstone + compaction*: the
tombstone is the O(1) logical half, and compaction is the system-action that
makes shadowed values physically unrecoverable.  How compaction is organized
is therefore not an engine-internal detail — it decides *when* the physical
half of the grounding actually happens and how much write bandwidth it
costs.  This module makes that organization pluggable:

* :class:`SizeTieredPolicy` — the original behaviour: whenever
  ``tier_threshold`` runs accumulate, the oldest ``tier_threshold`` of them
  merge into one.  Cheap to trigger, but every merge re-reads the large
  accumulated run, so write amplification grows with data volume — the cost
  signature Figure 4(c) exposes at the 500k-record scale.
* :class:`LeveledPolicy` — RocksDB/LevelDB-style leveling: L0 collects
  flushed runs (overlap tolerated); when ``l0_trigger`` runs accumulate they
  merge with the overlapping L1 tables into L1; each level ``i ≥ 1`` holds
  non-overlapping tables and may hold ``level1_tables * fanout**(i-1)`` of
  them before one victim (the oldest) is pushed into level ``i+1``, merging
  only the tables it overlaps.  Merges touch a bounded slice of the tree, so
  bulk ingest rewrites far fewer bytes.

**Erasure-aware tombstone GC.**  A tombstone may only be garbage-collected
when nothing *older* could still hold a shadowed value for its key —
otherwise the deleted value would resurrect, an erasure-consistency bug, not
a performance one.  Both policies encode the engine-specific safety rule:

* size-tiered: drop tombstones only when the merge output becomes the
  oldest run (and no deeper level exists);
* leveled: drop tombstones only when the merge output lands in the bottom
  level (every deeper level is empty).  Non-overlapping levels guarantee no
  sibling table at the target level can hold the key, and the level
  invariant (versions only get older as you descend) guarantees nothing
  above needs the tombstone.

Every executed merge emits a :class:`CompactionEvent` carrying the keys
whose tombstones were dropped — the moment their "delete" grounding
physically completed.  The system layer subscribes to these events and
records them as grounded system-actions in the audit timeline (cf.
SPECIAL-K's auditable processing logs), so compaction is demonstrable, not
implicit.

:class:`CompactionScheduler` decides *when* planned work runs: ``"sync"``
drains the policy's plan immediately after every flush (the default, and
the original behaviour); ``"deferred"`` only queues it — the backend (or a
test) invokes :meth:`CompactionScheduler.drain` between operations.  The
deferred mode is what makes "erase issued mid-compaction" an observable,
testable state instead of an impossible interleaving.

**Throttling.**  ``drain(engine, max_bytes=…)`` bounds one maintenance
slice by merge *input* bytes: the drain always makes progress (at least
one merge when work is planned) but stops once the budget is spent,
leaving ``pending`` set so the next slice resumes.  Because the engine
re-plans after every merge, a slice boundary is always a structurally
consistent tree — tombstone-GC safety and per-SSTable copy sites hold at
every boundary, which is what lets the service maintenance thread
interleave bounded slices with live grounded erases.  The scheduler also
models *concurrent merges*: consecutive planned merges whose source and
target levels are disjoint form one "wave" (they could run in parallel on
real hardware); a level conflict starts the next wave.
``inflight_high_water`` records the widest wave observed.  When level 0
piles past ``l0_stall_threshold`` runs, a deferred-mode flush request
raises the *write-stall* signal (``stall_events``) and pays one bounded
inline slice — ingest backpressure, bounded by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple, Union

from repro.lsm.sstable import SSTable

#: Level lists as the engine stores them: ``levels[0]`` newest-first and
#: overlap-tolerant; ``levels[i]`` for ``i >= 1`` sorted by key range,
#: non-overlapping (leveled policy only — size-tiered keeps everything flat
#: in level 0).
Levels = Sequence[Sequence[SSTable]]


@dataclass(frozen=True)
class CompactionTask:
    """One planned merge: which tables, where the output goes, and whether
    tombstones may be garbage-collected.

    ``sources`` pairs each participating level with the tables taken from
    it; ``max_output_entries`` caps the size of each output table (None =
    single unsplit output, the size-tiered shape).
    """

    sources: Tuple[Tuple[int, Tuple[SSTable, ...]], ...]
    target_level: int
    drop_tombstones: bool
    reason: str
    max_output_entries: Optional[int] = None

    @property
    def tables(self) -> Tuple[SSTable, ...]:
        return tuple(t for _level, ts in self.sources for t in ts)


@dataclass(frozen=True)
class CompactionEvent:
    """What one executed merge did — the auditable record.

    ``dropped_keys`` are the keys whose tombstones were garbage-collected:
    the instant their "delete" grounding physically completed.  The system
    layer turns each into a grounded system-action in the audit timeline.
    """

    policy: str
    reason: str
    target_level: int
    input_tables: int
    input_entries: int
    output_entries: int
    output_bytes: int
    tombstones_dropped: int
    dropped_keys: Tuple[Any, ...]
    timestamp: int


class CompactionPolicy(ABC):
    """The planning seam: inspect the level structure, propose one merge."""

    name = "abstract"

    #: Cap on entries per output table (None = one unsplit output run).
    max_output_entries: Optional[int] = None

    @abstractmethod
    def plan(self, levels: Levels) -> Optional[CompactionTask]:
        """The next merge to run, or None when the tree is in shape.  The
        engine re-plans after every executed task, so returning one task at
        a time is enough to express multi-step cascades."""

    def full_compaction_target(self, levels: Levels) -> int:
        """Where the everything-merge of a grounded erase should land."""
        return 0


def level0_tombstone_gc_safe(
    victims: Sequence[SSTable], levels: Levels
) -> bool:
    """Whether a level-0 merge of ``victims`` may GC tombstones: the merge
    output must become the oldest run and no deeper level may hold data —
    otherwise a dropped tombstone would resurrect a shadowed value.  The
    single safety predicate for every level-0-shaped merge (the size-tiered
    plan and the engine's legacy manual merge)."""
    level0 = levels[0] if levels else ()
    if not level0 or not victims:
        return False
    deeper = any(levels[i] for i in range(1, len(levels)))
    return victims[-1] is level0[-1] and not deeper


class SizeTieredPolicy(CompactionPolicy):
    """The original size-tiered scheme, verbatim: when ``tier_threshold``
    runs accumulate in level 0, the oldest ``tier_threshold`` merge into one
    run placed where they sat (recency order preserved)."""

    name = "size"

    def __init__(self, tier_threshold: int = 4) -> None:
        if tier_threshold < 2:
            raise ValueError("tier_threshold must be >= 2")
        self.tier_threshold = tier_threshold

    def plan(self, levels: Levels) -> Optional[CompactionTask]:
        level0 = levels[0] if levels else ()
        if len(level0) < self.tier_threshold:
            return None
        victims = tuple(level0[-self.tier_threshold:])
        return CompactionTask(
            sources=((0, victims),),
            target_level=0,
            drop_tombstones=level0_tombstone_gc_safe(victims, levels),
            reason=f"tier merge ({len(victims)} runs)",
        )


class LeveledPolicy(CompactionPolicy):
    """Leveled compaction: L0 overlap-tolerant, L1+ non-overlapping key
    ranges, level-targeted fan-out.

    ``l0_trigger`` flushed runs merge (with every overlapping L1 table)
    into L1; level ``i >= 1`` may hold ``level1_tables * fanout**(i-1)``
    tables of at most ``table_capacity`` entries each before its oldest
    table is pushed one level down, merging only the tables it overlaps.
    """

    name = "leveled"

    def __init__(
        self,
        l0_trigger: int = 4,
        fanout: int = 8,
        level1_tables: int = 4,
        table_capacity: int = 4096,
    ) -> None:
        if l0_trigger < 2:
            raise ValueError("l0_trigger must be >= 2")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        if level1_tables < 1:
            raise ValueError("level1_tables must be >= 1")
        if table_capacity < 1:
            raise ValueError("table_capacity must be >= 1")
        self.l0_trigger = l0_trigger
        self.fanout = fanout
        self.level1_tables = level1_tables
        self.table_capacity = table_capacity
        self.max_output_entries = table_capacity

    def max_tables(self, level: int) -> int:
        """Table budget for level ``i >= 1``."""
        return self.level1_tables * self.fanout ** (level - 1)

    @staticmethod
    def _overlapping(
        tables: Sequence[SSTable], lo: Any, hi: Any
    ) -> Tuple[SSTable, ...]:
        return tuple(
            t
            for t in tables
            if not (t.max_key < lo or t.min_key > hi)
        )

    def plan(self, levels: Levels) -> Optional[CompactionTask]:
        level0 = levels[0] if levels else ()
        if len(level0) >= self.l0_trigger:
            lo = min(t.min_key for t in level0)
            hi = max(t.max_key for t in level0)
            level1 = levels[1] if len(levels) > 1 else ()
            overlap = self._overlapping(level1, lo, hi)
            sources: Tuple[Tuple[int, Tuple[SSTable, ...]], ...] = (
                (0, tuple(level0)),
            )
            if overlap:
                sources += ((1, overlap),)
            # Safe to GC tombstones iff the output lands in the bottom
            # level: every level below L1 must be empty.  Non-overlapping
            # siblings at L1 cannot hold the merged keys.
            drop = not any(levels[i] for i in range(2, len(levels)))
            return CompactionTask(
                sources=sources,
                target_level=1,
                drop_tombstones=drop,
                reason=f"L0→L1 ({len(level0)} runs, {len(overlap)} overlaps)",
                max_output_entries=self.table_capacity,
            )
        for i in range(1, len(levels)):
            if len(levels[i]) <= self.max_tables(i):
                continue
            victim = min(levels[i], key=lambda t: t.created_at)
            below = levels[i + 1] if i + 1 < len(levels) else ()
            overlap = self._overlapping(below, victim.min_key, victim.max_key)
            sources = ((i, (victim,)),)
            if overlap:
                sources += ((i + 1, overlap),)
            drop = not any(levels[j] for j in range(i + 2, len(levels)))
            return CompactionTask(
                sources=sources,
                target_level=i + 1,
                drop_tombstones=drop,
                reason=f"L{i}→L{i + 1} (1 victim, {len(overlap)} overlaps)",
                max_output_entries=self.table_capacity,
            )
        return None

    def full_compaction_target(self, levels: Levels) -> int:
        deepest = 0
        for i in range(1, len(levels)):
            if levels[i]:
                deepest = i
        return max(1, deepest)


@dataclass(frozen=True)
class CompactionStats:
    """One scheduler's merge/throttle counters, as a frozen snapshot."""

    merges_run: int
    bytes_compacted: int
    stall_events: int
    queue_depth: int
    inflight_high_water: int

    def __add__(self, other: "CompactionStats") -> "CompactionStats":
        return CompactionStats(
            merges_run=self.merges_run + other.merges_run,
            bytes_compacted=self.bytes_compacted + other.bytes_compacted,
            stall_events=self.stall_events + other.stall_events,
            queue_depth=self.queue_depth + other.queue_depth,
            inflight_high_water=max(
                self.inflight_high_water, other.inflight_high_water
            ),
        )


#: Identity element for summing :class:`CompactionStats` across engines.
EMPTY_COMPACTION_STATS = CompactionStats(0, 0, 0, 0, 0)


class CompactionScheduler:
    """Decides when the policy's planned merges actually run.

    ``"sync"`` drains the plan inside every flush (original behaviour);
    ``"deferred"`` only marks work pending — the owner invokes
    :meth:`drain` between operations, optionally with a ``max_bytes``
    budget (see the module docstring's throttling model).  Grounded erases
    (full compaction) always run synchronously regardless of mode: the
    erase verb *is* the reclamation."""

    MODES = ("sync", "deferred")

    def __init__(
        self,
        mode: str = "sync",
        l0_stall_threshold: int = 12,
        stall_slice_bytes: int = 1 << 20,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}")
        if l0_stall_threshold < 2:
            raise ValueError("l0_stall_threshold must be >= 2")
        if stall_slice_bytes < 1:
            raise ValueError("stall_slice_bytes must be positive")
        self.mode = mode
        self.l0_stall_threshold = l0_stall_threshold
        self.stall_slice_bytes = stall_slice_bytes
        self.pending = False
        self.tasks_run = 0
        # Throttle/concurrency accounting (see module docstring).
        self.merges_run = 0
        self.bytes_compacted = 0
        self.stall_events = 0
        self.deferred_requests = 0
        self.inflight_high_water = 0

    @property
    def queue_depth(self) -> int:
        """Flush-triggered requests queued since the last complete drain."""
        return self.deferred_requests

    def stats(self) -> CompactionStats:
        return CompactionStats(
            merges_run=self.merges_run,
            bytes_compacted=self.bytes_compacted,
            stall_events=self.stall_events,
            queue_depth=self.deferred_requests,
            inflight_high_water=self.inflight_high_water,
        )

    def request(self, engine: "LSMEngineProtocol") -> None:
        """A flush happened: run (sync) or queue (deferred) the plan.

        A deferred request finding level 0 past ``l0_stall_threshold``
        runs is a *write stall*: the writer pays one bounded inline slice
        (``stall_slice_bytes`` of merge input) so ingest cannot outrun
        maintenance without bound."""
        if self.mode == "sync":
            self.drain(engine)
            return
        self.pending = True
        self.deferred_requests += 1
        if len(engine.level_view()[0]) >= self.l0_stall_threshold:
            self.stall_events += 1
            self.drain(engine, max_bytes=self.stall_slice_bytes)

    def drain(
        self,
        engine: "LSMEngineProtocol",
        max_bytes: Optional[int] = None,
    ) -> int:
        """Execute planned merges until the policy is satisfied or the
        ``max_bytes`` input budget is spent; returns the number of tasks
        run.  A budgeted drain always runs at least one merge when work is
        planned, and leaves ``pending`` set when it stops early."""
        ran = 0
        spent = 0
        wave: set = set()
        while True:
            task = engine.compaction_policy.plan(engine.level_view())
            if task is None:
                self.pending = False
                self.deferred_requests = 0
                break
            levels_touched = {level for level, _tables in task.sources}
            levels_touched.add(task.target_level)
            if wave & levels_touched:
                # Level conflict: this merge must wait for the current
                # wave — start the next one.
                wave = set()
            wave |= levels_touched
            if len(wave) > self.inflight_high_water:
                self.inflight_high_water = len(wave)
            # Trivial moves (single input, no tombstone drop) rewrite
            # nothing — they are free against the slice budget, exactly as
            # they are free in the engine's write-amplification accounting.
            if len(task.tables) > 1 or task.drop_tombstones:
                spent += sum(t.size_bytes for t in task.tables)
            engine.execute_compaction(task)
            ran += 1
            if max_bytes is not None and spent >= max_bytes:
                # Budget exhausted mid-queue: pending stays set iff more
                # work remains, so the next slice resumes where we stopped.
                self.pending = (
                    engine.compaction_policy.plan(engine.level_view())
                    is not None
                )
                if not self.pending:
                    self.deferred_requests = 0
                break
        self.tasks_run += ran
        self.merges_run += ran
        self.bytes_compacted += spent
        return ran


class LSMEngineProtocol:  # pragma: no cover - typing aid only
    """The slice of :class:`~repro.lsm.engine.LSMEngine` the scheduler uses."""

    compaction_policy: CompactionPolicy

    def level_view(self) -> Levels: ...

    def execute_compaction(self, task: CompactionTask) -> None: ...


#: Policy spec → constructor name, the selection table the CLI exposes.
COMPACTION_POLICIES = ("size", "leveled")


def make_compaction_policy(
    spec: Union[str, CompactionPolicy],
    tier_threshold: int = 4,
    table_capacity: int = 4096,
) -> CompactionPolicy:
    """Build a policy from a CLI-style spec ("size" | "leveled") or pass an
    instance through.  ``tier_threshold`` parameterizes the size-tiered
    policy (and the leveled L0 trigger); ``table_capacity`` sizes leveled
    output tables (the memtable capacity is the natural choice)."""
    if isinstance(spec, CompactionPolicy):
        return spec
    if spec == "size":
        return SizeTieredPolicy(tier_threshold=tier_threshold)
    if spec == "leveled":
        return LeveledPolicy(
            l0_trigger=tier_threshold, table_capacity=table_capacity
        )
    raise ValueError(
        f"unknown compaction policy {spec!r}; choose from {COMPACTION_POLICIES}"
    )
