"""The LSM engine — tombstone deletes and size-tiered compaction.

Write path: memtable put (O(1)); a full memtable flushes into an immutable
SSTable.  Delete writes a tombstone — O(1), no physical removal.  Read path:
memtable, then runs newest→oldest, Bloom-filtered; each run actually probed
charges an I/O.

Size-tiered compaction: when ``tier_threshold`` runs of similar size
accumulate, they merge into one.  Tombstones are only dropped when the merge
output is the *oldest* run (nothing below could still hold shadowed values);
otherwise dropping a tombstone would resurrect older versions.

Block cache: repeated point reads of the same key pay the run-probe I/O
only once — the search outcome is cached in a small LRU keyed block cache
and served at tuple-CPU cost until a write to the key invalidates it.
Together with the Bloom short-circuit (runs whose filter rejects the key
are never probed, and a read whose key no filter accepts does zero run
I/O) this is what makes the read-heavy Figure-4 mixes viable on the LSM
backend; ``cache_hits`` / ``cache_misses`` / ``bloom_negatives`` expose
the effect to the bench harness.

Retention accounting (the §1 motivation): for every deleted key the engine
records when the tombstone was written and when the last physical copy of
the value disappeared from every run — the difference is the *physical
retention window*, the quantity [62] showed can violate "undue delay".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.lsm.memtable import TOMBSTONE, Memtable
from repro.lsm.sstable import SSTable
from repro.sim.costs import CostModel


@dataclass
class RetentionRecord:
    """Physical-retention bookkeeping for one deleted key."""

    key: Any
    deleted_at: int
    purged_at: Optional[int] = None

    @property
    def window(self) -> Optional[int]:
        """Microseconds the value remained on disk past its deletion."""
        if self.purged_at is None:
            return None
        return self.purged_at - self.deleted_at


class LSMEngine:
    """A single-level-namespace LSM tree with retention tracking."""

    def __init__(
        self,
        cost: CostModel,
        payload_bytes: int = 70,
        memtable_capacity: int = 4096,
        tier_threshold: int = 4,
        block_cache_capacity: int = 1024,
    ) -> None:
        if tier_threshold < 2:
            raise ValueError("tier_threshold must be >= 2")
        if block_cache_capacity < 0:
            raise ValueError("block_cache_capacity must be non-negative")
        self._cost = cost
        self._payload_bytes = payload_bytes
        self._memtable = Memtable(memtable_capacity)
        self._memtable_capacity = memtable_capacity
        self._tier_threshold = tier_threshold
        self._runs: List[SSTable] = []  # newest first
        self._seqno = 0
        self._retention: Dict[Any, RetentionRecord] = {}
        self.flush_count = 0
        self.compaction_count = 0
        # LRU block cache over run-search outcomes (key -> latest run value,
        # TOMBSTONE included; absent keys cache a None).  Writes to a key
        # invalidate its entry, so staleness is impossible: a key can only
        # reach the runs through the memtable, and the memtable is always
        # consulted first.
        self._cache_capacity = block_cache_capacity
        self._block_cache: "OrderedDict[Any, Optional[Any]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.bloom_negatives = 0

    # ---------------------------------------------------------------- writes
    def put(self, key: Any, value: Any) -> None:
        self._seqno += 1
        self._cost.charge_memtable_op()
        self._memtable.put(key, value, self._seqno)
        self._block_cache.pop(key, None)
        # A re-insert after deletion ends that key's retention question.
        self._retention.pop(key, None)
        if self._memtable.is_full:
            self.flush()

    def delete(self, key: Any) -> None:
        """Logical delete: write a tombstone.  O(1), nothing is removed.

        Tombstones occupy memtable slots just like values, so the delete
        path honours the same capacity bound as :meth:`put` — a delete-only
        workload flushes instead of overrunning the buffer.
        """
        self._seqno += 1
        self._cost.charge_memtable_op()
        self._memtable.put(key, TOMBSTONE, self._seqno)
        self._block_cache.pop(key, None)
        self._retention[key] = RetentionRecord(key, self._now())
        if self._memtable.is_full:
            self.flush()

    def put_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        """Bulk upsert; flush-on-full applies exactly as in :meth:`put`."""
        count = 0
        for key, value in items:
            self.put(key, value)
            count += 1
        return count

    def delete_many(self, keys: Iterable[Any]) -> int:
        """Bulk tombstone writes; flush-on-full applies as in :meth:`delete`."""
        count = 0
        for key in keys:
            self.delete(key)
            count += 1
        return count

    def flush(self) -> Optional[SSTable]:
        """Freeze the memtable into a new newest run."""
        if len(self._memtable) == 0:
            return None
        entries = self._memtable.sorted_entries()
        self._cost.charge_compaction(len(entries))
        run = SSTable(entries, self._payload_bytes, self._now())
        self._runs.insert(0, run)
        self._memtable.clear()
        self.flush_count += 1
        self._maybe_compact()
        self._update_retention()
        return run

    # ----------------------------------------------------------------- reads
    def get(self, key: Any) -> Optional[Any]:
        """Latest value, or None if absent/deleted.

        Charges one memtable op plus — on a block-cache miss — one run
        probe per Bloom-passing run actually searched; read amplification
        grows with run count, which is the cost signature of the tombstone
        approach in Figure 4(a).  A cache hit serves the prior run-search
        outcome at tuple-CPU cost; Bloom filters short-circuit runs that
        cannot hold the key.
        """
        self._cost.charge_memtable_op()
        found = self._memtable.get(key)
        if found is not None:
            value = found[1]
            return None if value is TOMBSTONE else value
        return self._search_runs(key)

    def _search_runs(self, key: Any) -> Optional[Any]:
        """Newest-first run search behind the block cache."""
        if self._cache_capacity and key in self._block_cache:
            self._block_cache.move_to_end(key)
            self._cost.charge_tuple_cpu()
            self.cache_hits += 1
            value = self._block_cache[key]
            return None if value is TOMBSTONE else value
        self.cache_misses += 1
        outcome: Optional[Any] = None
        probed = False
        for run in self._runs:
            if not run.might_contain(key):
                self.bloom_negatives += 1
                continue
            probed = True
            self._cost.charge_sstable_probe()
            got = run.get(key)
            if got is not None:
                outcome = got[1]
                break
        if self._cache_capacity and (probed or self._runs):
            self._block_cache[key] = outcome
            self._block_cache.move_to_end(key)
            while len(self._block_cache) > self._cache_capacity:
                self._block_cache.popitem(last=False)
        return None if outcome is TOMBSTONE else outcome

    def range(self, lo: Any, hi: Any) -> List[Tuple[Any, Any]]:
        """Merged live entries with ``lo ≤ key ≤ hi``."""
        self._cost.charge_memtable_op()
        best: Dict[Any, Tuple[int, Any]] = {}
        for key, (seqno, value) in self._memtable.items():
            if lo <= key <= hi:
                best[key] = (seqno, value)
        for run in self._runs:
            self._cost.charge_sstable_probe()
            for key, seqno, value in run.range(lo, hi):
                if key not in best or seqno > best[key][0]:
                    best[key] = (seqno, value)
        return sorted(
            (k, v) for k, (_s, v) in best.items() if v is not TOMBSTONE
        )

    # ------------------------------------------------------------- compaction
    def _maybe_compact(self) -> None:
        while len(self._runs) >= self._tier_threshold:
            self._compact(self._runs[-self._tier_threshold:])

    def _compact(self, victims: List[SSTable]) -> SSTable:
        """Merge ``victims`` (a contiguous slice of the run list) into one
        run, placed where the victims sat so recency order is preserved."""
        # Tombstones may be dropped iff the merge output becomes the oldest
        # run — no older run could still hold shadowed values.
        drop_tombstones = victims[-1] is self._runs[-1]
        best: Dict[Any, Tuple[int, Any]] = {}
        total = 0
        for run in victims:
            for key, seqno, value in run.entries():
                total += 1
                if key not in best or seqno > best[key][0]:
                    best[key] = (seqno, value)
        self._cost.charge_compaction(total)
        merged = [
            (key, seqno, value)
            for key, (seqno, value) in sorted(best.items())
            if not (drop_tombstones and value is TOMBSTONE)
        ]
        out = SSTable(merged, self._payload_bytes, self._now())
        first_pos = self._runs.index(victims[0])
        keep = [r for r in self._runs if r not in victims]
        keep.insert(first_pos, out)
        self._runs = keep
        self.compaction_count += 1
        self._update_retention()
        return out

    def full_compaction(self) -> None:
        """Merge every run and drop all tombstones — the LSM grounding of
        *physical* deletion (paired with a flush so the memtable empties)."""
        self.flush()
        if self._runs:
            self._compact(list(self._runs))

    # -------------------------------------------------------------- forensics
    def physically_present(self, key: Any) -> bool:
        """Whether any run still holds a real value for ``key`` — what a disk
        inspection would recover despite the tombstone."""
        found = self._memtable.get(key)
        if found is not None and found[1] is not TOMBSTONE:
            return True
        return any(run.physically_contains_value(key) for run in self._runs)

    def _update_retention(self) -> None:
        now = self._now()
        for record in self._retention.values():
            if record.purged_at is None and not self.physically_present(record.key):
                record.purged_at = now

    def retention_records(self) -> List[RetentionRecord]:
        return list(self._retention.values())

    def unpurged_deletions(self) -> List[RetentionRecord]:
        """Deleted keys whose values are still physically on disk."""
        return [
            r
            for r in self._retention.values()
            if r.purged_at is None and self.physically_present(r.key)
        ]

    # ------------------------------------------------------------- statistics
    @property
    def run_count(self) -> int:
        return len(self._runs)

    @property
    def tombstone_count(self) -> int:
        return self._memtable.tombstone_count() + sum(
            r.tombstone_count for r in self._runs
        )

    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self._runs)

    def runs(self) -> Iterator[SSTable]:
        return iter(self._runs)

    def memtable_entries(self) -> Iterator[Tuple[Any, Tuple[int, Any]]]:
        """``(key, (seqno, value))`` pairs currently buffered in memory."""
        return self._memtable.items()

    def _now(self) -> int:
        return self._cost.clock.now
