"""The LSM engine — tombstone deletes and pluggable compaction.

Write path: memtable put (O(1)); a full memtable flushes into an immutable
SSTable.  Delete writes a tombstone — O(1), no physical removal.  Read path:
memtable, then runs newest→oldest, Bloom-filtered; each run actually probed
charges an I/O.

Compaction is delegated to a pluggable :class:`CompactionPolicy`
(:mod:`repro.lsm.compaction`):

* ``"size"`` — the size-tiered scheme: when ``tier_threshold`` runs of
  similar size accumulate, they merge into one.  Tombstones are only
  dropped when the merge output is the *oldest* run (nothing below could
  still hold shadowed values); otherwise dropping a tombstone would
  resurrect older versions.
* ``"leveled"`` — L0 collects flushed runs; L1+ hold non-overlapping
  tables with level-targeted fan-out.  Merges touch a bounded slice of the
  tree, cutting write amplification on bulk ingest; tombstones are GC'd
  only when the merge output lands in the bottom level.

The engine tracks write amplification (``bytes_flushed`` vs
``bytes_compacted``) so the bench harness can compare policies, and emits a
:class:`CompactionEvent` per merge — including the keys whose tombstones
were garbage-collected — which the system layer records as grounded
system-actions in the audit timeline.

Block cache: repeated point reads of the same key pay the run-probe I/O
only once — the search outcome is cached in a :class:`SharedBlockCache`
(private by default, injectable so several engines pool one capacity
budget) and served at tuple-CPU cost until a write to the key invalidates
it.  Cached real values are registered ``CopyLocation.CACHE`` sites
(:meth:`LSMEngine.cache_copy_sites`), so grounded erases see them.
Compaction preserves logical content (and tombstone GC only happens where
nothing older survives), so rewrites never invalidate cached outcomes.
Together with the Bloom short-circuit (runs whose filter rejects the key
are never probed, and a read whose key no filter accepts does zero run
I/O) this is what makes the read-heavy Figure-4 mixes viable on the LSM
backend; ``cache_hits`` / ``cache_misses`` / ``bloom_negatives`` expose
the effect to the bench harness.

Values move through the engine *encoded* (:mod:`repro.codec`): one encode
at ``put``, packed blocks at flush, blob-level compaction merges, and
encoded export/import for migration — pickle-per-value is gone from the
write path and the byte accounting is real buffer sizes.

Retention accounting (the §1 motivation): for every deleted key the engine
records when the tombstone was written and when the last physical copy of
the value disappeared from every run — the difference is the *physical
retention window*, the quantity [62] showed can violate "undue delay".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.locations import CopyLocation
from repro.lsm.bloom import BloomHashCache
from repro.lsm.cache import SharedBlockCache
from repro.lsm.compaction import (
    CompactionEvent,
    CompactionPolicy,
    CompactionScheduler,
    CompactionTask,
    level0_tombstone_gc_safe,
    make_compaction_policy,
)
from repro.lsm.memtable import TOMBSTONE, TOMBSTONE_BLOB, Memtable
from repro.lsm.sstable import SSTable
from repro.sim.costs import CostModel


@dataclass
class RetentionRecord:
    """Physical-retention bookkeeping for one deleted key."""

    key: Any
    deleted_at: int
    purged_at: Optional[int] = None

    @property
    def window(self) -> Optional[int]:
        """Microseconds the value remained on disk past its deletion."""
        if self.purged_at is None:
            return None
        return self.purged_at - self.deleted_at


class LSMEngine:
    """A single-level-namespace LSM tree with retention tracking."""

    def __init__(
        self,
        cost: CostModel,
        payload_bytes: int = 70,
        memtable_capacity: int = 4096,
        tier_threshold: int = 4,
        block_cache_capacity: int = 1024,
        compaction: Union[str, CompactionPolicy] = "size",
        compaction_mode: str = "sync",
        block_cache: Optional[SharedBlockCache] = None,
        namespace: str = "",
    ) -> None:
        if tier_threshold < 2:
            raise ValueError("tier_threshold must be >= 2")
        if block_cache_capacity < 0:
            raise ValueError("block_cache_capacity must be non-negative")
        self._cost = cost
        self._payload_bytes = payload_bytes
        self._memtable = Memtable(memtable_capacity)
        self._memtable_capacity = memtable_capacity
        self._tier_threshold = tier_threshold
        self.compaction_policy = make_compaction_policy(
            compaction,
            tier_threshold=tier_threshold,
            table_capacity=memtable_capacity,
        )
        self.scheduler = CompactionScheduler(compaction_mode)
        # levels[0]: newest-first, overlap-tolerant; levels[i >= 1]: sorted
        # by key range, non-overlapping (leveled policy only).
        self._levels: List[List[SSTable]] = [[]]
        self._seqno = 0
        self._retention: Dict[Any, RetentionRecord] = {}
        self.flush_count = 0
        self.compaction_count = 0
        # Write-amplification accounting: logical bytes/entries frozen out
        # of the memtable vs bytes/entries rewritten by compaction merges.
        self.entries_flushed = 0
        self.entries_compacted = 0
        self.bytes_flushed = 0
        self.bytes_compacted = 0
        #: Auditable record of every merge; listeners receive each event.
        self.compaction_events: List[CompactionEvent] = []
        self._compaction_listeners: List[Callable[[CompactionEvent], None]] = []
        # Block cache over run-search outcomes (key -> latest run value,
        # TOMBSTONE included; absent keys cache a None).  Writes to a key
        # invalidate its entry, so staleness is impossible: a key can only
        # reach the runs through the memtable, and the memtable is always
        # consulted first.  A shared cache may be injected so several
        # engines pool one capacity budget; otherwise the engine owns a
        # private one.  Cached real values are CopyLocation.CACHE sites
        # (see cache_copy_sites).
        self._block_cache = (
            block_cache
            if block_cache is not None
            else SharedBlockCache(block_cache_capacity)
        )
        self._cache_token = self._block_cache.register(namespace or "lsm")
        self._cache_capacity = self._block_cache.capacity
        self.cache_hits = 0
        self.cache_misses = 0
        self.bloom_negatives = 0
        # Base-hash memo shared by every flush, compaction rewrite, and
        # read probe this engine performs: a key is digested once, however
        # many times compaction rewrites the run holding it.
        self.hash_cache = BloomHashCache()
        #: Single-input merges satisfied by moving the table (and its
        #: Bloom filter) instead of rewriting it.
        self.trivial_moves = 0

    # ---------------------------------------------------------------- writes
    def put(self, key: Any, value: Any) -> None:
        self._seqno += 1
        self._cost.charge_memtable_op()
        self._memtable.put(key, value, self._seqno)
        self._block_cache.invalidate(self._cache_token, key)
        # A re-insert after deletion ends that key's retention question.
        self._retention.pop(key, None)
        if self._memtable.is_full:
            self.flush()

    def put_encoded(self, key: Any, blob: bytes) -> None:
        """Store an already-encoded value — the migration-import path:
        the blob from the source engine's export lands unchanged."""
        self._seqno += 1
        self._cost.charge_memtable_op()
        self._memtable.put_encoded(key, blob, self._seqno)
        self._block_cache.invalidate(self._cache_token, key)
        self._retention.pop(key, None)
        if self._memtable.is_full:
            self.flush()

    def delete(self, key: Any) -> None:
        """Logical delete: write a tombstone.  O(1), nothing is removed.

        Tombstones occupy memtable slots just like values, so the delete
        path honours the same capacity bound as :meth:`put` — a delete-only
        workload flushes instead of overrunning the buffer.
        """
        self._seqno += 1
        self._cost.charge_memtable_op()
        self._memtable.put_encoded(key, TOMBSTONE_BLOB, self._seqno)
        self._block_cache.invalidate(self._cache_token, key)
        self._retention[key] = RetentionRecord(key, self._now())
        if self._memtable.is_full:
            self.flush()

    def put_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        """Bulk upsert; flush-on-full applies exactly as in :meth:`put`."""
        count = 0
        for key, value in items:
            self.put(key, value)
            count += 1
        return count

    def delete_many(self, keys: Iterable[Any]) -> int:
        """Bulk tombstone writes; flush-on-full applies as in :meth:`delete`."""
        count = 0
        for key in keys:
            self.delete(key)
            count += 1
        return count

    def flush(self) -> Optional[SSTable]:
        """Freeze the memtable into a new newest run."""
        if len(self._memtable) == 0:
            return None
        entries = self._memtable.sorted_entries_encoded()
        self._cost.charge_compaction(len(entries))
        run = SSTable.from_encoded(entries, self._now(), hash_cache=self.hash_cache)
        self._levels[0].insert(0, run)
        self._memtable.clear()
        self.flush_count += 1
        self.entries_flushed += len(entries)
        self.bytes_flushed += run.size_bytes
        self.scheduler.request(self)
        self._update_retention()
        return run

    # ----------------------------------------------------------------- reads
    def get(self, key: Any) -> Optional[Any]:
        """Latest value, or None if absent/deleted.

        Charges one memtable op plus — on a block-cache miss — one run
        probe per Bloom-passing run actually searched; read amplification
        grows with run count, which is the cost signature of the tombstone
        approach in Figure 4(a).  A cache hit serves the prior run-search
        outcome at tuple-CPU cost; Bloom filters short-circuit runs that
        cannot hold the key.
        """
        self._cost.charge_memtable_op()
        found = self._memtable.get(key)
        if found is not None:
            value = found[1]
            return None if value is TOMBSTONE else value
        return self._search_runs(key)

    def _candidate_runs(self, key: Any) -> Iterator[SSTable]:
        """Runs that could hold ``key``, in recency order: every L0 run
        newest-first, then at most one table per deeper level (levels 1+
        hold non-overlapping key ranges)."""
        yield from self._levels[0]
        for level in self._levels[1:]:
            for table in level:
                if table.min_key is None:
                    continue
                if table.min_key <= key <= table.max_key:
                    yield table
                    break

    def _search_runs(self, key: Any) -> Optional[Any]:
        """Recency-ordered run search behind the shared block cache."""
        hit, value = self._block_cache.get(self._cache_token, key)
        if hit:
            self._cost.charge_tuple_cpu()
            self.cache_hits += 1
            return None if value is TOMBSTONE else value
        self.cache_misses += 1
        outcome: Optional[Any] = None
        probed = False
        # One digest per read, however many runs get probed.
        pair = self.hash_cache.pair(key)
        for run in self._candidate_runs(key):
            if not run.might_contain_pair(pair):
                self.bloom_negatives += 1
                continue
            probed = True
            self._cost.charge_sstable_probe()
            got = run.get(key)
            if got is not None:
                outcome = got[1]
                break
        if self._cache_capacity and (probed or self.run_count):
            self._block_cache.put(self._cache_token, key, outcome)
        return None if outcome is TOMBSTONE else outcome

    def range(self, lo: Any, hi: Any) -> List[Tuple[Any, Any]]:
        """Merged live entries with ``lo ≤ key ≤ hi``."""
        self._cost.charge_memtable_op()
        best: Dict[Any, Tuple[int, Any]] = {}
        for key, (seqno, value) in self._memtable.items():
            if lo <= key <= hi:
                best[key] = (seqno, value)
        for run in self._levels[0]:
            self._cost.charge_sstable_probe()
            for key, seqno, value in run.range(lo, hi):
                if key not in best or seqno > best[key][0]:
                    best[key] = (seqno, value)
        for level in self._levels[1:]:
            for table in level:
                if table.min_key is None or table.max_key < lo or table.min_key > hi:
                    continue
                self._cost.charge_sstable_probe()
                for key, seqno, value in table.range(lo, hi):
                    if key not in best or seqno > best[key][0]:
                        best[key] = (seqno, value)
        return sorted(
            (k, v) for k, (_s, v) in best.items() if v is not TOMBSTONE
        )

    # ------------------------------------------------------------- compaction
    def level_view(self) -> List[List[SSTable]]:
        """The level structure, as the policies inspect it."""
        return self._levels

    @property
    def level_count(self) -> int:
        """Levels currently holding at least one table."""
        return sum(1 for level in self._levels if level)

    @property
    def compaction_pending(self) -> bool:
        """Whether the policy would do work if the scheduler drained now."""
        return self.compaction_policy.plan(self._levels) is not None

    def run_pending_compactions(self, max_bytes: Optional[int] = None) -> int:
        """Drain the scheduler's queue (a no-op when nothing is planned) —
        the between-operations entry point of the deferred mode.  With
        ``max_bytes`` the drain stops after the merge that exhausts the
        input-byte budget (always running at least one merge when work is
        planned), leaving the rest for the next maintenance slice."""
        return self.scheduler.drain(self, max_bytes=max_bytes)

    @property
    def write_stalled(self) -> bool:
        """Whether L0 has piled past the scheduler's stall threshold —
        the backpressure signal a deferred-mode engine raises when flushes
        outrun maintenance slices."""
        return len(self._levels[0]) >= self.scheduler.l0_stall_threshold

    def add_compaction_listener(
        self, listener: Callable[[CompactionEvent], None]
    ) -> None:
        """Subscribe to merge events (the system layer's audit hook)."""
        self._compaction_listeners.append(listener)

    def execute_compaction(self, task: CompactionTask) -> List[SSTable]:
        """Run one planned merge: read the source tables, keep the newest
        version per key, GC tombstones if the task says it is safe, write
        the output table(s) to the target level, and emit the event.

        A single-input task with no tombstone-drop obligation is a
        *trivial move*: the table object — Bloom filter included — relocates
        to the target level without a rewrite.  No bytes are re-written, so
        neither ``entries_compacted`` nor ``bytes_compacted`` grows; the
        move still emits its :class:`CompactionEvent` so the audit timeline
        sees every structural change."""
        victims = list(task.tables)
        if len(victims) == 1 and not task.drop_tombstones:
            table = victims[0]
            self._place_output(task, victims, victims)
            self.compaction_count += 1
            self.trivial_moves += 1
            self._emit_compaction(
                CompactionEvent(
                    policy=self.compaction_policy.name,
                    reason=f"{task.reason} [trivial move]",
                    target_level=task.target_level,
                    input_tables=1,
                    input_entries=len(table),
                    output_entries=len(table),
                    output_bytes=table.size_bytes,
                    tombstones_dropped=0,
                    dropped_keys=(),
                    timestamp=self._now(),
                )
            )
            return victims
        # The merge moves raw encoded blobs between runs — values are
        # never decoded or re-encoded; tombstones are one-byte blobs
        # recognized by equality.
        best: Dict[Any, Tuple[int, bytes]] = {}
        total = 0
        for run in victims:
            for key, seqno, blob in run.entries_encoded():
                total += 1
                if key not in best or seqno > best[key][0]:
                    best[key] = (seqno, blob)
        self._cost.charge_compaction(total)
        dropped_keys: List[Any] = []
        merged: List[Tuple[Any, int, bytes]] = []
        for key, (seqno, blob) in sorted(best.items()):
            if task.drop_tombstones and blob == TOMBSTONE_BLOB:
                dropped_keys.append(key)
                continue
            merged.append((key, seqno, blob))
        cap = task.max_output_entries
        if cap:
            chunks = [merged[i:i + cap] for i in range(0, len(merged), cap)]
        else:
            chunks = [merged]
        outs = [
            SSTable.from_encoded(chunk, self._now(), hash_cache=self.hash_cache)
            for chunk in chunks
            if chunk
        ]
        self._place_output(task, victims, outs)
        self.compaction_count += 1
        self.entries_compacted += len(merged)
        self.bytes_compacted += sum(t.size_bytes for t in outs)
        self._update_retention()
        event = CompactionEvent(
            policy=self.compaction_policy.name,
            reason=task.reason,
            target_level=task.target_level,
            input_tables=len(victims),
            input_entries=total,
            output_entries=len(merged),
            output_bytes=sum(t.size_bytes for t in outs),
            tombstones_dropped=len(dropped_keys),
            dropped_keys=tuple(dropped_keys),
            timestamp=self._now(),
        )
        self._emit_compaction(event)
        return outs

    def _emit_compaction(self, event: CompactionEvent) -> None:
        """Record the merge and fan it out to the audit subscribers."""
        self.compaction_events.append(event)
        for listener in self._compaction_listeners:
            listener(event)

    def _place_output(
        self,
        task: CompactionTask,
        victims: List[SSTable],
        outs: List[SSTable],
    ) -> None:
        """Remove the victims and insert the outputs at the target level."""
        if task.target_level == 0:
            # Size-tiered shape: the output takes the victims' position in
            # the recency-ordered run list.
            level0 = self._levels[0]
            first_pos = level0.index(victims[0])
            keep = [r for r in level0 if r not in victims]
            keep[first_pos:first_pos] = outs
            self._levels[0] = keep
            return
        while len(self._levels) <= task.target_level:
            self._levels.append([])
        victim_set = set(id(v) for v in victims)
        for i, level in enumerate(self._levels):
            self._levels[i] = [t for t in level if id(t) not in victim_set]
        target = self._levels[task.target_level]
        target.extend(outs)
        target.sort(key=lambda t: t.min_key)

    def _compact(self, victims: List[SSTable]) -> SSTable:
        """Merge a contiguous slice of the level-0 run list in place —
        retained for compatibility with the size-tiered unit tests."""
        drop = level0_tombstone_gc_safe(victims, self._levels)
        outs = self.execute_compaction(
            CompactionTask(
                sources=((0, tuple(victims)),),
                target_level=0,
                drop_tombstones=drop,
                reason=f"manual merge ({len(victims)} runs)",
            )
        )
        return outs[0] if outs else SSTable([], self._payload_bytes, self._now())

    def full_compaction(self) -> None:
        """Merge every run and drop all tombstones — the LSM grounding of
        *physical* deletion (paired with a flush so the memtable empties).

        Always synchronous, whatever the scheduler mode: the grounded erase
        verb *is* the reclamation, and deferring it would leave the §1
        retention hazard open after the erase reported success.
        """
        self.flush()
        tables = [(i, tuple(level)) for i, level in enumerate(self._levels) if level]
        if not tables:
            return
        target = self.compaction_policy.full_compaction_target(self._levels)
        self.execute_compaction(
            CompactionTask(
                sources=tuple(tables),
                target_level=target,
                drop_tombstones=True,
                reason="full compaction (grounded erase)",
                max_output_entries=self.compaction_policy.max_output_entries,
            )
        )
        # The everything-merge leaves the tree in shape by construction;
        # clear any stale deferred request so no queued plan re-runs later.
        self.scheduler.pending = False
        self.scheduler.deferred_requests = 0

    # -------------------------------------------------------------- forensics
    def physically_present(self, key: Any) -> bool:
        """Whether any run still holds a real value for ``key`` — what a disk
        inspection would recover despite the tombstone."""
        found = self._memtable.get_encoded(key)
        if found is not None and found[1] != TOMBSTONE_BLOB:
            return True
        return any(run.physically_contains_value(key) for run in self.runs())

    def copy_sites(self, key: Any) -> List[str]:
        """Every physical site still holding a real value for ``key``: the
        memtable and each table, named by level.  The per-site companion of
        :meth:`physically_present` — pre-compaction copies keep their own
        entries until a rewrite removes their table."""
        sites: List[str] = []
        found = self._memtable.get_encoded(key)
        if found is not None and found[1] != TOMBSTONE_BLOB:
            sites.append("memtable")
        for level, table in self.tables_by_level():
            if table.physically_contains_value(key):
                sites.append(f"L{level}/sst-{table.table_id}")
        return sites

    def cache_copy_sites(self, key: Any) -> List[Tuple[CopyLocation, str]]:
        """The key's block-cache copy sites — ``[]`` or one
        ``CopyLocation.CACHE`` entry.  Separate from :meth:`copy_sites`
        (heap sites) because cache copies vanish on invalidation, not on
        rewrite."""
        return self._block_cache.copy_sites(self._cache_token, key)

    @property
    def block_cache(self) -> SharedBlockCache:
        """The (possibly shared) block cache this engine reads through."""
        return self._block_cache

    def _update_retention(self) -> None:
        now = self._now()
        for record in self._retention.values():
            if record.purged_at is None and not self.physically_present(record.key):
                record.purged_at = now

    def retention_records(self) -> List[RetentionRecord]:
        return list(self._retention.values())

    def unpurged_deletions(self) -> List[RetentionRecord]:
        """Deleted keys whose values are still physically on disk."""
        return [
            r
            for r in self._retention.values()
            if r.purged_at is None and self.physically_present(r.key)
        ]

    # ------------------------------------------------------------- statistics
    @property
    def run_count(self) -> int:
        return sum(len(level) for level in self._levels)

    @property
    def tombstone_count(self) -> int:
        return self._memtable.tombstone_count() + sum(
            r.tombstone_count for r in self.runs()
        )

    @property
    def write_amplification(self) -> float:
        """Total bytes written to disk per logical byte flushed — the cost
        the compaction policy choice moves (Figure 4(c) scale)."""
        if not self.bytes_flushed:
            return 1.0
        return (self.bytes_flushed + self.bytes_compacted) / self.bytes_flushed

    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.runs())

    def memtable_bytes(self) -> int:
        """Real encoded bytes buffered in the memtable."""
        return self._memtable.encoded_bytes

    def runs(self) -> Iterator[SSTable]:
        """Every table, recency order: L0 newest-first, then L1, L2, …"""
        for level in self._levels:
            yield from level

    def tables_by_level(self) -> Iterator[Tuple[int, SSTable]]:
        """``(level, table)`` pairs — the copy-location inventory."""
        for i, level in enumerate(self._levels):
            for table in level:
                yield i, table

    def memtable_entries(self) -> Iterator[Tuple[Any, Tuple[int, Any]]]:
        """``(key, (seqno, value))`` pairs currently buffered in memory."""
        return iter(self._memtable.items())

    def live_items(
        self, predicate: Optional[Callable[[Any], bool]] = None
    ) -> List[Tuple[Any, Any]]:
        """Newest live ``(key, value)`` pairs, memtable and every run
        merged (the bulk-export primitive behind shard migration).

        A full merge pays one probe per run — the predicate filters the
        *result*, not the scan: selecting a hash range still reads every
        physical site, exactly like a real LSM export.
        """
        self._cost.charge_memtable_op()
        best: Dict[Any, Tuple[int, Any]] = {}
        for key, (seqno, value) in self._memtable.items():
            if key not in best or seqno > best[key][0]:
                best[key] = (seqno, value)
        for run in self.runs():
            self._cost.charge_sstable_probe()
            for key, seqno, value in run.entries():
                if key not in best or seqno > best[key][0]:
                    best[key] = (seqno, value)
        return sorted(
            (
                (k, v)
                for k, (_s, v) in best.items()
                if v is not TOMBSTONE and (predicate is None or predicate(k))
            ),
            key=lambda kv: repr(kv[0]),
        )

    def live_items_encoded(
        self, predicate: Optional[Callable[[Any], bool]] = None
    ) -> List[Tuple[Any, bytes]]:
        """Newest live ``(key, blob)`` pairs without decoding — the
        encoded-export primitive: blobs stream to the destination engine
        and land via :meth:`put_encoded`, no decode/re-encode round-trip.
        Same scan shape and cost charging as :meth:`live_items`.
        """
        self._cost.charge_memtable_op()
        best: Dict[Any, Tuple[int, bytes]] = {}
        for key, (seqno, blob) in self._memtable.items_encoded():
            if key not in best or seqno > best[key][0]:
                best[key] = (seqno, blob)
        for run in self.runs():
            self._cost.charge_sstable_probe()
            for key, seqno, blob in run.entries_encoded():
                if key not in best or seqno > best[key][0]:
                    best[key] = (seqno, blob)
        return sorted(
            (
                (k, blob)
                for k, (_s, blob) in best.items()
                if blob != TOMBSTONE_BLOB
                and (predicate is None or predicate(k))
            ),
            key=lambda kv: repr(kv[0]),
        )

    def _now(self) -> int:
        return self._cost.clock.now
