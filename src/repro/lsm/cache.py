"""The shared block cache — one capacity budget across LSM namespaces.

Before this module each :class:`~repro.lsm.engine.LSMEngine` owned a
private LRU over its run-search outcomes, so a ``BackendGroup`` with K
namespaces (or a multi-shard ``ReplicatedStore`` on one box) held K
fixed-size caches: a hot namespace thrashed its private slice while cold
namespaces pinned idle capacity.  :class:`SharedBlockCache` is that cache
extracted into an injectable object: one LRU, one capacity bound, entries
keyed ``(namespace token, key)`` so namespaces stay isolated while the
*budget* pools — the LRU order naturally lends a hot namespace the
capacity cold ones are not using.

Erasure semantics (the part a cache shared across compliance namespaces
must get right):

* A cached outcome holding a real value is a physical copy, reported as a
  :class:`CopyLocation` ``CACHE`` site via :meth:`copy_sites` — backends
  fold these into their ``copies_of`` answers, so "verified clean" sees
  the cache.
* Writes and deletes invalidate the written key's entry
  (:meth:`invalidate`); a grounded erase therefore removes the cache copy
  before the storage copy, and a later read-through can only refill from
  what storage still holds — never from the erased value.
* Eviction is erasure-*safe* but not erasure-*granting*: an evicted entry
  simply vanishes (nothing can resurrect it from the cache), and the
  authoritative copy remains wherever it lives.  Tombstone and negative
  outcomes are cached for read speed but are never value copies, so they
  are invisible to :meth:`copy_sites`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.core.locations import CopyLocation
from repro.lsm.memtable import TOMBSTONE

#: Sentinel distinguishing "no cache entry" from a cached ``None`` outcome
#: (negative caching of absent keys is part of the read-path contract).
_ABSENT = object()


class SharedBlockCache:
    """A capacity-bounded LRU over run-search outcomes, namespace-keyed."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._cache: "OrderedDict[Tuple[int, Any], Any]" = OrderedDict()
        self._labels: Dict[int, str] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ----------------------------------------------------------- namespaces
    def register(self, label: str = "") -> int:
        """Claim a namespace token; entries never cross tokens."""
        token = len(self._labels)
        self._labels[token] = label or f"ns-{token}"
        return token

    def label(self, token: int) -> str:
        return self._labels[token]

    # ----------------------------------------------------------- operations
    def get(self, token: int, key: Any) -> Tuple[bool, Optional[Any]]:
        """``(hit, outcome)`` — outcome may be a value, TOMBSTONE, or None."""
        if not self.capacity:
            self.misses += 1
            return False, None
        entry = self._cache.get((token, key), _ABSENT)
        if entry is _ABSENT:
            self.misses += 1
            return False, None
        self._cache.move_to_end((token, key))
        self.hits += 1
        return True, entry

    def put(self, token: int, key: Any, outcome: Optional[Any]) -> None:
        """Cache a run-search outcome, evicting LRU entries over capacity."""
        if not self.capacity:
            return
        self._cache[(token, key)] = outcome
        self._cache.move_to_end((token, key))
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.evictions += 1

    def invalidate(self, token: int, key: Any) -> None:
        """Drop the entry for a written/deleted/erased key, if cached."""
        self._cache.pop((token, key), None)

    def clear(self) -> None:
        """Drop every entry (all namespaces) — test/fault-injection hook."""
        self._cache.clear()

    def invalidate_namespace(self, token: int) -> int:
        """Drop every entry of one namespace (engine decommission)."""
        victims = [k for k in self._cache if k[0] == token]
        for cache_key in victims:
            del self._cache[cache_key]
        return len(victims)

    # ------------------------------------------------------------ forensics
    def holds_value(self, token: int, key: Any) -> bool:
        """Whether a *real value* (not a tombstone/negative outcome) for
        ``key`` is currently cached in the namespace."""
        entry = self._cache.get((token, key), _ABSENT)
        return entry is not _ABSENT and entry is not None and entry is not TOMBSTONE

    def copy_sites(self, token: int, key: Any) -> List[Tuple[CopyLocation, str]]:
        """The key's cache copy sites in this namespace — ``[]`` or one
        ``CopyLocation.CACHE`` entry named after the namespace label."""
        if self.holds_value(token, key):
            return [(CopyLocation.CACHE, f"block-cache/{self._labels[token]}")]
        return []

    # ----------------------------------------------------------- statistics
    def __len__(self) -> int:
        return len(self._cache)

    def entries_for(self, token: int) -> int:
        """How many cache slots the namespace currently occupies."""
        return sum(1 for t, _k in self._cache if t == token)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SharedBlockCache(capacity={self.capacity}, used={len(self)}, "
            f"namespaces={len(self._labels)})"
        )
