"""SSTables — immutable sorted runs on "disk".

Each SSTable stores sorted ``(key, seqno, value)`` entries (value may be the
TOMBSTONE sentinel), a Bloom filter for negative lookups, and retention
bookkeeping: how many tombstones it carries and how many *shadowed* values —
older versions of keys whose latest version is a delete — remain physically
present.  Those shadowed values are the illegal-retention hazard of §1.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, List, Optional, Tuple

from repro.lsm.bloom import BloomFilter
from repro.lsm.memtable import TOMBSTONE

#: Approximate bytes per stored entry beyond the payload (key + seqno + len).
ENTRY_OVERHEAD = 20


class SSTable:
    """One immutable sorted run."""

    _next_id = 0

    def __init__(
        self,
        entries: List[Tuple[Any, int, Any]],
        payload_bytes: int,
        created_at: int,
    ) -> None:
        """``entries`` must be sorted by key, one entry per key.

        ``payload_bytes`` is the nominal per-value size used for the space
        accounting (values are opaque to the engine).
        """
        self.table_id = SSTable._next_id
        SSTable._next_id += 1
        self.created_at = created_at
        self._keys = [e[0] for e in entries]
        self._entries = entries
        self._payload_bytes = payload_bytes
        self._bloom = BloomFilter(max(1, len(entries)))
        for key in self._keys:
            self._bloom.add(key)

    # ---------------------------------------------------------------- lookups
    def might_contain(self, key: Any) -> bool:
        return key in self._bloom

    def get(self, key: Any) -> Optional[Tuple[int, Any]]:
        i = bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            _k, seqno, value = self._entries[i]
            return (seqno, value)
        return None

    def entries(self) -> Iterator[Tuple[Any, int, Any]]:
        return iter(self._entries)

    def range(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, int, Any]]:
        i = bisect_left(self._keys, lo)
        while i < len(self._keys) and self._keys[i] <= hi:
            yield self._entries[i]
            i += 1

    # ------------------------------------------------------------- statistics
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def tombstone_count(self) -> int:
        return sum(1 for _k, _s, v in self._entries if v is TOMBSTONE)

    @property
    def value_count(self) -> int:
        return len(self._entries) - self.tombstone_count

    @property
    def size_bytes(self) -> int:
        values = self.value_count
        tombs = self.tombstone_count
        return (
            values * (self._payload_bytes + ENTRY_OVERHEAD)
            + tombs * ENTRY_OVERHEAD
            + self._bloom.size_bytes
        )

    @property
    def bloom_bytes(self) -> int:
        """Bytes held by the run's Bloom filter (the run's "index")."""
        return self._bloom.size_bytes

    @property
    def min_key(self) -> Optional[Any]:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> Optional[Any]:
        return self._keys[-1] if self._keys else None

    def physically_contains_value(self, key: Any) -> bool:
        """Whether a real (non-tombstone) value for ``key`` sits in this run."""
        found = self.get(key)
        return found is not None and found[1] is not TOMBSTONE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SSTable(#{self.table_id}, n={len(self)}, "
            f"tombstones={self.tombstone_count})"
        )
