"""SSTables — immutable sorted runs on "disk".

Each SSTable stores sorted ``(key, seqno, value)`` entries with the values
packed into one length-prefixed binary block (:func:`repro.codec.pack_block`
layout): a ``u32`` count, then per entry a ``u32`` length plus the encoded
blob.  The in-memory index (keys, seqnos, blob offsets) gives point reads
``bisect`` + one slice-decode; compaction merges move the raw blobs between
runs without ever decoding them, and tombstones — one-byte blobs — are
recognized by blob equality.

Alongside the block the table keeps a Bloom filter for negative lookups and
retention bookkeeping: how many tombstones it carries and how many
*shadowed* values — older versions of keys whose latest version is a delete
— remain physically present.  Those shadowed values are the illegal-
retention hazard of §1.  ``size_bytes`` is the *real* packed-block size
plus index overhead — not a nominal per-value estimate.
"""

from __future__ import annotations

from bisect import bisect_left
from struct import Struct
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro import codec
from repro.lsm.bloom import BloomFilter, BloomHashCache, HashPair
from repro.lsm.memtable import TOMBSTONE_BLOB

#: Approximate bytes per entry beyond the packed value block: the key and
#: seqno in the index plus the offset slot.
ENTRY_OVERHEAD = 20

_U32 = Struct("<I")


class SSTable:
    """One immutable sorted run over a packed value block."""

    _next_id = 0

    def __init__(
        self,
        entries: List[Tuple[Any, int, Any]],
        payload_bytes: int = 0,
        created_at: int = 0,
    ) -> None:
        """``entries`` must be sorted by key, one entry per key, with
        *decoded* values — the compatibility constructor; the engine's
        flush/compaction paths use :meth:`from_encoded` to avoid the
        re-encode.  ``payload_bytes`` is accepted for signature
        compatibility; sizes are measured from the packed block now.
        """
        blobs = codec.encode_many([e[2] for e in entries])
        self._init_from_blobs(
            [e[0] for e in entries],
            [e[1] for e in entries],
            blobs,
            created_at,
        )

    @classmethod
    def from_encoded(
        cls,
        entries: Sequence[Tuple[Any, int, bytes]],
        created_at: int,
        hash_cache: Optional[BloomHashCache] = None,
    ) -> "SSTable":
        """Build a run from already-encoded ``(key, seqno, blob)`` entries
        (sorted by key) — the zero-copy flush/compaction path.  With a warm
        ``hash_cache`` (the engine's) the Bloom build skips digesting keys
        that any earlier flush or rewrite already hashed."""
        table = cls.__new__(cls)
        table._init_from_blobs(
            [e[0] for e in entries],
            [e[1] for e in entries],
            [e[2] for e in entries],
            created_at,
            hash_cache=hash_cache,
        )
        return table

    def _init_from_blobs(
        self,
        keys: List[Any],
        seqnos: List[int],
        blobs: Sequence[bytes],
        created_at: int,
        hash_cache: Optional[BloomHashCache] = None,
    ) -> None:
        self.table_id = SSTable._next_id
        SSTable._next_id += 1
        self.created_at = created_at
        self._keys = keys
        self._seqnos = seqnos
        # Length-prefixed packed block (codec.pack_block layout) plus the
        # in-memory blob offsets derived while packing.
        parts: List[bytes] = [_U32.pack(len(blobs))]
        offsets: List[Tuple[int, int]] = []
        pos = 4
        for blob in blobs:
            parts.append(_U32.pack(len(blob)))
            pos += 4
            offsets.append((pos, pos + len(blob)))
            pos += len(blob)
            parts.append(blob)
        self._block = b"".join(parts)
        self._view = memoryview(self._block)
        self._offsets = offsets
        self._bloom = BloomFilter.from_keys(keys, cache=hash_cache)

    # ------------------------------------------------------------------ blobs
    def blob_at(self, i: int) -> bytes:
        start, end = self._offsets[i]
        return bytes(self._view[start:end])

    def _is_tombstone(self, i: int) -> bool:
        start, end = self._offsets[i]
        return self._view[start:end] == TOMBSTONE_BLOB

    def _value_at(self, i: int) -> Any:
        start, end = self._offsets[i]
        return codec.decode(self._view[start:end])

    @property
    def packed_block(self) -> bytes:
        """The raw length-prefixed value block (codec.pack_block layout)."""
        return self._block

    # ---------------------------------------------------------------- lookups
    def might_contain(self, key: Any) -> bool:
        return key in self._bloom

    def might_contain_pair(self, pair: HashPair) -> bool:
        """Bloom probe with a precomputed base-hash pair — the engine read
        path hashes a key once and probes every run with the same pair."""
        return self._bloom.contains_pair(pair)

    def get(self, key: Any) -> Optional[Tuple[int, Any]]:
        i = bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return (self._seqnos[i], self._value_at(i))
        return None

    def get_encoded(self, key: Any) -> Optional[Tuple[int, bytes]]:
        """``(seqno, blob)`` without decoding; None if absent."""
        i = bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return (self._seqnos[i], self.blob_at(i))
        return None

    def entries(self) -> Iterator[Tuple[Any, int, Any]]:
        for i, key in enumerate(self._keys):
            yield (key, self._seqnos[i], self._value_at(i))

    def entries_encoded(self) -> Iterator[Tuple[Any, int, bytes]]:
        """``(key, seqno, blob)`` per entry — the merge/export path."""
        for i, key in enumerate(self._keys):
            yield (key, self._seqnos[i], self.blob_at(i))

    def range(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, int, Any]]:
        i = bisect_left(self._keys, lo)
        while i < len(self._keys) and self._keys[i] <= hi:
            yield (self._keys[i], self._seqnos[i], self._value_at(i))
            i += 1

    # ------------------------------------------------------------- statistics
    def __len__(self) -> int:
        return len(self._keys)

    @property
    def tombstone_count(self) -> int:
        return sum(1 for i in range(len(self._keys)) if self._is_tombstone(i))

    @property
    def value_count(self) -> int:
        return len(self._keys) - self.tombstone_count

    @property
    def size_bytes(self) -> int:
        """Real bytes: the packed value block plus index overhead per
        entry (key + seqno + offset slot) plus the Bloom filter."""
        return (
            len(self._block)
            + len(self._keys) * ENTRY_OVERHEAD
            + self._bloom.size_bytes
        )

    @property
    def block_bytes(self) -> int:
        """Bytes of the packed value block alone."""
        return len(self._block)

    @property
    def bloom_bytes(self) -> int:
        """Bytes held by the run's Bloom filter (the run's "index")."""
        return self._bloom.size_bytes

    @property
    def min_key(self) -> Optional[Any]:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> Optional[Any]:
        return self._keys[-1] if self._keys else None

    def physically_contains_value(self, key: Any) -> bool:
        """Whether a real (non-tombstone) value for ``key`` sits in this
        run — a blob-equality check, no decode."""
        i = bisect_left(self._keys, key)
        return (
            i < len(self._keys)
            and self._keys[i] == key
            and not self._is_tombstone(i)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SSTable(#{self.table_id}, n={len(self)}, "
            f"tombstones={self.tombstone_count})"
        )
