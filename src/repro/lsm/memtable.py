"""Memtable — the in-memory write buffer of the LSM engine."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple


class _Tombstone:
    """Sentinel marking a logically deleted key."""

    _instance: Optional["_Tombstone"] = None

    def __new__(cls) -> "_Tombstone":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<tombstone>"


#: The tombstone sentinel: ``value is TOMBSTONE`` marks deletion.
TOMBSTONE = _Tombstone()


class Memtable:
    """An unsorted write buffer; sorts once at flush time.

    Each entry carries the global sequence number assigned by the engine so
    that merges can resolve version order across runs.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._data: Dict[Any, Tuple[int, Any]] = {}

    # -------------------------------------------------------------- interface
    def put(self, key: Any, value: Any, seqno: int) -> None:
        self._data[key] = (seqno, value)

    def get(self, key: Any) -> Optional[Tuple[int, Any]]:
        """``(seqno, value)`` — value may be TOMBSTONE; None if absent."""
        return self._data.get(key)

    @property
    def is_full(self) -> bool:
        return len(self._data) >= self._capacity

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def tombstone_count(self) -> int:
        return sum(1 for _s, v in self._data.values() if v is TOMBSTONE)

    def sorted_entries(self) -> List[Tuple[Any, int, Any]]:
        """``(key, seqno, value)`` sorted by key — flush order."""
        return [
            (key, seqno, value)
            for key, (seqno, value) in sorted(self._data.items())
        ]

    def clear(self) -> None:
        self._data.clear()

    def items(self) -> Iterator[Tuple[Any, Tuple[int, Any]]]:
        return iter(self._data.items())
