"""Memtable — the in-memory write buffer of the LSM engine.

Values are held *encoded*: a ``put`` runs the value through
:mod:`repro.codec` once and the blob then flows unchanged through flush
(packed SSTable blocks), compaction merges, and migration exports — no
per-hop re-serialization, and no aliasing of caller objects (mutating a
value after ``put`` cannot silently rewrite the stored copy).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import codec


class _Tombstone:
    """Sentinel marking a logically deleted key."""

    _instance: Optional["_Tombstone"] = None

    def __new__(cls) -> "_Tombstone":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<tombstone>"


#: The tombstone sentinel: ``value is TOMBSTONE`` marks deletion.
TOMBSTONE = _Tombstone()

#: The tombstone's one-byte encoding — delete markers compare by blob
#: equality on the packed paths, no decode needed.
TOMBSTONE_BLOB = codec.register_singleton(TOMBSTONE)


class Memtable:
    """An unsorted write buffer; sorts once at flush time.

    Each entry carries the global sequence number assigned by the engine so
    that merges can resolve version order across runs.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._data: Dict[Any, Tuple[int, bytes]] = {}
        self._encoded_bytes = 0

    # -------------------------------------------------------------- interface
    def put(self, key: Any, value: Any, seqno: int) -> None:
        self.put_encoded(key, codec.encode(value), seqno)

    def put_encoded(self, key: Any, blob: bytes, seqno: int) -> None:
        """Store an already-encoded value (the import/migration path)."""
        old = self._data.get(key)
        if old is not None:
            self._encoded_bytes -= len(old[1])
        self._data[key] = (seqno, blob)
        self._encoded_bytes += len(blob)

    def get(self, key: Any) -> Optional[Tuple[int, Any]]:
        """``(seqno, value)`` — value may be TOMBSTONE; None if absent."""
        found = self._data.get(key)
        if found is None:
            return None
        return (found[0], codec.decode(found[1]))

    def get_encoded(self, key: Any) -> Optional[Tuple[int, bytes]]:
        """``(seqno, blob)`` without decoding; None if absent."""
        return self._data.get(key)

    @property
    def is_full(self) -> bool:
        return len(self._data) >= self._capacity

    @property
    def encoded_bytes(self) -> int:
        """Real bytes the buffered blobs occupy — the space accounting."""
        return self._encoded_bytes

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def tombstone_count(self) -> int:
        return sum(
            1 for _s, blob in self._data.values() if blob == TOMBSTONE_BLOB
        )

    def sorted_entries(self) -> List[Tuple[Any, int, Any]]:
        """``(key, seqno, value)`` sorted by key, decoded."""
        return [
            (key, seqno, codec.decode(blob))
            for key, (seqno, blob) in sorted(self._data.items())
        ]

    def sorted_entries_encoded(self) -> List[Tuple[Any, int, bytes]]:
        """``(key, seqno, blob)`` sorted by key — flush order, no decode."""
        return [
            (key, seqno, blob)
            for key, (seqno, blob) in sorted(self._data.items())
        ]

    def clear(self) -> None:
        self._data.clear()
        self._encoded_bytes = 0

    def items(self) -> Iterator[Tuple[Any, Tuple[int, Any]]]:
        return (
            (key, (seqno, codec.decode(blob)))
            for key, (seqno, blob) in self._data.items()
        )

    def items_encoded(self) -> Iterator[Tuple[Any, Tuple[int, bytes]]]:
        return iter(self._data.items())
