"""Bloom filter — per-SSTable negative lookups.

A real bit-array Bloom filter with double hashing (Kirsch–Mitzenmacher):
one 64-bit SipHash of the key's codec encoding splits into two 32-bit base
hashes that combine into k probe positions.  Used by the LSM read path to
skip runs that cannot contain a key, which is what keeps read amplification
sane as runs accumulate.

Hashing is *value-stable*: keys are reduced to their canonical
:func:`repro.codec.encode_stable` byte encoding before hashing, so two
equal-but-distinct key objects (a string built twice, a tuple assembled in
two places) always map to the same probe positions.  The previous
``repr(key)``-based scheme broke that for any object whose default
``repr`` embeds ``id()``; the storage codec's own :func:`repro.codec.encode`
breaks it more subtly — its marshal version ref-flags objects by refcount,
so the bytes depend on incidental aliasing.  The 64-bit hash is the
interpreter's bytes hash — stable within a process, which is the only
lifetime these in-memory filters have.

Because every SSTable rewrite during compaction used to re-digest every
key, the base-hash pair for a key is exposed as a first-class value:
:class:`BloomHashCache` memoizes ``key -> (h1, h2)`` across rebuilds and
probes, and the batch entry points (:meth:`BloomFilter.from_keys`,
:meth:`BloomFilter.add_many`, :meth:`BloomFilter.probe_many`,
:meth:`BloomFilter.contains_pair`) accept or share those pairs so the hot
loops stay free of per-key digest work.
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.codec import encode_stable as _encode

HashPair = Tuple[int, int]

_M64 = (1 << 64) - 1
_LOW32 = 0xFFFFFFFF
_LN2 = math.log(2.0)

# An incrementally-filled filter that exceeds its expected size by this
# factor is resized (re-sized filters replay their retained pairs).
_RESIZE_FACTOR = 2


def hash_pair(key: Any) -> HashPair:
    """The (h1, h2) double-hashing base pair for ``key``.

    One 64-bit hash over the codec encoding, split 32/32; h2 is forced odd
    so the probe sequence cycles the whole bit array.
    """
    h = hash(_encode(key)) & _M64
    return (h >> 32, (h & _LOW32) | 1)


class BloomHashCache:
    """Bounded memo of ``key -> (h1, h2)`` shared across SSTable rebuilds.

    One instance lives per LSM engine: flushes, compaction rewrites, and
    read probes all consult it, so a key is digested once no matter how
    many times compaction rewrites the run that holds it.  Eviction is
    oldest-first (dict insertion order) once ``max_entries`` is reached.
    """

    __slots__ = ("_pairs", "max_entries", "hits", "misses")

    def __init__(self, max_entries: int = 131_072) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._pairs: Dict[Any, HashPair] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pairs)

    def pair(self, key: Any) -> HashPair:
        pairs = self._pairs
        cached = pairs.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        h = hash(_encode(key)) & _M64
        pair = (h >> 32, (h & _LOW32) | 1)
        if len(pairs) >= self.max_entries:
            del pairs[next(iter(pairs))]
        pairs[key] = pair
        return pair

    def pairs_of(self, keys: Iterable[Any]) -> List[HashPair]:
        """Batch :meth:`pair` — one Python-level loop for a whole run."""
        pairs = self._pairs
        get = pairs.get
        max_entries = self.max_entries
        out: List[HashPair] = []
        append = out.append
        hits = misses = 0
        for key in keys:
            cached = get(key)
            if cached is not None:
                hits += 1
                append(cached)
                continue
            misses += 1
            h = hash(_encode(key)) & _M64
            pair = (h >> 32, (h & _LOW32) | 1)
            if len(pairs) >= max_entries:
                del pairs[next(iter(pairs))]
            pairs[key] = pair
            append(pair)
        self.hits += hits
        self.misses += misses
        return out

    def forget(self, key: Any) -> None:
        self._pairs.pop(key, None)

    def clear(self) -> None:
        self._pairs.clear()


def _sizing(expected_items: int, fp_rate: float) -> Tuple[int, int]:
    bits = max(8, int(-expected_items * math.log(fp_rate) / (_LN2 * _LN2)))
    hashes = max(1, round((bits / expected_items) * _LN2))
    return bits, hashes


class BloomFilter:
    """Bit-array Bloom filter sized for a target false-positive rate.

    Incrementally-filled filters (plain ``add``/``add_many``) retain their
    base-hash pairs and transparently resize once the live count exceeds
    ``_RESIZE_FACTOR`` times the expected size — a default-constructed
    filter fed thousands of keys no longer saturates into uselessness.
    Exact-sized filters built with :meth:`from_keys` skip retention; their
    population is known up front.
    """

    __slots__ = ("_bits", "_hashes", "_array", "_count", "_expected",
                 "_fp_rate", "_pairs")

    def __init__(self, expected_items: int, fp_rate: float = 0.01) -> None:
        if expected_items < 1:
            expected_items = 1
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        self._expected = expected_items
        self._fp_rate = fp_rate
        self._bits, self._hashes = _sizing(expected_items, fp_rate)
        self._array = bytearray((self._bits + 7) // 8)
        self._count = 0
        # Flat (h1, h2, h1, h2, ...) retention for auto-resize replay.
        self._pairs: Optional[array] = array("Q")

    # ----------------------------------------------------------- construction
    @classmethod
    def from_keys(
        cls,
        keys: Sequence[Any],
        fp_rate: float = 0.01,
        cache: Optional[BloomHashCache] = None,
    ) -> "BloomFilter":
        """Build an exact-sized filter over ``keys`` in one pass.

        The population is known, so no pairs are retained and no resize can
        trigger; with a warm ``cache`` (compaction rewrites) the build does
        no digest work at all.
        """
        bloom = cls(max(1, len(keys)), fp_rate)
        bloom._pairs = None
        if keys:
            bloom._add_pairs(
                cache.pairs_of(keys) if cache is not None
                else [hash_pair(key) for key in keys]
            )
        return bloom

    def _add_pairs(self, pairs: List[HashPair]) -> None:
        arr = self._array
        bits = self._bits
        rng = range(self._hashes)
        for h1, h2 in pairs:
            for pos in [(h1 + i * h2) % bits for i in rng]:
                arr[pos >> 3] |= 1 << (pos & 7)
        self._count += len(pairs)

    # -------------------------------------------------------------- mutation
    def add(self, key: Any, pair: Optional[HashPair] = None) -> None:
        if pair is None:
            pair = hash_pair(key)
        h1, h2 = pair
        arr = self._array
        bits = self._bits
        for i in range(self._hashes):
            pos = (h1 + i * h2) % bits
            arr[pos >> 3] |= 1 << (pos & 7)
        self._count += 1
        if self._pairs is not None:
            self._pairs.append(h1)
            self._pairs.append(h2)
            if self._count > self._expected * _RESIZE_FACTOR:
                self._grow()

    def add_many(
        self,
        keys: Sequence[Any],
        cache: Optional[BloomHashCache] = None,
    ) -> None:
        pairs = (
            cache.pairs_of(keys) if cache is not None
            else [hash_pair(key) for key in keys]
        )
        self._add_pairs(pairs)
        if self._pairs is not None:
            for h1, h2 in pairs:
                self._pairs.append(h1)
                self._pairs.append(h2)
            if self._count > self._expected * _RESIZE_FACTOR:
                self._grow()

    def _grow(self) -> None:
        """Re-size for the actual population and replay retained pairs."""
        assert self._pairs is not None
        self._expected = self._count * _RESIZE_FACTOR
        self._bits, self._hashes = _sizing(self._expected, self._fp_rate)
        self._array = bytearray((self._bits + 7) // 8)
        arr = self._array
        bits = self._bits
        rng = range(self._hashes)
        pairs = self._pairs
        for j in range(0, len(pairs), 2):
            h1 = pairs[j]
            h2 = pairs[j + 1]
            for pos in [(h1 + i * h2) % bits for i in rng]:
                arr[pos >> 3] |= 1 << (pos & 7)

    # --------------------------------------------------------------- probing
    def contains_pair(self, pair: HashPair) -> bool:
        h1, h2 = pair
        arr = self._array
        bits = self._bits
        for i in range(self._hashes):
            pos = (h1 + i * h2) % bits
            if not arr[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def __contains__(self, key: Any) -> bool:
        return self.contains_pair(hash_pair(key))

    def probe_many(
        self,
        keys: Sequence[Any],
        cache: Optional[BloomHashCache] = None,
    ) -> List[bool]:
        """Batch membership probe — one result per key, order preserved."""
        pairs = (
            cache.pairs_of(keys) if cache is not None
            else [hash_pair(key) for key in keys]
        )
        arr = self._array
        bits = self._bits
        rng = range(self._hashes)
        out: List[bool] = []
        append = out.append
        for h1, h2 in pairs:
            hit = True
            for i in rng:
                pos = (h1 + i * h2) % bits
                if not arr[pos >> 3] & (1 << (pos & 7)):
                    hit = False
                    break
            append(hit)
        return out

    # ------------------------------------------------------------ inspection
    @property
    def bit_size(self) -> int:
        return self._bits

    @property
    def hash_count(self) -> int:
        return self._hashes

    @property
    def size_bytes(self) -> int:
        pair_bytes = self._pairs.itemsize * len(self._pairs) if self._pairs else 0
        return len(self._array) + pair_bytes

    def __len__(self) -> int:
        return self._count
