"""Bloom filter — per-SSTable negative lookups.

A real bit-array Bloom filter with double hashing (Kirsch–Mitzenmacher):
two base hashes from blake2b digests combine into k probe positions.  Used
by the LSM read path to skip runs that cannot contain a key, which is what
keeps read amplification sane as runs accumulate.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable


class BloomFilter:
    """Fixed-size Bloom filter sized for a target false-positive rate."""

    def __init__(self, expected_items: int, fp_rate: float = 0.01) -> None:
        if expected_items < 1:
            expected_items = 1
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        ln2 = math.log(2.0)
        self._bits = max(8, int(-expected_items * math.log(fp_rate) / (ln2 * ln2)))
        self._hashes = max(1, round((self._bits / expected_items) * ln2))
        self._array = bytearray((self._bits + 7) // 8)
        self._count = 0

    # ------------------------------------------------------------- internals
    @staticmethod
    def _base_hashes(key: Any) -> tuple:
        digest = hashlib.blake2b(repr(key).encode(), digest_size=16).digest()
        return (
            int.from_bytes(digest[:8], "big"),
            int.from_bytes(digest[8:], "big") | 1,  # odd => full cycle
        )

    def _positions(self, key: Any) -> Iterable[int]:
        h1, h2 = self._base_hashes(key)
        for i in range(self._hashes):
            yield (h1 + i * h2) % self._bits

    # -------------------------------------------------------------- interface
    def add(self, key: Any) -> None:
        for pos in self._positions(key):
            self._array[pos >> 3] |= 1 << (pos & 7)
        self._count += 1

    def __contains__(self, key: Any) -> bool:
        return all(
            self._array[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )

    @property
    def bit_size(self) -> int:
        return self._bits

    @property
    def hash_count(self) -> int:
        return self._hashes

    @property
    def size_bytes(self) -> int:
        return len(self._array)

    def __len__(self) -> int:
        return self._count
