"""Data-CASE — grounding data regulations for compliant data processing.

A full reproduction of *"Data-CASE: Grounding Data Regulations for
Compliant Data Processing Systems"* (EDBT 2024): the formal model
(data units, policies, action histories, invariants), the grounding
machinery (concepts → interpretations → system-actions), the storage
substrates the evaluation depends on (a PostgreSQL-like engine with
DELETE/VACUUM/VACUUM FULL semantics, an LSM tree with tombstones, a crypto
stack, audit logs, RBAC/FGAC/Sieve access control), the three compliance
profiles of §4.2, the GDPRBench/YCSB workloads, and experiment drivers for
every table and figure.

Quickstart::

    from repro import CompliantDatabase, controller, data_subject
    from repro import Policy, Purpose, ErasureInterpretation

    netflix = controller("Netflix")
    db = CompliantDatabase(netflix)
    db.collect("cc-1", data_subject("u1"), "signup", {"card": "4111…"},
               policies=[Policy(Purpose.BILLING, netflix, 0, 10**12)],
               erase_deadline=10**12)
    db.read("cc-1", netflix, Purpose.BILLING)
    db.erase("cc-1")
    assert db.check_compliance().compliant
"""

__version__ = "1.0.0"

from repro.bench.experiments import fig4a, fig4b, fig4c, table1, table2
from repro.config import BackendConfig, ServiceConfig, StoreConfig
from repro.core.actions import Action, ActionHistory, ActionHistoryTuple, ActionType
from repro.core.compliance import ComplianceChecker, ComplianceReport
from repro.core.consistency import (
    is_history_consistent,
    is_policy_consistent,
    policy_violations,
    regulation_requires_any_of,
)
from repro.core.dataunit import (
    Database,
    DataCategory,
    DataUnit,
    DataUnitState,
    ValueVersion,
    derive,
)
from repro.core.entities import (
    Entity,
    EntityRegistry,
    Role,
    auditor,
    controller,
    data_subject,
    processor,
)
from repro.core.erasure import (
    ErasureCharacterization,
    ErasureInterpretation,
    ErasureTimeline,
    characterize,
    paper_table1,
    register_erasure,
)
from repro.core.grounding import (
    Concept,
    Grounding,
    GroundingRegistry,
    Interpretation,
    SystemAction,
)
from repro.core.invariants import (
    ComplianceVerdict,
    G17ErasureDeadline,
    G6PolicyConsistency,
    Violation,
    figure1_invariants,
)
from repro.core.policy import Policy, PolicySet, Purpose
from repro.core.provenance import Dependency, DependencyKind, ProvenanceGraph
from repro.core.regulation import Article, Regulation, ccpa, gdpr, pipeda, vdpa
from repro.distributed.store import ReplicatedStore
from repro.lsm.engine import LSMEngine
from repro.service import ComplianceService, run_loadgen
from repro.sim.clock import SimClock
from repro.sim.costs import CostBook, CostModel
from repro.storage.engine import RelationalEngine
from repro.systems import PROFILES, make_profile
from repro.systems.database import (
    CompliantDatabase,
    EraseOutcome,
    UnsupportedGroundingError,
)
from repro.systems.profiles import ProfileConfig, RunResult
from repro.systems.space import SpaceAccountant, SpaceReport
from repro.workloads.driver import run_interleaved
from repro.workloads.gdprbench import (
    controller_workload,
    customer_workload,
    erasure_study_workload,
    processor_workload,
)
from repro.workloads.mall import MallDataset
from repro.workloads.ycsb import ycsb_c_workload

__all__ = [
    "__version__",
    # entities
    "Entity", "EntityRegistry", "Role",
    "auditor", "controller", "data_subject", "processor",
    # policies & data units
    "Policy", "PolicySet", "Purpose",
    "Database", "DataCategory", "DataUnit", "DataUnitState", "ValueVersion",
    "derive",
    # actions & consistency
    "Action", "ActionHistory", "ActionHistoryTuple", "ActionType",
    "is_history_consistent", "is_policy_consistent", "policy_violations",
    "regulation_requires_any_of",
    # grounding & erasure
    "Concept", "Grounding", "GroundingRegistry", "Interpretation",
    "SystemAction",
    "ErasureCharacterization", "ErasureInterpretation", "ErasureTimeline",
    "characterize", "paper_table1", "register_erasure",
    # invariants & compliance
    "ComplianceVerdict", "G6PolicyConsistency", "G17ErasureDeadline",
    "Violation", "figure1_invariants",
    "ComplianceChecker", "ComplianceReport",
    # provenance & regulations
    "Dependency", "DependencyKind", "ProvenanceGraph",
    "Article", "Regulation", "gdpr", "ccpa", "vdpa", "pipeda",
    # systems
    "CompliantDatabase", "EraseOutcome", "UnsupportedGroundingError",
    "PROFILES", "make_profile", "ProfileConfig", "RunResult",
    "SpaceAccountant", "SpaceReport",
    # distributed store, typed configuration & the service front door
    "ReplicatedStore",
    "BackendConfig", "StoreConfig", "ServiceConfig",
    "ComplianceService", "run_loadgen",
    # substrates
    "SimClock", "CostBook", "CostModel", "RelationalEngine", "LSMEngine",
    # workloads
    "controller_workload", "customer_workload", "erasure_study_workload",
    "processor_workload", "ycsb_c_workload", "MallDataset",
    "run_interleaved",
    # experiments
    "table1", "table2", "fig4a", "fig4b", "fig4c",
]
