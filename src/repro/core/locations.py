"""Copy locations — the shared vocabulary for "where a value physically is".

Historically this enum lived in :mod:`repro.distributed.store`, which meant
lower layers (the LSM block cache, engine-level WALs) could not speak it
without importing the distributed layer — they tracked their copy sites
through engine-local protocols instead, and the grounding linter carried
baseline entries for the mismatch.  It lives in :mod:`repro.core` now so
any layer can register its sites against the one enum;
``repro.distributed.store`` re-exports it unchanged.
"""

from __future__ import annotations

from enum import Enum


class CopyLocation(Enum):
    """Where a physical copy of a value can live.

    ``LOG`` is the replication log itself: PUT/UPDATE entries carry the
    value, so the log is a retention location just like any replica — a
    grounded erase must scrub it, or "verified clean" is a lie.  ``WAL`` is
    a node's engine-level write-ahead log, which keeps row images
    replayable until the node's reclamation pass scrubs them — the same
    hazard one storage layer down.  ``CACHE`` covers every read cache that
    holds materialized values: a node's read-through cache and the LSM
    engines' shared block cache alike.  ``MIGRATION`` marks a key in
    flight between shards during a rebalance: the destination already
    holds the value while the source's grounded erase has not completed,
    so the move itself is a tracked copy site until it is grounded.
    """

    PRIMARY = "primary"
    REPLICA = "replica"
    CACHE = "cache"
    LOG = "log"
    WAL = "wal"
    MIGRATION = "migration"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
