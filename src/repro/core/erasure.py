"""Erasure grounding — the paper's showcase concept (paper §3.1, Fig 3, Table 1).

Four interpretations, ordered by strictness:

* **reversibly inaccessible** — data cannot be read by data-subjects but
  remains accessible to the controller/processor and can be restored;
* **deleted** — the data and all its copies have been physically erased;
* **strongly deleted** — deleted, and all dependent data where the
  data-subject is identifiable has been deleted;
* **permanently deleted** — strongly deleted plus advanced physical drive
  sanitization.

Three grounding properties characterize them (Table 1):

* **IR** — erasure-inconsistent read: X read at a time when ``P(t) = ∅``;
* **II** — erasure-inconsistent inference: X erased, yet reconstructible
  from surviving dependent data;
* **Inv** — transformation invertibility: the value transformation applied
  by the erasure is recoverable.

Table 1 (✓ = the property is feasible / may occur under the interpretation):

====================== ==== ==== ==== ============================
Erasure                 IR   II   Inv  PSQL system-action(s)
====================== ==== ==== ==== ============================
reversibly inaccessible  ×   ✓    ✓    Add new attribute
delete                   ×   ✓    ×    DELETE + VACUUM
strong delete            ×   ×    ×    DELETE + VACUUM FULL
permanently delete       ×   ×    ×    Not supported
====================== ==== ==== ==== ============================

The same interpretations ground onto the LSM engine with engine-specific
system-actions but the *identical* property profile — the portability the
paper's Figure 2 promises (asserted by
``tests/integration/test_cross_backend.py``):

====================== ============================================
Erasure                 LSM system-action(s)
====================== ============================================
reversibly inaccessible flag write (overwrite with flagged value)
delete                  tombstone + full compaction
strong delete           tombstone cascade + full compaction
permanently delete      Not supported
====================== ============================================

The tombstone alone is *not* a grounding of "delete": it leaves shadowed
values physically recoverable in older runs (the §1 retention hazard the
LSM engine's retention records quantify); only the paired full compaction
makes the value unrecoverable.

"Not supported" is a statement about the *engine*, not the interpretation:
the paper's §1 remedy is retrofitting.  The crypto-shredding backend
(:class:`~repro.systems.backends.CryptoShredBackend`) is that retrofit —
every value is encrypted under a per-unit volume key, so destroying the key
("key shred") plus a multi-pass overwrite of the ciphertext sectors grounds
the fourth row with the full property profile (IR ×, II ×, Inv ×):

====================== ============================================
Erasure                 crypto-shred system-action(s)
====================== ============================================
reversibly inaccessible flag entry (key retained, value hidden)
delete                  logical delete + key shred
strong delete           logical delete cascade + key shred
permanently delete      key shred + sector sanitize
====================== ============================================

:func:`register_erasure` registers all three engines' groundings; a
deployment selects the set matching its
:class:`~repro.systems.backends.StorageBackend` at construction.
:data:`PAPER_TABLE1` remains the paper's PSQL ground truth (its last row
stays "Not supported"); :func:`backend_table1` renders the matrix a given
backend actually achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.actions import ActionHistory, ActionType
from repro.core.dataunit import Database, DataUnit
from repro.core.grounding import (
    Concept,
    GroundingRegistry,
    Interpretation,
    SystemAction,
)
from repro.core.provenance import ProvenanceGraph


class ErasureInterpretation(Enum):
    """The four interpretations, with their strictness rank as value."""

    REVERSIBLY_INACCESSIBLE = 1
    DELETED = 2
    STRONGLY_DELETED = 3
    PERMANENTLY_DELETED = 4

    @property
    def strictness(self) -> int:
        return self.value

    def implies(self, other: "ErasureInterpretation") -> bool:
        """Strictness order: strong delete ⟹ delete ⟹ inaccessible."""
        return self.value >= other.value

    @property
    def label(self) -> str:
        return _LABELS[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


_LABELS = {
    ErasureInterpretation.REVERSIBLY_INACCESSIBLE: "reversibly inaccessible",
    ErasureInterpretation.DELETED: "delete",
    ErasureInterpretation.STRONGLY_DELETED: "strong delete",
    ErasureInterpretation.PERMANENTLY_DELETED: "permanently delete",
}


@dataclass(frozen=True)
class ErasureCharacterization:
    """One Table-1 row: the property profile of an interpretation.

    ``illegal_read`` / ``illegal_inference`` / ``invertible`` say whether the
    property is *feasible* (may occur) under the interpretation — the paper
    marks feasibility ✓ and impossibility ×.
    """

    interpretation: ErasureInterpretation
    illegal_read: bool
    illegal_inference: bool
    invertible: bool
    system_actions: Tuple[str, ...]
    supported: bool = True

    def row(self) -> Tuple[str, str, str, str, str]:
        def mark(b: bool) -> str:
            return "✓" if b else "×"

        actions = (
            " + ".join(self.system_actions) if self.supported else "Not supported"
        )
        return (
            self.interpretation.label,
            mark(self.illegal_read),
            mark(self.illegal_inference),
            mark(self.invertible),
            actions,
        )


#: The paper's Table 1, as ground truth the implementation must reproduce.
PAPER_TABLE1: Dict[ErasureInterpretation, ErasureCharacterization] = {
    ErasureInterpretation.REVERSIBLY_INACCESSIBLE: ErasureCharacterization(
        ErasureInterpretation.REVERSIBLY_INACCESSIBLE,
        illegal_read=False,
        illegal_inference=True,
        invertible=True,
        system_actions=("Add new attribute",),
    ),
    ErasureInterpretation.DELETED: ErasureCharacterization(
        ErasureInterpretation.DELETED,
        illegal_read=False,
        illegal_inference=True,
        invertible=False,
        system_actions=("DELETE", "VACUUM"),
    ),
    ErasureInterpretation.STRONGLY_DELETED: ErasureCharacterization(
        ErasureInterpretation.STRONGLY_DELETED,
        illegal_read=False,
        illegal_inference=False,
        invertible=False,
        system_actions=("DELETE", "VACUUM FULL"),
    ),
    ErasureInterpretation.PERMANENTLY_DELETED: ErasureCharacterization(
        ErasureInterpretation.PERMANENTLY_DELETED,
        illegal_read=False,
        illegal_inference=False,
        invertible=False,
        system_actions=(),
        supported=False,
    ),
}


def paper_table1() -> List[ErasureCharacterization]:
    """The four rows in the paper's order."""
    return [PAPER_TABLE1[i] for i in ErasureInterpretation]


#: System-actions per backend, keyed by engine name — the Figure-2 step-3
#: mapping that :func:`register_erasure` records in the registry.  The
#: boolean marks whether the engine supports the interpretation at all.
BACKEND_SYSTEM_ACTIONS: Dict[str, Dict[ErasureInterpretation, Tuple[Tuple[str, ...], bool]]] = {
    "psql": {
        ErasureInterpretation.REVERSIBLY_INACCESSIBLE: (("Add new attribute",), True),
        ErasureInterpretation.DELETED: (("DELETE", "VACUUM"), True),
        ErasureInterpretation.STRONGLY_DELETED: (("DELETE", "VACUUM FULL"), True),
        ErasureInterpretation.PERMANENTLY_DELETED: ((), False),
    },
    "lsm": {
        ErasureInterpretation.REVERSIBLY_INACCESSIBLE: (("flag write",), True),
        ErasureInterpretation.DELETED: (("tombstone", "full compaction"), True),
        ErasureInterpretation.STRONGLY_DELETED: (
            ("tombstone cascade", "full compaction"),
            True,
        ),
        ErasureInterpretation.PERMANENTLY_DELETED: ((), False),
    },
    "crypto-shred": {
        ErasureInterpretation.REVERSIBLY_INACCESSIBLE: (("flag entry",), True),
        ErasureInterpretation.DELETED: (("logical delete", "key shred"), True),
        ErasureInterpretation.STRONGLY_DELETED: (
            ("logical delete cascade", "key shred"),
            True,
        ),
        ErasureInterpretation.PERMANENTLY_DELETED: (
            ("key shred", "sector sanitize"),
            True,
        ),
    },
}


def backend_table1(backend: str) -> List[ErasureCharacterization]:
    """The Table-1 matrix a backend actually achieves.

    Property profiles are the paper's (they characterize the interpretation,
    not the engine); system-actions and supportedness are the backend's.
    Crypto-shredding is the only backend whose fourth row is supported.
    """
    try:
        actions = BACKEND_SYSTEM_ACTIONS[backend]
    except KeyError:
        raise KeyError(f"unknown backend {backend!r}") from None
    rows = []
    for interpretation in ErasureInterpretation:
        paper = PAPER_TABLE1[interpretation]
        system_actions, supported = actions[interpretation]
        rows.append(
            ErasureCharacterization(
                interpretation=interpretation,
                illegal_read=paper.illegal_read,
                illegal_inference=paper.illegal_inference,
                invertible=paper.invertible,
                system_actions=system_actions,
                supported=supported,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Property checks — the formal groundings of IR / II / Inv.
# --------------------------------------------------------------------------

def has_erasure_inconsistent_read(unit: DataUnit, history: ActionHistory) -> bool:
    """IR: a read of X at a time when ``P(t) = ∅``.

    "X was read although there were no policies authorizing it."
    """
    for entry in history.of(unit.unit_id):
        if entry.is_read and not unit.policies.active_at(entry.timestamp):
            return True
    return False


def has_erasure_inconsistent_inference(
    unit: DataUnit,
    history: ActionHistory,
    provenance: ProvenanceGraph,
    database: Database,
) -> bool:
    """II: X has an erase tuple, yet surviving units can reconstruct it."""
    erase = history.last_of_type(unit.unit_id, ActionType.ERASE)
    if erase is None:
        return False
    surviving = [
        u.unit_id for u in database if not u.is_erased and u.unit_id != unit.unit_id
    ]
    return bool(provenance.reconstruction_witnesses(unit.unit_id, surviving))


def erase_transformation_is_invertible(
    unit: DataUnit, history: ActionHistory
) -> bool:
    """Inv: whether the applied erase transformation is recoverable.

    An erase realized as "reversibly inaccessible" records a RESTORE-capable
    transformation; physical deletes are non-invertible by construction.  We
    detect invertibility structurally: an erase whose action detail declares
    ``reversible`` (the flag set by the flag-column system-action) or a
    subsequent RESTORE action in the history.
    """
    erase = history.last_of_type(unit.unit_id, ActionType.ERASE)
    if erase is None:
        return False
    if erase.action.detail is not None and "reversible" in erase.action.detail:
        return True
    restore = history.last_of_type(unit.unit_id, ActionType.RESTORE)
    return restore is not None and restore.timestamp >= erase.timestamp


# --------------------------------------------------------------------------
# Timeline — Figure 3.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ErasureTimeline:
    """Figure 3: collection → reversibly inaccessible → deleted → strongly
    deleted → permanently deleted, with the Time-To-X durations between the
    milestones.

    Milestones are absolute model times; ``None`` means the milestone is
    never reached under the deployment's grounding (e.g., PSQL never reaches
    permanent deletion).
    """

    collected_at: int
    inaccessible_at: Optional[int] = None
    deleted_at: Optional[int] = None
    strongly_deleted_at: Optional[int] = None
    permanently_deleted_at: Optional[int] = None

    def __post_init__(self) -> None:
        milestones = [
            self.collected_at,
            self.inaccessible_at,
            self.deleted_at,
            self.strongly_deleted_at,
            self.permanently_deleted_at,
        ]
        previous = self.collected_at
        for value in milestones[1:]:
            if value is None:
                continue
            if value < previous:
                raise ValueError(
                    "erasure milestones must be non-decreasing in time"
                )
            previous = value

    @property
    def time_to_live(self) -> Optional[int]:
        """TT-Live: collection until the data first becomes inaccessible."""
        if self.inaccessible_at is None:
            return None
        return self.inaccessible_at - self.collected_at

    @property
    def time_to_delete(self) -> Optional[int]:
        if self.deleted_at is None:
            return None
        return self.deleted_at - self.collected_at

    @property
    def time_to_strong_delete(self) -> Optional[int]:
        if self.strongly_deleted_at is None:
            return None
        return self.strongly_deleted_at - self.collected_at

    @property
    def time_to_permanent_delete(self) -> Optional[int]:
        if self.permanently_deleted_at is None:
            return None
        return self.permanently_deleted_at - self.collected_at

    def reached(self, interpretation: ErasureInterpretation) -> bool:
        """Whether the milestone for ``interpretation`` has been reached."""
        return self.milestone(interpretation) is not None

    def milestone(self, interpretation: ErasureInterpretation) -> Optional[int]:
        return {
            ErasureInterpretation.REVERSIBLY_INACCESSIBLE: self.inaccessible_at,
            ErasureInterpretation.DELETED: self.deleted_at,
            ErasureInterpretation.STRONGLY_DELETED: self.strongly_deleted_at,
            ErasureInterpretation.PERMANENTLY_DELETED: self.permanently_deleted_at,
        }[interpretation]

    def render(self) -> str:
        """ASCII rendering of Figure 3."""
        stages = [
            ("Collection and storage", self.collected_at, ""),
            ("Reversibly inaccessible", self.inaccessible_at, "TT Live"),
            ("Deleted", self.deleted_at, "TT Delete"),
            ("Strongly deleted", self.strongly_deleted_at, "TT Strong Delete"),
            ("Permanently deleted", self.permanently_deleted_at, "TT Permanent Delete"),
        ]
        lines = []
        for name, at, label in stages:
            if at is None:
                lines.append(f"  {name:<24} —  (never reached)")
            else:
                suffix = f"  [{label} = {at - self.collected_at}us]" if label else ""
                lines.append(f"  {name:<24} @ t={at}{suffix}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Observed characterization — Table 1 computed from system behaviour.
# --------------------------------------------------------------------------

def characterize(
    interpretation: ErasureInterpretation,
    unit: DataUnit,
    history: ActionHistory,
    provenance: ProvenanceGraph,
    database: Database,
    system_actions: Sequence[str],
    supported: bool = True,
) -> ErasureCharacterization:
    """Compute a Table-1 row from an *observed* erase scenario.

    The benchmarks run each interpretation's system-actions on the simulated
    engine, then call this to verify the implementation exhibits exactly the
    property profile the paper claims (``tests/integration/test_table1.py``).
    """
    return ErasureCharacterization(
        interpretation=interpretation,
        illegal_read=has_erasure_inconsistent_read(unit, history),
        illegal_inference=has_erasure_inconsistent_inference(
            unit, history, provenance, database
        ),
        invertible=erase_transformation_is_invertible(unit, history),
        system_actions=tuple(system_actions),
        supported=supported,
    )


# --------------------------------------------------------------------------
# Registry wiring — the standard erasure concept for a deployment.
# --------------------------------------------------------------------------

ERASURE_CONCEPT = Concept(
    "erasure",
    "Removal of personal data required by e.g. GDPR Article 17",
)


#: Human detail for selected system-actions, keyed by (engine, action name).
_ACTION_DETAILS = {
    ("psql", "Add new attribute"): "visibility flag column",
    ("lsm", "flag write"): "overwrite with flagged value",
    ("crypto-shred", "flag entry"): "visibility flag beside the key slot",
    ("crypto-shred", "key shred"): "destroy the per-unit volume master key",
    ("crypto-shred", "sector sanitize"): (
        "multi-pass overwrite of the ciphertext sectors"
    ),
}


def register_erasure(registry: GroundingRegistry) -> Dict[ErasureInterpretation, Interpretation]:
    """Register the erasure concept, its four interpretations, and the PSQL,
    LSM, and crypto-shred groundings used throughout the evaluation."""
    registry.register_concept(ERASURE_CONCEPT)
    interps: Dict[ErasureInterpretation, Interpretation] = {}
    descriptions = {
        ErasureInterpretation.REVERSIBLY_INACCESSIBLE: (
            "unreadable by data-subjects, restorable by controller"
        ),
        ErasureInterpretation.DELETED: "data and all copies physically erased",
        ErasureInterpretation.STRONGLY_DELETED: (
            "deleted, plus all identifying dependent data deleted"
        ),
        ErasureInterpretation.PERMANENTLY_DELETED: (
            "strongly deleted, plus advanced drive sanitization"
        ),
    }
    for member in ErasureInterpretation:
        interps[member] = registry.register_interpretation(
            Interpretation(
                ERASURE_CONCEPT,
                member.label,
                member.strictness,
                descriptions[member],
            )
        )

    for engine, table in BACKEND_SYSTEM_ACTIONS.items():
        for member, (names, supported) in table.items():
            if supported:
                actions = [
                    SystemAction(
                        engine, n, True, _ACTION_DETAILS.get((engine, n), "")
                    )
                    for n in names
                ]
            else:
                actions = [
                    SystemAction(
                        engine,
                        "drive sanitization",
                        False,
                        f"not supported by {engine}",
                    )
                ]
            registry.register_grounding(interps[member], actions)
    return interps
