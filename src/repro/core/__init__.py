"""The Data-CASE model (paper §2–§3).

This package is the paper's primary contribution: a small set of data
processing concepts (entities, data units, policies, actions, action
histories), the policy-consistency abstraction of lawful processing,
regulation invariants stated over those concepts, and the *grounding*
machinery that maps a concept to one unambiguous interpretation and then to
engine-level system-actions.

``repro.core`` is pure model code: it never imports an engine.  The
``repro.systems`` layer is where groundings meet system-actions.
"""

from repro.core.actions import (
    Action,
    ActionHistory,
    ActionHistoryTuple,
    ActionType,
)
from repro.core.compliance import ComplianceChecker, ComplianceReport
from repro.core.consistency import (
    is_history_consistent,
    is_policy_consistent,
    policy_violations,
)
from repro.core.dataunit import (
    Database,
    DataCategory,
    DataUnit,
    DataUnitState,
    ValueVersion,
)
from repro.core.entities import Entity, EntityRegistry, Role
from repro.core.erasure import (
    ErasureCharacterization,
    ErasureInterpretation,
    ErasureTimeline,
    characterize,
    paper_table1,
)
from repro.core.grounding import (
    Concept,
    Grounding,
    GroundingRegistry,
    Interpretation,
    SystemAction,
)
from repro.core.invariants import (
    ComplianceVerdict,
    G17ErasureDeadline,
    G6PolicyConsistency,
    Invariant,
    Violation,
    figure1_invariants,
)
from repro.core.policy import Policy, PolicySet, Purpose
from repro.core.provenance import DependencyKind, ProvenanceGraph
from repro.core.regulation import Article, Regulation, ccpa, gdpr, pipeda, vdpa

__all__ = [
    "Entity",
    "EntityRegistry",
    "Role",
    "Policy",
    "PolicySet",
    "Purpose",
    "Database",
    "DataCategory",
    "DataUnit",
    "DataUnitState",
    "ValueVersion",
    "Action",
    "ActionHistory",
    "ActionHistoryTuple",
    "ActionType",
    "is_history_consistent",
    "is_policy_consistent",
    "policy_violations",
    "Concept",
    "Grounding",
    "GroundingRegistry",
    "Interpretation",
    "SystemAction",
    "ErasureCharacterization",
    "ErasureInterpretation",
    "ErasureTimeline",
    "characterize",
    "paper_table1",
    "ComplianceVerdict",
    "G6PolicyConsistency",
    "G17ErasureDeadline",
    "Invariant",
    "Violation",
    "figure1_invariants",
    "ComplianceChecker",
    "ComplianceReport",
    "DependencyKind",
    "ProvenanceGraph",
    "Article",
    "Regulation",
    "gdpr",
    "ccpa",
    "vdpa",
    "pipeda",
]
