"""Regulation catalogs (paper Figure 1, §4.3).

Figure 1 groups the GDPR articles that legislate data processing and impact
system design into eight categories, stated as informal invariants.  This
module encodes that grouping as data, plus skeleton catalogs for CCPA, VDPA,
and PIPEDA used by the multinational example (§4.3) — different regulations
covering overlapping concepts with different interpretations is exactly the
conflict Data-CASE is designed to make explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Tuple


class Category(Enum):
    """The eight Figure-1 requirement categories."""

    DISCLOSURE = "Disclosure"
    STORAGE = "Storage"
    PRE_PROCESSING = "Pre-processing"
    SHARING_AND_PROCESSING = "Sharing and Processing"
    ERASURE = "Erasure"
    DESIGN_AND_SECURITY = "Design and Security"
    RECORD_KEEPING = "Record Keeping"
    OBLIGATIONS = "Obligations and Accountability"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Article:
    """One article (or section) of a regulation."""

    number: str
    title: str
    category: Category
    invariant: str
    """The informal invariant the category states (Figure 1 wording)."""

    def __str__(self) -> str:
        return f"Art. {self.number} ({self.title})"


@dataclass(frozen=True)
class Regulation:
    """A named regulation with its article catalog."""

    name: str
    jurisdiction: str
    articles: Tuple[Article, ...]

    def by_category(self, category: Category) -> List[Article]:
        return [a for a in self.articles if a.category == category]

    def article(self, number: str) -> Article:
        for a in self.articles:
            if a.number == number:
                return a
        raise KeyError(f"{self.name} has no article {number!r}")

    def categories(self) -> List[Category]:
        seen: List[Category] = []
        for a in self.articles:
            if a.category not in seen:
                seen.append(a.category)
        return seen

    def render_figure1(self) -> str:
        """Figure 1: the categories, their invariants, and grouped articles."""
        lines = [f"{self.name} requirements as informal invariants:"]
        for category in Category:
            articles = self.by_category(category)
            if not articles:
                continue
            numbers = ", ".join(a.number for a in articles)
            lines.append(f"  {category.value}: {articles[0].invariant}")
            lines.append(f"      articles: [{numbers}]")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Article]:
        return iter(self.articles)

    def __len__(self) -> int:
        return len(self.articles)


# --------------------------------------------------------------------------
# Figure-1 invariant texts (quoted from the figure).
# --------------------------------------------------------------------------

_INVARIANT_TEXT: Dict[Category, str] = {
    Category.DISCLOSURE: "Keep data subjects informed when collecting data.",
    Category.STORAGE: "Store data such that data subjects can exercise their rights.",
    Category.PRE_PROCESSING: "Consult and assess prior to processing data.",
    Category.SHARING_AND_PROCESSING: "Do not process data indiscriminately.",
    Category.ERASURE: "Do not store data eternally.",
    Category.DESIGN_AND_SECURITY: "Build and design data protective systems.",
    Category.RECORD_KEEPING: "Keep records of all data-operations.",
    Category.OBLIGATIONS: (
        "Inform the user of changes and unauthorized access to their data; "
        "demonstrate compliance."
    ),
}


def _art(number: str, title: str, category: Category) -> Article:
    return Article(number, title, category, _INVARIANT_TEXT[category])


def gdpr() -> Regulation:
    """GDPR articles grouped per Figure 1.

    The figure lists article numbers per category: Disclosure [13, 14],
    Storage [12, 15–18, 20–21, 23], Pre-processing [35–36], Sharing and
    Processing [5–11, 22, 26–29, 44–45], Erasure [17], Design and Security
    [25, 32], Record Keeping [30], Obligations [19, 33–34] and
    Accountability [24, 31].
    """
    articles: List[Article] = [
        _art("13", "Information to be provided (data collected from subject)", Category.DISCLOSURE),
        _art("14", "Information to be provided (data not from subject)", Category.DISCLOSURE),
        _art("12", "Transparent information and communication", Category.STORAGE),
        _art("15", "Right of access", Category.STORAGE),
        _art("16", "Right to rectification", Category.STORAGE),
        _art("18", "Right to restriction of processing", Category.STORAGE),
        _art("20", "Right to data portability", Category.STORAGE),
        _art("21", "Right to object", Category.STORAGE),
        _art("23", "Restrictions", Category.STORAGE),
        _art("35", "Data protection impact assessment", Category.PRE_PROCESSING),
        _art("36", "Prior consultation", Category.PRE_PROCESSING),
        _art("5", "Principles relating to processing", Category.SHARING_AND_PROCESSING),
        _art("6", "Lawfulness of processing", Category.SHARING_AND_PROCESSING),
        _art("7", "Conditions for consent", Category.SHARING_AND_PROCESSING),
        _art("8", "Child's consent", Category.SHARING_AND_PROCESSING),
        _art("9", "Special categories of personal data", Category.SHARING_AND_PROCESSING),
        _art("10", "Criminal convictions data", Category.SHARING_AND_PROCESSING),
        _art("11", "Processing not requiring identification", Category.SHARING_AND_PROCESSING),
        _art("22", "Automated individual decision-making", Category.SHARING_AND_PROCESSING),
        _art("26", "Joint controllers", Category.SHARING_AND_PROCESSING),
        _art("27", "Representatives of non-EU controllers", Category.SHARING_AND_PROCESSING),
        _art("28", "Processor", Category.SHARING_AND_PROCESSING),
        _art("29", "Processing under authority", Category.SHARING_AND_PROCESSING),
        _art("44", "General principle for transfers", Category.SHARING_AND_PROCESSING),
        _art("45", "Transfers on adequacy decision", Category.SHARING_AND_PROCESSING),
        _art("17", "Right to erasure ('right to be forgotten')", Category.ERASURE),
        _art("25", "Data protection by design and by default", Category.DESIGN_AND_SECURITY),
        _art("32", "Security of processing", Category.DESIGN_AND_SECURITY),
        _art("30", "Records of processing activities", Category.RECORD_KEEPING),
        _art("19", "Notification obligation (rectification/erasure)", Category.OBLIGATIONS),
        _art("33", "Breach notification to supervisory authority", Category.OBLIGATIONS),
        _art("34", "Breach communication to the data subject", Category.OBLIGATIONS),
        _art("24", "Responsibility of the controller", Category.OBLIGATIONS),
        _art("31", "Cooperation with the supervisory authority", Category.OBLIGATIONS),
    ]
    return Regulation("GDPR", "EU", tuple(articles))


def ccpa() -> Regulation:
    """California Consumer Privacy Act — skeleton catalog for §4.3.

    CCPA speaks in sections of the California Civil Code; the mapping to
    Figure-1 categories shows the overlap (and gaps) with GDPR: e.g., CCPA's
    deletion right (1798.105) has statutory exceptions GDPR lacks, which is
    why a multinational deployment may need *different* erasure groundings
    per jurisdiction.
    """
    articles = [
        _art("1798.100", "Right to know / notice at collection", Category.DISCLOSURE),
        _art("1798.110", "Right to know categories and specific pieces", Category.STORAGE),
        _art("1798.115", "Right to know about sale/sharing", Category.STORAGE),
        _art("1798.105", "Right to delete", Category.ERASURE),
        _art("1798.120", "Right to opt-out of sale", Category.SHARING_AND_PROCESSING),
        _art("1798.121", "Right to limit use of sensitive data", Category.SHARING_AND_PROCESSING),
        _art("1798.150", "Security: reasonable procedures and practices", Category.DESIGN_AND_SECURITY),
        _art("1798.130", "Notice, disclosure, and response duties", Category.OBLIGATIONS),
    ]
    return Regulation("CCPA", "California, US", tuple(articles))


def vdpa() -> Regulation:
    """Virginia (Consumer) Data Protection Act — skeleton catalog."""
    articles = [
        _art("59.1-578.C", "Privacy notice", Category.DISCLOSURE),
        _art("59.1-577.A.1", "Right of access", Category.STORAGE),
        _art("59.1-577.A.2", "Right to correct", Category.STORAGE),
        _art("59.1-577.A.3", "Right to delete", Category.ERASURE),
        _art("59.1-578.A.5", "Data security practices", Category.DESIGN_AND_SECURITY),
        _art("59.1-580", "Data protection assessments", Category.PRE_PROCESSING),
        _art("59.1-579", "Processor duties and contracts", Category.SHARING_AND_PROCESSING),
    ]
    return Regulation("VDPA", "Virginia, US", tuple(articles))


def pipeda() -> Regulation:
    """Canada's PIPEDA — skeleton catalog (fair information principles)."""
    articles = [
        _art("4.2", "Identifying purposes", Category.DISCLOSURE),
        _art("4.3", "Consent", Category.SHARING_AND_PROCESSING),
        _art("4.5", "Limiting use, disclosure, and retention", Category.ERASURE),
        _art("4.7", "Safeguards", Category.DESIGN_AND_SECURITY),
        _art("4.8", "Openness", Category.DISCLOSURE),
        _art("4.9", "Individual access", Category.STORAGE),
        _art("4.10", "Challenging compliance", Category.OBLIGATIONS),
    ]
    return Regulation("PIPEDA", "Canada", tuple(articles))


def all_regulations() -> List[Regulation]:
    return [gdpr(), ccpa(), vdpa(), pipeda()]
