"""Entities — the actors of the data life cycle (paper §2.1).

    "As data flows through the data-life cycle, it is collected from the
     data-subject by the controller who might share it with processors.
     Auditors verify and certify compliance.  In Data-CASE, these roles are
     referred to as entities."

An :class:`Entity` is identified by a stable name; its :class:`Role`\\ s say
how a regulation treats it.  One entity may hold several roles (a company is
a controller for its customers' data and a processor for a partner's).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, Optional


class Role(Enum):
    """Regulatory roles recognised by Data-CASE."""

    DATA_SUBJECT = "data-subject"
    CONTROLLER = "controller"
    PROCESSOR = "processor"
    AUDITOR = "auditor"
    REGULATOR = "regulator"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Entity:
    """A named actor with a set of regulatory roles.

    Entities are value objects: equality is by name and role set, so they can
    key policies and action-history tuples.
    """

    name: str
    roles: FrozenSet[Role] = frozenset()
    jurisdiction: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("entity name must be non-empty")
        object.__setattr__(self, "roles", frozenset(self.roles))

    def has_role(self, role: Role) -> bool:
        return role in self.roles

    @property
    def is_data_subject(self) -> bool:
        return Role.DATA_SUBJECT in self.roles

    @property
    def is_controller(self) -> bool:
        return Role.CONTROLLER in self.roles

    @property
    def is_processor(self) -> bool:
        return Role.PROCESSOR in self.roles

    def with_role(self, role: Role) -> "Entity":
        """A copy of this entity that additionally holds ``role``."""
        return Entity(self.name, self.roles | {role}, self.jurisdiction)

    def __str__(self) -> str:
        return self.name


def data_subject(name: str, jurisdiction: Optional[str] = None) -> Entity:
    """Convenience constructor for a data-subject entity."""
    return Entity(name, frozenset({Role.DATA_SUBJECT}), jurisdiction)


def controller(name: str, jurisdiction: Optional[str] = None) -> Entity:
    """Convenience constructor for a controller entity."""
    return Entity(name, frozenset({Role.CONTROLLER}), jurisdiction)


def processor(name: str, jurisdiction: Optional[str] = None) -> Entity:
    """Convenience constructor for a processor entity."""
    return Entity(name, frozenset({Role.PROCESSOR}), jurisdiction)


def auditor(name: str, jurisdiction: Optional[str] = None) -> Entity:
    """Convenience constructor for an auditor entity."""
    return Entity(name, frozenset({Role.AUDITOR}), jurisdiction)


class EntityRegistry:
    """Registry of entities known to a deployment.

    The registry enforces name uniqueness and provides role-based queries —
    e.g., the compliance checker asks for all processors when evaluating
    sharing invariants.
    """

    def __init__(self, entities: Iterable[Entity] = ()) -> None:
        self._by_name: Dict[str, Entity] = {}
        for entity in entities:
            self.register(entity)

    def register(self, entity: Entity) -> Entity:
        existing = self._by_name.get(entity.name)
        if existing is not None and existing != entity:
            raise ValueError(
                f"entity name {entity.name!r} already registered with different roles"
            )
        self._by_name[entity.name] = entity
        return entity

    def get(self, name: str) -> Entity:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown entity: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def with_role(self, role: Role) -> Iterator[Entity]:
        """All registered entities holding ``role``."""
        return (e for e in self._by_name.values() if e.has_role(role))
