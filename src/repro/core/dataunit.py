"""Data units — the finest granularity of data in Data-CASE (paper §2.1).

    "We denote a data unit as a tuple X = (S, O, V, P) where S is the
     data-subject — the entity whom the data identifies; O is the origin —
     where the data was collected from; V is a set {(v1,t1), (v2,t2), …} of
     values where v_i is the value at time t_i; and P is the set of
     associated policies."

Data units are classified as *base* (directly or indirectly collected),
*derived* (obtained from base data; subject and origin become sets,
aggregated over the contributing base units), and *metadata* (data-subject
records, policies, logs …).

A :class:`Database` is a collection of data units; its state at time ``t`` is
the collection of unit states ``X(t)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.entities import Entity
from repro.core.policy import Policy, PolicySet


class DataCategory(Enum):
    """The three data-unit categories of §2.1."""

    BASE = "base"
    DERIVED = "derived"
    METADATA = "metadata"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ValueVersion:
    """One ``(v_i, t_i)`` element of the value aspect V."""

    value: Any
    timestamp: int

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("value timestamp must be non-negative")


@dataclass(frozen=True)
class DataUnitState:
    """``X(t) = (S(t), O(t), V(t), P(t))`` — an immutable snapshot."""

    unit_id: str
    subjects: FrozenSet[Entity]
    origins: FrozenSet[str]
    value: Any
    policies: FrozenSet[Policy]
    timestamp: int
    category: DataCategory


class DataUnit:
    """A mutable data unit ``X = (S, O, V, P)``.

    ``subjects`` and ``origins`` are sets to uniformly cover base data (a
    singleton) and derived data ("possibly varying sets of the data-subjects
    and origins of the base data from which it was derived").

    The value aspect is versioned: :meth:`write` appends a new
    :class:`ValueVersion`; :meth:`value_at` answers ``V(t)`` as the latest
    version at or before ``t``.
    """

    def __init__(
        self,
        unit_id: str,
        subjects: Union[Entity, Iterable[Entity]],
        origins: Union[str, Iterable[str]],
        category: DataCategory = DataCategory.BASE,
        policies: Optional[PolicySet] = None,
    ) -> None:
        if not unit_id:
            raise ValueError("data unit id must be non-empty")
        if isinstance(subjects, Entity):
            subjects = (subjects,)
        if isinstance(origins, str):
            origins = (origins,)
        self.unit_id = unit_id
        self.subjects: FrozenSet[Entity] = frozenset(subjects)
        self.origins: FrozenSet[str] = frozenset(origins)
        self.category = category
        self.policies: PolicySet = policies if policies is not None else PolicySet()
        self._versions: List[ValueVersion] = []
        self._erased_at: Optional[int] = None

    # --------------------------------------------------------------- values
    def write(self, value: Any, timestamp: int) -> ValueVersion:
        """Append a value version; timestamps must be non-decreasing."""
        if self._versions and timestamp < self._versions[-1].timestamp:
            raise ValueError(
                "value versions must be appended in non-decreasing time order: "
                f"{timestamp} < {self._versions[-1].timestamp}"
            )
        version = ValueVersion(value, timestamp)
        self._versions.append(version)
        return version

    def value_at(self, t: int) -> Optional[Any]:
        """``V(t)`` — the live value at time ``t`` (None before first write)."""
        if self._erased_at is not None and t >= self._erased_at:
            return None
        latest: Optional[ValueVersion] = None
        for version in self._versions:
            if version.timestamp <= t:
                latest = version
            else:
                break
        return latest.value if latest is not None else None

    @property
    def current_value(self) -> Optional[Any]:
        if self._erased_at is not None:
            return None
        return self._versions[-1].value if self._versions else None

    @property
    def versions(self) -> Tuple[ValueVersion, ...]:
        return tuple(self._versions)

    # --------------------------------------------------------------- erasure
    def mark_erased(self, timestamp: int) -> None:
        """Record that the unit's value aspect was erased at ``timestamp``.

        The model keeps the husk (id, subjects, policies may be needed for
        demonstrating compliance); engines decide what physical erasure
        means — that is exactly the grounding question of §3.
        """
        if self._erased_at is not None:
            raise ValueError(f"data unit {self.unit_id} already erased")
        self._erased_at = timestamp

    @property
    def erased_at(self) -> Optional[int]:
        return self._erased_at

    @property
    def is_erased(self) -> bool:
        return self._erased_at is not None

    # ---------------------------------------------------------------- state
    def state(self, t: int) -> DataUnitState:
        """``X(t)`` — immutable snapshot of every aspect at time ``t``."""
        return DataUnitState(
            unit_id=self.unit_id,
            subjects=self.subjects,
            origins=self.origins,
            value=self.value_at(t),
            policies=self.policies.active_at(t),
            timestamp=t,
            category=self.category,
        )

    # ------------------------------------------------------------- protocol
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        subj = ",".join(sorted(e.name for e in self.subjects))
        return f"DataUnit({self.unit_id!r}, subjects=[{subj}], {self.category})"


def derive(
    unit_id: str,
    bases: Sequence[DataUnit],
    value: Any,
    timestamp: int,
    policy_window: Optional[Tuple[int, int]] = None,
) -> DataUnit:
    """Produce a derived data unit from ``bases`` (paper §2.1).

    The derived unit's subject and origin sets are the unions of the bases';
    its policy set is the conservative intersection of the bases' policies,
    optionally clipped to ``policy_window`` — "the set of policies P_Y is
    generally a restriction of the policies of the data units in X̄".
    """
    if not bases:
        raise ValueError("derivation requires at least one base data unit")
    subjects: FrozenSet[Entity] = frozenset().union(*(b.subjects for b in bases))
    origins: FrozenSet[str] = frozenset().union(*(b.origins for b in bases))
    policies = bases[0].policies.copy()
    for base in bases[1:]:
        policies = policies.intersect(base.policies)
    if policy_window is not None:
        policies = policies.restricted_to(*policy_window)
    unit = DataUnit(
        unit_id,
        subjects,
        origins,
        category=DataCategory.DERIVED,
        policies=policies,
    )
    unit.write(value, timestamp)
    return unit


class Database:
    """A collection of data units; successive actions yield states D1, D2, …"""

    def __init__(self, units: Iterable[DataUnit] = ()) -> None:
        self._units: Dict[str, DataUnit] = {}
        for unit in units:
            self.add(unit)

    def add(self, unit: DataUnit) -> DataUnit:
        if unit.unit_id in self._units:
            raise ValueError(f"duplicate data unit id: {unit.unit_id!r}")
        self._units[unit.unit_id] = unit
        return unit

    def get(self, unit_id: str) -> DataUnit:
        try:
            return self._units[unit_id]
        except KeyError:
            raise KeyError(f"unknown data unit: {unit_id!r}") from None

    def discard(self, unit_id: str) -> Optional[DataUnit]:
        """Remove the unit record entirely (permanent-delete bookkeeping)."""
        return self._units.pop(unit_id, None)

    def __contains__(self, unit_id: str) -> bool:
        return unit_id in self._units

    def __iter__(self) -> Iterator[DataUnit]:
        return iter(self._units.values())

    def __len__(self) -> int:
        return len(self._units)

    def units_of_subject(self, subject: Entity) -> List[DataUnit]:
        """Every unit whose subject set contains ``subject``."""
        return [u for u in self._units.values() if subject in u.subjects]

    def by_category(self, category: DataCategory) -> List[DataUnit]:
        return [u for u in self._units.values() if u.category == category]

    def state(self, t: int) -> Dict[str, DataUnitState]:
        """The database state at time ``t``: every unit's ``X(t)``."""
        return {uid: unit.state(t) for uid, unit in self._units.items()}
