"""Actions and action histories (paper §2.1).

    "We refer to any operation that changes the state of data units as an
     action. … Each action on a data unit is denoted as an action-history
     tuple (X, p, e, τ(X), t) denoting that entity e performed action τ on X
     for purpose p at time t.  The action-history of X, H(X), is the set of
     all actions on X."

Reads are included even though they do not mutate the value aspect — the
paper's own examples record reads ("Netflix accessed the credit card
information of 1234 for billing"), and reads are exactly what the
erasure-inconsistent-read property inspects.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.entities import Entity


class ActionType(Enum):
    """The kinds of state-affecting operations Data-CASE distinguishes."""

    CREATE = "create"
    READ = "read"
    UPDATE = "update"
    DERIVE = "derive"
    SHARE = "share"
    CONTRACT = "contract"          # consent / policy-setting actions
    POLICY_CHANGE = "policy-change"
    ERASE = "erase"
    SANITIZE = "sanitize"          # drive sanitization step of permanent delete
    COMPACT = "compact"            # compaction GC'd the unit's tombstone (LSM)
    RESTORE = "restore"            # undo of reversible inaccessibility
    MOVE = "move"                  # grounded migration between storage sites
    REPAIR = "repair"              # read repair re-synced lagging replicas

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Action types that mutate the value aspect of a unit.
MUTATING_ACTIONS = frozenset(
    {
        ActionType.CREATE,
        ActionType.UPDATE,
        ActionType.ERASE,
        ActionType.SANITIZE,
        ActionType.COMPACT,
        ActionType.RESTORE,
    }
)


@dataclass(frozen=True)
class Action:
    """τ — an operation applied to one or more data units."""

    type: ActionType
    detail: Optional[str] = None

    def __str__(self) -> str:
        if self.detail:
            return f"{self.type.value}({self.detail})"
        return self.type.value


@dataclass(frozen=True)
class ActionHistoryTuple:
    """``(X, p, e, τ(X), t)`` — one recorded action.

    ``unit_id`` names X; ``resulting_state`` optionally captures τ(X), the
    changed state (engines may omit it for reads to bound log volume, the
    formal checks only need it for mutations).
    """

    unit_id: str
    purpose: str
    entity: Entity
    action: Action
    timestamp: int
    resulting_state: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("action timestamp must be non-negative")

    @property
    def is_read(self) -> bool:
        return self.action.type == ActionType.READ

    @property
    def is_erase(self) -> bool:
        """Whether the action erases (or completes an erasure of) the unit.

        SANITIZE counts: permanent deletion records the key-shred ERASE and
        the follow-on sector sanitization, and the latter must not read as
        "processing after the erase" (G17's last-action check).  COMPACT
        counts for the same reason: it records the moment compaction
        garbage-collected the unit's tombstone — the physical completion of
        an erase already in the history, not new processing.
        """
        return self.action.type in (
            ActionType.ERASE,
            ActionType.SANITIZE,
            ActionType.COMPACT,
        )

    def __str__(self) -> str:
        return (
            f"({self.unit_id}, {self.purpose}, {self.entity.name}, "
            f"{self.action}, {self.timestamp})"
        )


class ActionHistory:
    """H — action-history tuples, indexed by data unit.

    ``history.of(unit_id)`` is the paper's H(X).  Tuples are kept in insertion
    order, which engines guarantee to be non-decreasing in timestamp; the
    structure re-sorts lazily if a caller violates that, so formal checks
    ("the *last* access tuple on X …") stay correct.
    """

    def __init__(self, tuples: Iterable[ActionHistoryTuple] = ()) -> None:
        self._by_unit: Dict[str, List[ActionHistoryTuple]] = {}
        self._count = 0
        for t in tuples:
            self.record(t)

    # -------------------------------------------------------------- recording
    def record(self, entry: ActionHistoryTuple) -> ActionHistoryTuple:
        bucket = self._by_unit.setdefault(entry.unit_id, [])
        if bucket and bucket[-1].timestamp > entry.timestamp:
            # Late arrival: keep the bucket time-ordered.
            bucket.append(entry)
            bucket.sort(key=lambda e: e.timestamp)
        else:
            bucket.append(entry)
        self._count += 1
        return entry

    def forget_unit(self, unit_id: str) -> int:
        """Drop H(X) entirely (the P_SYS erase grounding purges logs).

        Returns the number of tuples removed.
        """
        removed = len(self._by_unit.pop(unit_id, ()))
        self._count -= removed
        return removed

    # ---------------------------------------------------------------- queries
    def of(self, unit_id: str) -> Tuple[ActionHistoryTuple, ...]:
        """H(X) for the unit, in time order."""
        return tuple(self._by_unit.get(unit_id, ()))

    def last(self, unit_id: str) -> Optional[ActionHistoryTuple]:
        bucket = self._by_unit.get(unit_id)
        return bucket[-1] if bucket else None

    def last_of_type(
        self, unit_id: str, action_type: ActionType
    ) -> Optional[ActionHistoryTuple]:
        for entry in reversed(self._by_unit.get(unit_id, [])):
            if entry.action.type == action_type:
                return entry
        return None

    def reads_after(self, unit_id: str, t: int) -> List[ActionHistoryTuple]:
        """Read tuples on X strictly after time ``t`` (IR property input)."""
        return [
            e
            for e in self._by_unit.get(unit_id, [])
            if e.is_read and e.timestamp > t
        ]

    def units(self) -> Iterator[str]:
        return iter(self._by_unit)

    def all_tuples(self) -> Iterator[ActionHistoryTuple]:
        for bucket in self._by_unit.values():
            yield from bucket

    def by_entity(self, entity: Entity) -> List[ActionHistoryTuple]:
        return [e for e in self.all_tuples() if e.entity == entity]

    def __len__(self) -> int:
        return self._count

    def __contains__(self, unit_id: str) -> bool:
        return unit_id in self._by_unit
