"""Grounding compatibility — interactions between concepts (paper §3.2, §6).

    "Grounding concepts require a careful analysis of actions different
     systems use for these concepts, as well as, interactions between the
     actions. … logs directly impact requirements like demonstrating
     compliance, system recovery, and data erasure."

Once a deployment selects groundings for several concepts, the choices can
conflict: a strict erasure interpretation fights long log retention; a
reversible-flag erasure fights an encryption-free design; purging logs on
erase fights demonstrability.  This module encodes those interaction rules
and audits a deployment's selections — the "compatibility of different
possible interpretations" the paper lists among the challenges ahead.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Sequence



class HistoryGrounding(Enum):
    """Interpretations of the *histories* concept (§3.2): what the system's
    logs retain, at what granularity, and for how long."""

    EPHEMERAL = 1          # logs recycled quickly (recovery only)
    OPERATIONS = 2         # all operations retained
    OPERATIONS_FOREVER = 3  # operations retained indefinitely, never purged

    @property
    def strictness(self) -> int:
        return self.value


class Severity(Enum):
    WARNING = "warning"
    CONFLICT = "conflict"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Incompatibility:
    """One detected interaction problem between selected groundings."""

    severity: Severity
    concepts: tuple
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {' × '.join(self.concepts)}: {self.message}"


@dataclass(frozen=True)
class DeploymentSelection:
    """The grounding choices a deployment made, as compatibility input."""

    erasure_strictness: int             # ErasureInterpretation.strictness
    purges_logs_on_erase: bool
    history: HistoryGrounding
    encrypts_at_rest: bool
    log_retention_bounded: bool = True  # logs eventually truncated


#: A rule inspects a selection and may return one incompatibility.
Rule = Callable[[DeploymentSelection], Optional[Incompatibility]]


def _rule_strict_erase_vs_eternal_logs(s: DeploymentSelection):
    if s.erasure_strictness >= 2 and s.history is HistoryGrounding.OPERATIONS_FOREVER and not s.purges_logs_on_erase:
        return Incompatibility(
            Severity.CONFLICT,
            ("erasure", "histories"),
            "physical deletion is selected, but operation logs retain the "
            "erased data's traces forever — the data is not 'deleted from "
            "all locations' (illegal retention through logs)",
        )
    return None


def _rule_log_purge_vs_demonstrability(s: DeploymentSelection):
    if s.purges_logs_on_erase:
        return Incompatibility(
            Severity.WARNING,
            ("erasure", "record-keeping"),
            "purging logs on erase removes the evidence that the erase "
            "happened on time — demonstrable compliance (Figure 1, IX) "
            "must rest on an erasure register kept outside the purged logs",
        )
    return None


def _rule_reversible_erase_needs_protection(s: DeploymentSelection):
    if s.erasure_strictness == 1 and not s.encrypts_at_rest:
        return Incompatibility(
            Severity.CONFLICT,
            ("erasure", "design-security"),
            "reversible inaccessibility keeps the data physically present; "
            "without at-rest encryption a storage-level leak exposes "
            "'erased' data in the clear",
        )
    return None


def _rule_ephemeral_logs_vs_accountability(s: DeploymentSelection):
    if s.history is HistoryGrounding.EPHEMERAL:
        return Incompatibility(
            Severity.WARNING,
            ("histories", "obligations"),
            "ephemeral logs cannot answer a supervisory authority's request "
            "to demonstrate past processing (G30/G31)",
        )
    return None


def _rule_unbounded_logs_vs_storage_limitation(s: DeploymentSelection):
    if not s.log_retention_bounded:
        return Incompatibility(
            Severity.WARNING,
            ("histories", "erasure"),
            "log retention is unbounded: logs are themselves personal-data "
            "stores and fall under storage limitation",
        )
    return None


DEFAULT_RULES: Sequence[Rule] = (
    _rule_strict_erase_vs_eternal_logs,
    _rule_log_purge_vs_demonstrability,
    _rule_reversible_erase_needs_protection,
    _rule_ephemeral_logs_vs_accountability,
    _rule_unbounded_logs_vs_storage_limitation,
)


def check_compatibility(
    selection: DeploymentSelection, rules: Sequence[Rule] = DEFAULT_RULES
) -> List[Incompatibility]:
    """Evaluate every interaction rule; returns the detected problems."""
    findings = []
    for rule in rules:
        finding = rule(selection)
        if finding is not None:
            findings.append(finding)
    return findings


def has_conflicts(findings: Sequence[Incompatibility]) -> bool:
    """Whether any finding is a hard conflict (vs a mere warning)."""
    return any(f.severity is Severity.CONFLICT for f in findings)


# --------------------------------------------------------------------------
# Profile presets — the §4.2 systems expressed as selections.
# --------------------------------------------------------------------------

def profile_selection(profile_name: str) -> DeploymentSelection:
    """The compatibility-relevant choices of the paper's three profiles."""
    if profile_name == "P_Base":
        return DeploymentSelection(
            erasure_strictness=2,               # DELETE + VACUUM
            purges_logs_on_erase=False,
            history=HistoryGrounding.OPERATIONS,
            encrypts_at_rest=True,
        )
    if profile_name == "P_GBench":
        return DeploymentSelection(
            erasure_strictness=2,               # DELETE (logical intent: delete)
            purges_logs_on_erase=False,
            history=HistoryGrounding.OPERATIONS_FOREVER,
            encrypts_at_rest=True,
        )
    if profile_name == "P_SYS":
        return DeploymentSelection(
            erasure_strictness=3,               # DELETE + VACUUM FULL
            purges_logs_on_erase=True,
            history=HistoryGrounding.OPERATIONS,
            encrypts_at_rest=True,
        )
    raise KeyError(f"unknown profile {profile_name!r}")
