"""Policy-consistent data processing — the lawfulness abstraction (paper §2.1).

    "We say that the action-history tuple (X, p, e, τ(X), t) on data unit X
     is policy-consistent if there exists a policy ⟨p, e, t_b, t_f⟩ in P(t)
     in the state of data unit X, or the action in the tuple is required by a
     data regulation.  Actions on X are policy-consistent if every
     action-history tuple in H(X) is policy-consistent."

This module is deliberately tiny: G6 ("processing shall be lawful") reduces
to these predicates, which is the paper's central abstraction.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.actions import ActionHistory, ActionHistoryTuple
from repro.core.dataunit import DataUnit


#: A predicate saying whether a regulation *requires* the recorded action
#: (e.g., a compliance-erase performed without an explicit user policy, or a
#: legally mandated disclosure).  The default accepts nothing.
RegulationRequires = Callable[[ActionHistoryTuple], bool]


def _never_required(_: ActionHistoryTuple) -> bool:
    return False


def is_policy_consistent(
    unit: DataUnit,
    entry: ActionHistoryTuple,
    required_by_regulation: RegulationRequires = _never_required,
) -> bool:
    """Whether one action-history tuple is policy-consistent.

    The policy set consulted is the unit's ``P(t)`` at the action's own
    timestamp — consent that arrived later does not launder an earlier
    access, and an expired policy does not authorize anything.
    """
    if entry.unit_id != unit.unit_id:
        raise ValueError(
            f"history tuple is about {entry.unit_id!r}, not {unit.unit_id!r}"
        )
    if required_by_regulation(entry):
        return True
    policy = unit.policies.authorizing(entry.purpose, entry.entity, entry.timestamp)
    return policy is not None


def policy_violations(
    unit: DataUnit,
    history: ActionHistory,
    required_by_regulation: RegulationRequires = _never_required,
) -> List[ActionHistoryTuple]:
    """Every tuple of H(X) that is *not* policy-consistent, in time order."""
    return [
        entry
        for entry in history.of(unit.unit_id)
        if not is_policy_consistent(unit, entry, required_by_regulation)
    ]


def is_history_consistent(
    unit: DataUnit,
    history: ActionHistory,
    required_by_regulation: RegulationRequires = _never_required,
) -> bool:
    """The paper's "actions on X are policy-consistent"."""
    return not policy_violations(unit, history, required_by_regulation)


def regulation_requires_any_of(*purposes: str) -> RegulationRequires:
    """A convenience ``required_by_regulation`` accepting listed purposes.

    Typical use: ``regulation_requires_any_of(Purpose.COMPLIANCE_ERASE)`` —
    erasing to satisfy G17 is lawful even when the data subject never wrote
    an explicit policy authorizing the controller to erase.
    """
    allowed = frozenset(purposes)

    def _requires(entry: ActionHistoryTuple) -> bool:
        return entry.purpose in allowed

    return _requires
