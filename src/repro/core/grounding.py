"""Grounding — from ambiguous concepts to system-actions (paper §1 Fig 2, §3).

The paper's schema (Figure 2):

1. A regulation is stated as invariants over Data-CASE *concepts*.
2. Each concept admits several valid *interpretations*; grounding is choosing
   one and formalizing it.
3. The grounded interpretation is mapped to engine-specific *system-actions*
   (``DELETE``/``VACUUM`` in PSQL, ``deleteOne``/``remove`` in MongoDB, UDFs…).
   Where an engine lacks a suitable system-action, it must be retrofitted.

:class:`GroundingRegistry` holds those mappings for a deployment and is what
the compliance checker and the system profiles consult.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Concept:
    """A data-processing concept named by a regulation (erasure, purpose…)."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("concept name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Interpretation:
    """One valid reading of a concept, with an explicit strictness rank.

    ``strictness`` orders interpretations of the *same* concept: a strictly
    greater rank implies the weaker interpretation (strong delete ⟹ delete).
    Ranks across different concepts are not comparable.
    """

    concept: Concept
    name: str
    strictness: int
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("interpretation name must be non-empty")

    def implies(self, other: "Interpretation") -> bool:
        """Whether satisfying this interpretation satisfies ``other``."""
        return self.concept == other.concept and self.strictness >= other.strictness

    def __str__(self) -> str:
        return f"{self.concept.name}:{self.name}"


@dataclass(frozen=True)
class SystemAction:
    """An engine-level operation (or UDF) that realizes an interpretation.

    ``engine`` identifies the target system ("psql", "lsm", "mongodb", …);
    ``supported`` is False for actions the engine cannot express — the
    paper's Table 1 marks permanent deletion "Not supported" in PSQL.
    """

    engine: str
    name: str
    supported: bool = True
    description: str = ""

    def __str__(self) -> str:
        return f"{self.engine}:{self.name}" + ("" if self.supported else " (unsupported)")


@dataclass(frozen=True)
class Grounding:
    """A chosen interpretation together with its system-action mapping."""

    interpretation: Interpretation
    system_actions: Tuple[SystemAction, ...]

    @property
    def is_implementable(self) -> bool:
        """Whether every required system-action exists in the engine."""
        return all(a.supported for a in self.system_actions)

    @property
    def engines(self) -> Tuple[str, ...]:
        return tuple(sorted({a.engine for a in self.system_actions}))

    def __str__(self) -> str:
        actions = " + ".join(str(a) for a in self.system_actions)
        return f"{self.interpretation} ↦ {actions}"


class GroundingRegistry:
    """The deployment-wide catalogue of concepts, interpretations, groundings.

    The registry enforces the paper's discipline:

    * a concept must be registered before interpretations of it;
    * at most one grounding may be *selected* per concept per engine — that
      selection is the act of "choosing the specific interpretation of the
      concepts they wish to support in their system" (Fig 2, step 2).
    """

    def __init__(self) -> None:
        self._concepts: Dict[str, Concept] = {}
        self._interpretations: Dict[str, List[Interpretation]] = {}
        self._groundings: Dict[Tuple[str, str, str], Grounding] = {}
        self._selected: Dict[Tuple[str, str], Grounding] = {}

    # --------------------------------------------------------------- concepts
    def register_concept(self, concept: Concept) -> Concept:
        existing = self._concepts.get(concept.name)
        if existing is not None and existing != concept:
            raise ValueError(f"concept {concept.name!r} already registered")
        self._concepts[concept.name] = concept
        self._interpretations.setdefault(concept.name, [])
        return concept

    def concept(self, name: str) -> Concept:
        try:
            return self._concepts[name]
        except KeyError:
            raise KeyError(f"unknown concept: {name!r}") from None

    def concepts(self) -> Iterator[Concept]:
        return iter(self._concepts.values())

    # --------------------------------------------------------- interpretations
    def register_interpretation(self, interpretation: Interpretation) -> Interpretation:
        if interpretation.concept.name not in self._concepts:
            raise KeyError(
                f"register concept {interpretation.concept.name!r} first"
            )
        bucket = self._interpretations[interpretation.concept.name]
        for existing in bucket:
            if existing.name == interpretation.name:
                if existing != interpretation:
                    raise ValueError(
                        f"interpretation {interpretation.name!r} of concept "
                        f"{interpretation.concept.name!r} already registered differently"
                    )
                return existing
            if existing.strictness == interpretation.strictness:
                raise ValueError(
                    "interpretations of one concept need distinct strictness "
                    f"ranks: {existing.name!r} and {interpretation.name!r} both "
                    f"rank {existing.strictness}"
                )
        bucket.append(interpretation)
        bucket.sort(key=lambda i: i.strictness)
        return interpretation

    def interpretations(self, concept_name: str) -> Tuple[Interpretation, ...]:
        """All registered interpretations, weakest first."""
        if concept_name not in self._concepts:
            raise KeyError(f"unknown concept: {concept_name!r}")
        return tuple(self._interpretations[concept_name])

    def interpretation(self, concept_name: str, name: str) -> Interpretation:
        for interp in self.interpretations(concept_name):
            if interp.name == name:
                return interp
        raise KeyError(
            f"concept {concept_name!r} has no interpretation {name!r}"
        )

    # ------------------------------------------------------------- groundings
    def register_grounding(
        self,
        interpretation: Interpretation,
        system_actions: Sequence[SystemAction],
    ) -> Grounding:
        """Record how an engine implements an interpretation."""
        if not system_actions:
            raise ValueError("a grounding needs at least one system-action")
        engines = {a.engine for a in system_actions}
        if len(engines) != 1:
            raise ValueError(
                f"one grounding targets one engine, got: {sorted(engines)}"
            )
        engine = next(iter(engines))
        grounding = Grounding(interpretation, tuple(system_actions))
        key = (interpretation.concept.name, interpretation.name, engine)
        self._groundings[key] = grounding
        return grounding

    def grounding(
        self, concept_name: str, interpretation_name: str, engine: str
    ) -> Grounding:
        try:
            return self._groundings[(concept_name, interpretation_name, engine)]
        except KeyError:
            raise KeyError(
                f"no grounding of {concept_name!r}/{interpretation_name!r} "
                f"for engine {engine!r}"
            ) from None

    def groundings_for(self, concept_name: str, engine: str) -> List[Grounding]:
        """Every registered grounding of the concept on the engine, weakest first."""
        found = [
            g
            for (c, _i, e), g in self._groundings.items()
            if c == concept_name and e == engine
        ]
        found.sort(key=lambda g: g.interpretation.strictness)
        return found

    # --------------------------------------------------------------- selection
    def select(self, grounding: Grounding, engine: Optional[str] = None) -> Grounding:
        """Fix the deployment's chosen grounding for a concept on an engine."""
        engine = engine or grounding.engines[0]
        if not grounding.is_implementable:
            raise ValueError(
                f"cannot select an unimplementable grounding: {grounding}"
            )
        self._selected[(grounding.interpretation.concept.name, engine)] = grounding
        return grounding

    def selected(self, concept_name: str, engine: str) -> Optional[Grounding]:
        return self._selected.get((concept_name, engine))

    def satisfies(
        self, concept_name: str, engine: str, required: Interpretation
    ) -> bool:
        """Whether the engine's selected grounding is at least as strict as
        ``required`` — the question a regulator asks (§4.4)."""
        chosen = self.selected(concept_name, engine)
        return chosen is not None and chosen.interpretation.implies(required)

    def render(self) -> str:
        """A human-readable dump of the registry (used by examples)."""
        lines: List[str] = []
        for concept in self._concepts.values():
            lines.append(f"concept {concept.name}: {concept.description}")
            for interp in self._interpretations[concept.name]:
                lines.append(
                    f"  [{interp.strictness}] {interp.name}: {interp.description}"
                )
                for (c, i, e), g in sorted(self._groundings.items()):
                    if c == concept.name and i == interp.name:
                        marker = (
                            " (selected)"
                            if self._selected.get((c, e)) is g
                            else ""
                        )
                        actions = " + ".join(a.name for a in g.system_actions)
                        lines.append(f"      {e}: {actions}{marker}")
        return "\n".join(lines)
