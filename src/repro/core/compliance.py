"""Compliance checking — evaluating invariants over a deployment (paper §2.2, §4).

The :class:`ComplianceChecker` is how an auditor (or a regulator, §4.4) uses
Data-CASE: give it the database model, the action history, and a set of
invariants; it returns a :class:`ComplianceReport` with per-invariant
verdicts and violation witnesses — *demonstrable* compliance or a concrete
counter-example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.actions import ActionHistory
from repro.core.dataunit import Database
from repro.core.invariants import (
    ComplianceVerdict,
    G17ErasureDeadline,
    G6PolicyConsistency,
    Invariant,
    Violation,
)


@dataclass(frozen=True)
class ComplianceReport:
    """The outcome of a full compliance evaluation."""

    verdicts: Tuple[ComplianceVerdict, ...]
    evaluated_at: int

    @property
    def compliant(self) -> bool:
        return all(v.holds for v in self.verdicts)

    @property
    def violations(self) -> Tuple[Violation, ...]:
        out: List[Violation] = []
        for verdict in self.verdicts:
            out.extend(verdict.violations)
        return tuple(out)

    def verdict(self, invariant_name: str) -> ComplianceVerdict:
        for v in self.verdicts:
            if v.invariant == invariant_name:
                return v
        raise KeyError(f"no verdict for invariant {invariant_name!r}")

    def __contains__(self, invariant_name: str) -> bool:
        return any(v.invariant == invariant_name for v in self.verdicts)

    def summary(self) -> Dict[str, bool]:
        return {v.invariant: v.holds for v in self.verdicts}

    def render(self, max_violations: int = 5) -> str:
        """Human-readable report used by examples and the audit CLI."""
        lines = [
            f"Compliance report @ t={self.evaluated_at} — "
            f"{'COMPLIANT' if self.compliant else 'NON-COMPLIANT'}"
        ]
        for verdict in self.verdicts:
            status = "PASS" if verdict.holds else "FAIL"
            lines.append(
                f"  [{status}] {verdict.invariant} "
                f"({verdict.checked_units} units checked, "
                f"{len(verdict.violations)} violations)"
            )
            for violation in verdict.violations[:max_violations]:
                lines.append(f"         - {violation}")
            hidden = len(verdict.violations) - max_violations
            if hidden > 0:
                lines.append(f"         … and {hidden} more")
        return "\n".join(lines)


class ComplianceChecker:
    """Evaluates a set of invariants against a database + action history."""

    def __init__(self, invariants: Optional[Sequence[Invariant]] = None) -> None:
        if invariants is None:
            invariants = [G6PolicyConsistency(), G17ErasureDeadline()]
        self._invariants: List[Invariant] = list(invariants)

    @property
    def invariants(self) -> Tuple[Invariant, ...]:
        return tuple(self._invariants)

    def add(self, invariant: Invariant) -> None:
        self._invariants.append(invariant)

    def check(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceReport:
        verdicts = tuple(
            invariant.evaluate(database, history, now)
            for invariant in self._invariants
        )
        return ComplianceReport(verdicts=verdicts, evaluated_at=now)

    def check_unit(
        self, database: Database, history: ActionHistory, unit_id: str, now: int
    ) -> ComplianceReport:
        """Evaluate the invariants against a single-unit view.

        Useful when answering a data-subject access request: "show me my
        data's compliance status" without scanning the whole deployment.
        """
        view = Database([database.get(unit_id)])
        return self.check(view, history, now)
