"""Provenance — dependencies between data units (paper §2.1, §3.1).

Two of the paper's formal properties need provenance:

* **Erasure-inconsistent inference (II)** — "X = f(Y) where Y is other data
  units and f is some dependency that can be used to reconstruct X from Y":
  even after X is erased it may be inferable from derived/dependent data.
* **Strong deletion** — deleting X *and all dependent data where the
  data-subject is identifiable*.

The graph is a :class:`networkx.DiGraph` with an edge ``base → derived`` per
derivation, annotated with the dependency kind and whether the dependency
function is invertible (can reconstruct the base from the derivation).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, List, Set

import networkx as nx


class DependencyKind(Enum):
    """How a derived unit depends on its base."""

    COPY = "copy"                  # replica / cache — trivially invertible
    AGGREGATE = "aggregate"        # sum/avg over many units — lossy
    TRANSFORM = "transform"        # per-unit function (encryption, encoding)
    JOIN = "join"                  # combination of several units
    INFERENCE = "inference"        # model / statistical inference

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Dependency:
    """One ``base → derived`` edge: derived = f(base, …)."""

    base_id: str
    derived_id: str
    kind: DependencyKind
    invertible: bool
    identifying: bool = True
    """Whether the data-subject is identifiable from the derived unit —
    strong delete only requires deleting dependents "where the data-subject
    is identifiable" (§3.1)."""


class ProvenanceGraph:
    """Tracks derivations; answers the reachability questions of erasure."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    # -------------------------------------------------------------- recording
    def add_unit(self, unit_id: str) -> None:
        self._graph.add_node(unit_id)

    def record(self, dependency: Dependency) -> Dependency:
        if dependency.base_id == dependency.derived_id:
            raise ValueError("a unit cannot derive from itself")
        self._graph.add_edge(
            dependency.base_id,
            dependency.derived_id,
            dependency=dependency,
        )
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(dependency.base_id, dependency.derived_id)
            raise ValueError(
                f"dependency {dependency.base_id} → {dependency.derived_id} "
                "would create a provenance cycle"
            )
        return dependency

    def forget(self, unit_id: str) -> None:
        """Remove the unit and its incident edges (permanent-delete path)."""
        if self._graph.has_node(unit_id):
            self._graph.remove_node(unit_id)

    # ---------------------------------------------------------------- queries
    def __contains__(self, unit_id: str) -> bool:
        return self._graph.has_node(unit_id)

    def dependencies_of(self, derived_id: str) -> List[Dependency]:
        """The edges feeding into ``derived_id`` (its bases)."""
        if not self._graph.has_node(derived_id):
            return []
        return [
            self._graph.edges[base, derived_id]["dependency"]
            for base in self._graph.predecessors(derived_id)
        ]

    def derivations_of(self, base_id: str) -> List[Dependency]:
        """The edges leaving ``base_id`` (its direct derivations)."""
        if not self._graph.has_node(base_id):
            return []
        return [
            self._graph.edges[base_id, derived]["dependency"]
            for derived in self._graph.successors(base_id)
        ]

    def descendants(self, base_id: str) -> Set[str]:
        """Every unit transitively derived from ``base_id``."""
        if not self._graph.has_node(base_id):
            return set()
        return set(nx.descendants(self._graph, base_id))

    def ancestors(self, derived_id: str) -> Set[str]:
        if not self._graph.has_node(derived_id):
            return set()
        return set(nx.ancestors(self._graph, derived_id))

    def identifying_descendants(self, base_id: str) -> Set[str]:
        """Descendants reachable through *identifying* edges only.

        This is the closure strong delete must remove: a path through a
        non-identifying (anonymizing) edge breaks identifiability, so units
        beyond it may be retained.
        """
        result: Set[str] = set()
        frontier = [base_id]
        while frontier:
            current = frontier.pop()
            for dep in self.derivations_of(current):
                if dep.identifying and dep.derived_id not in result:
                    result.add(dep.derived_id)
                    frontier.append(dep.derived_id)
        return result

    def reconstruction_witnesses(
        self, unit_id: str, surviving: Iterable[str]
    ) -> List[Dependency]:
        """Dependencies that let a *surviving* unit reconstruct ``unit_id``.

        This is the II check's core: after erasing X, any invertible edge
        X → Y with Y still present witnesses that X can be inferred.
        Also covers the reverse direction — if X was derived *from* a
        surviving base via an edge that is deterministic (COPY/TRANSFORM),
        X can be recomputed.
        """
        alive = set(surviving)
        witnesses: List[Dependency] = []
        for dep in self.derivations_of(unit_id):
            if dep.derived_id in alive and dep.invertible:
                witnesses.append(dep)
        for dep in self.dependencies_of(unit_id):
            if dep.base_id in alive and dep.kind in (
                DependencyKind.COPY,
                DependencyKind.TRANSFORM,
            ):
                witnesses.append(dep)
        return witnesses

    def units(self) -> Iterator[str]:
        return iter(self._graph.nodes)

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def edge_count(self) -> int:
        return self._graph.number_of_edges()
