"""Regulation invariants (paper §2.2, Figure 1).

An :class:`Invariant` evaluates a database + action-history against one
formally stated requirement and returns a :class:`ComplianceVerdict` with
violation witnesses.  Two invariants are fully formal, straight from §2.2:

* :class:`G6PolicyConsistency` — every action on every data unit is
  policy-consistent;
* :class:`G17ErasureDeadline` — every data unit carries a compliance-erase
  policy, and its last action is an erase performed before that deadline.

The remaining nine are the informal category invariants of Figure 1, each
formalized here as far as the model allows (the paper leaves them informal;
we choose checkable readings and document them in the docstrings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Tuple

from repro.core.actions import ActionHistory, ActionHistoryTuple, ActionType
from repro.core.consistency import (
    RegulationRequires,
    _never_required,
    policy_violations,
)
from repro.core.dataunit import Database, DataCategory


@dataclass(frozen=True)
class Violation:
    """One witness of an invariant breach."""

    invariant: str
    unit_id: Optional[str]
    message: str
    witness: Optional[ActionHistoryTuple] = None

    def __str__(self) -> str:
        where = f" [{self.unit_id}]" if self.unit_id else ""
        return f"{self.invariant}{where}: {self.message}"


@dataclass(frozen=True)
class ComplianceVerdict:
    """The outcome of evaluating one invariant."""

    invariant: str
    holds: bool
    violations: Tuple[Violation, ...] = ()
    checked_units: int = 0

    def __bool__(self) -> bool:
        return self.holds


class Invariant(Protocol):
    """The protocol every invariant implements."""

    name: str
    article: str

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:  # pragma: no cover - protocol
        ...


def _verdict(
    name: str, violations: List[Violation], checked: int
) -> ComplianceVerdict:
    return ComplianceVerdict(
        invariant=name,
        holds=not violations,
        violations=tuple(violations),
        checked_units=checked,
    )


class G6PolicyConsistency:
    """GDPR Article 6 — lawfulness of processing.

    "For all data units X, and for all actions τ on X, it holds that τ is
    policy-consistent."
    """

    name = "G6-policy-consistency"
    article = "GDPR Art. 6"

    def __init__(
        self, required_by_regulation: RegulationRequires = _never_required
    ) -> None:
        self._required = required_by_regulation

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        violations: List[Violation] = []
        checked = 0
        for unit in database:
            checked += 1
            for entry in policy_violations(unit, history, self._required):
                violations.append(
                    Violation(
                        self.name,
                        unit.unit_id,
                        f"action {entry.action} by {entry.entity.name} for "
                        f"purpose {entry.purpose!r} at t={entry.timestamp} "
                        "has no authorizing policy",
                        witness=entry,
                    )
                )
        return _verdict(self.name, violations, checked)


class G17ErasureDeadline:
    """GDPR Article 17 — right to erasure / storage limitation.

    "Every data unit X has a compliance-erase policy
    ⟨compliance-erase, e, t_b, t_f⟩, and the last action on X is erase(X) at
    a time t ≤ t_f."

    Units whose deadline lies in the future are not yet in violation; units
    with no compliance-erase policy at all violate the invariant immediately
    ("do not store data eternally", Figure 1 category V).
    """

    name = "G17-erasure-deadline"
    article = "GDPR Art. 17"

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        violations: List[Violation] = []
        checked = 0
        for unit in database:
            if unit.category == DataCategory.METADATA:
                continue
            checked += 1
            deadline = unit.policies.erasure_deadline()
            if deadline is None:
                violations.append(
                    Violation(
                        self.name,
                        unit.unit_id,
                        "no compliance-erase policy: data would be retained "
                        "eternally",
                    )
                )
                continue
            erase = history.last_of_type(unit.unit_id, ActionType.ERASE)
            if erase is not None and erase.timestamp <= deadline:
                last = history.last(unit.unit_id)
                if last is not None and not last.is_erase and last.timestamp > erase.timestamp:
                    violations.append(
                        Violation(
                            self.name,
                            unit.unit_id,
                            f"action {last.action} at t={last.timestamp} "
                            "post-dates the erase",
                            witness=last,
                        )
                    )
                continue
            if erase is not None and erase.timestamp > deadline:
                violations.append(
                    Violation(
                        self.name,
                        unit.unit_id,
                        f"erase happened at t={erase.timestamp}, after the "
                        f"deadline t={deadline}",
                        witness=erase,
                    )
                )
                continue
            if now > deadline:
                violations.append(
                    Violation(
                        self.name,
                        unit.unit_id,
                        f"deadline t={deadline} has passed without an erase "
                        f"(now t={now})",
                    )
                )
        return _verdict(self.name, violations, checked)


# --------------------------------------------------------------------------
# Figure 1 — the nine informal category invariants, given checkable readings.
# --------------------------------------------------------------------------

class DisclosureInvariant:
    """Figure 1, I (Disclosure): keep data subjects informed when collecting.

    Reading: every base data unit's history contains a CONTRACT action (the
    consent/notice event) at or before its first CREATE.
    """

    name = "I-disclosure"
    article = "GDPR Arts. 13–14"

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        violations: List[Violation] = []
        checked = 0
        for unit in database.by_category(DataCategory.BASE):
            checked += 1
            entries = history.of(unit.unit_id)
            create_t: Optional[int] = None
            contract_t: Optional[int] = None
            for e in entries:
                if e.action.type == ActionType.CREATE and create_t is None:
                    create_t = e.timestamp
                if e.action.type == ActionType.CONTRACT and contract_t is None:
                    contract_t = e.timestamp
            if create_t is None:
                continue
            if contract_t is None or contract_t > create_t:
                violations.append(
                    Violation(
                        self.name,
                        unit.unit_id,
                        "collected without a prior disclosure/consent contract",
                    )
                )
        return _verdict(self.name, violations, checked)


class StorageRightsInvariant:
    """Figure 1, II (Storage): store data such that subjects can exercise
    their rights.

    Reading: every base/derived unit has a non-empty subject set and at least
    one policy naming an entity — otherwise no right (access, erasure,
    rectification) can even be addressed.
    """

    name = "II-storage-rights"
    article = "GDPR Arts. 12, 15–18, 20–21, 23"

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        violations: List[Violation] = []
        checked = 0
        for unit in database:
            if unit.category == DataCategory.METADATA:
                continue
            checked += 1
            if unit.is_erased:
                continue
            if not unit.subjects:
                violations.append(
                    Violation(
                        self.name, unit.unit_id, "no data-subject recorded"
                    )
                )
            if len(unit.policies) == 0:
                violations.append(
                    Violation(
                        self.name,
                        unit.unit_id,
                        "no policy attached: rights cannot be exercised",
                    )
                )
        return _verdict(self.name, violations, checked)


class PreProcessingInvariant:
    """Figure 1, III (Pre-processing): consult and assess prior to processing.

    Reading: the deployment performed a privacy impact assessment —
    modelled as a PIA marker action recorded against the deployment unit
    before the first non-CONTRACT action in the whole history.
    """

    name = "III-pre-processing"
    article = "GDPR Arts. 35–36"
    PIA_UNIT = "__deployment__"

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        violations: List[Violation] = []
        pia = history.last_of_type(self.PIA_UNIT, ActionType.CONTRACT)
        first_processing: Optional[ActionHistoryTuple] = None
        for entry in history.all_tuples():
            if entry.unit_id == self.PIA_UNIT:
                continue
            if entry.action.type == ActionType.CONTRACT:
                continue
            if first_processing is None or entry.timestamp < first_processing.timestamp:
                first_processing = entry
        if first_processing is not None:
            if pia is None:
                violations.append(
                    Violation(
                        self.name,
                        None,
                        "no privacy impact assessment on record",
                    )
                )
            elif pia.timestamp > first_processing.timestamp:
                violations.append(
                    Violation(
                        self.name,
                        first_processing.unit_id,
                        "processing started before the impact assessment",
                        witness=first_processing,
                    )
                )
        return _verdict(self.name, violations, 1)


class SharingProcessingInvariant:
    """Figure 1, IV (Sharing and Processing): do not process indiscriminately.

    Reading: every SHARE or DERIVE action is policy-consistent (a sharper
    subset of G6 focused on propagation of data to other entities).
    """

    name = "IV-sharing-processing"
    article = "GDPR Arts. 5–11, 22, 26–29, 44–45"

    def __init__(
        self, required_by_regulation: RegulationRequires = _never_required
    ) -> None:
        self._required = required_by_regulation

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        violations: List[Violation] = []
        checked = 0
        for unit in database:
            checked += 1
            for entry in history.of(unit.unit_id):
                if entry.action.type not in (ActionType.SHARE, ActionType.DERIVE):
                    continue
                if self._required(entry):
                    continue
                if unit.policies.authorizing(
                    entry.purpose, entry.entity, entry.timestamp
                ) is None:
                    violations.append(
                        Violation(
                            self.name,
                            unit.unit_id,
                            f"{entry.action} by {entry.entity.name} without "
                            "an authorizing policy",
                            witness=entry,
                        )
                    )
        return _verdict(self.name, violations, checked)


class ErasureInvariant:
    """Figure 1, V (Erasure): do not store data eternally — alias of G17."""

    name = "V-erasure"
    article = "GDPR Art. 17"

    def __init__(self) -> None:
        self._g17 = G17ErasureDeadline()

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        inner = self._g17.evaluate(database, history, now)
        violations = tuple(
            Violation(self.name, v.unit_id, v.message, v.witness)
            for v in inner.violations
        )
        return ComplianceVerdict(
            self.name, inner.holds, violations, inner.checked_units
        )


class DesignSecurityInvariant:
    """Figure 1, VI (Design and Security): build data-protective systems.

    Reading: the deployment declares an at-rest encryption scheme, checked
    via a deployment attribute the system profiles set.  A pure-model
    evaluation cannot inspect an engine, so the checker consults a
    declaration callback supplied by the deployment.
    """

    name = "VI-design-security"
    article = "GDPR Arts. 25, 32"

    def __init__(self, encrypted_at_rest: Callable[[], bool] = lambda: False) -> None:
        self._encrypted_at_rest = encrypted_at_rest

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        violations: List[Violation] = []
        if not self._encrypted_at_rest():
            violations.append(
                Violation(
                    self.name,
                    None,
                    "personal data is not protected at rest",
                )
            )
        return _verdict(self.name, violations, 1)


class RecordKeepingInvariant:
    """Figure 1, VII (Record keeping): keep records of all data-operations.

    Reading: every non-metadata unit present in the database appears in the
    action history (at minimum its CREATE must be on record).
    """

    name = "VII-record-keeping"
    article = "GDPR Art. 30"

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        violations: List[Violation] = []
        checked = 0
        for unit in database:
            if unit.category == DataCategory.METADATA:
                continue
            checked += 1
            if unit.unit_id not in history:
                violations.append(
                    Violation(
                        self.name,
                        unit.unit_id,
                        "unit exists but no operation on it is on record",
                    )
                )
        return _verdict(self.name, violations, checked)


class ObligationsInvariant:
    """Figure 1, VIII (Obligations): inform the user of changes and
    unauthorized access to their data.

    Reading: for every policy-inconsistent access on a unit (a breach), the
    history contains a later SHARE action to the data subject with purpose
    ``breach-notification``.
    """

    name = "VIII-obligations"
    article = "GDPR Arts. 19, 33–34"
    NOTIFY_PURPOSE = "breach-notification"

    def __init__(
        self, required_by_regulation: RegulationRequires = _never_required
    ) -> None:
        self._required = required_by_regulation

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        violations: List[Violation] = []
        checked = 0
        for unit in database:
            checked += 1
            breaches = policy_violations(unit, history, self._required)
            if not breaches:
                continue
            notices = [
                e
                for e in history.of(unit.unit_id)
                if e.action.type == ActionType.SHARE
                and e.purpose == self.NOTIFY_PURPOSE
            ]
            for breach in breaches:
                if breach.purpose == self.NOTIFY_PURPOSE:
                    continue
                notified = any(n.timestamp >= breach.timestamp for n in notices)
                if not notified:
                    violations.append(
                        Violation(
                            self.name,
                            unit.unit_id,
                            "unauthorized access was never notified to the "
                            "data subject",
                            witness=breach,
                        )
                    )
        return _verdict(self.name, violations, checked)


class DemonstrabilityInvariant:
    """Figure 1, IX (Accountability): demonstrate compliance.

    Reading: the action history itself must be demonstrably complete — every
    mutation recorded in the database model (value versions, erasures) has a
    matching history tuple.  This is the invariant that makes "demonstrable
    compliance" more than a slogan: evidence, not assertion.
    """

    name = "IX-demonstrability"
    article = "GDPR Arts. 24, 31"

    def evaluate(
        self, database: Database, history: ActionHistory, now: int
    ) -> ComplianceVerdict:
        violations: List[Violation] = []
        checked = 0
        for unit in database:
            if unit.category == DataCategory.METADATA:
                continue
            checked += 1
            entries = history.of(unit.unit_id)
            mutations = sum(
                1
                for e in entries
                if e.action.type
                in (ActionType.CREATE, ActionType.UPDATE, ActionType.ERASE)
            )
            expected = len(unit.versions) + (1 if unit.is_erased else 0)
            if mutations < expected:
                violations.append(
                    Violation(
                        self.name,
                        unit.unit_id,
                        f"{expected} recorded mutations in the model but only "
                        f"{mutations} in the action history",
                    )
                )
        return _verdict(self.name, violations, checked)


def figure1_invariants(
    required_by_regulation: RegulationRequires = _never_required,
    encrypted_at_rest: Callable[[], bool] = lambda: True,
) -> List[Invariant]:
    """The nine Figure-1 invariants, in the paper's order."""
    return [
        DisclosureInvariant(),
        StorageRightsInvariant(),
        PreProcessingInvariant(),
        SharingProcessingInvariant(required_by_regulation),
        ErasureInvariant(),
        DesignSecurityInvariant(encrypted_at_rest),
        RecordKeepingInvariant(),
        ObligationsInvariant(required_by_regulation),
        DemonstrabilityInvariant(),
    ]
