"""Policies — the constraints that control data flow (paper §2.1).

    "A policy on a data unit X is a tuple ⟨p, e, t_b, t_f⟩ — a constraint
     specifying that an entity e can access the data unit for purpose p from
     time t_b to t_f."

Purposes are open-ended strings in the paper ("billing", "retention",
"compliance-erase", …).  :class:`Purpose` gives the well-known ones symbolic
names while still accepting arbitrary purposes, because regulations and
deployments keep inventing new ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.entities import Entity


class Purpose:
    """Well-known purposes used throughout the paper and the benchmarks.

    A purpose is just a string; this namespace only fixes the spellings the
    rest of the library relies on (e.g., the G17 invariant looks for
    :data:`Purpose.COMPLIANCE_ERASE`).
    """

    BILLING = "billing"
    RETENTION = "retention"
    COMPLIANCE_ERASE = "compliance-erase"
    ANALYTICS = "analytics"
    ADVERTISING = "targeted-advertising"
    CONTRACT = "contract"
    AUDIT = "audit"
    SECURITY = "security"
    LEGAL_OBLIGATION = "legal-obligation"
    SERVICE = "service-provision"

    _ALL = (
        BILLING,
        RETENTION,
        COMPLIANCE_ERASE,
        ANALYTICS,
        ADVERTISING,
        CONTRACT,
        AUDIT,
        SECURITY,
        LEGAL_OBLIGATION,
        SERVICE,
    )

    @classmethod
    def well_known(cls) -> Tuple[str, ...]:
        return cls._ALL


@dataclass(frozen=True)
class Policy:
    """⟨purpose, entity, t_begin, t_final⟩ on a data unit.

    Timestamps are model-time microseconds (see :mod:`repro.sim.clock`).
    The interval is inclusive on both ends, matching the paper's
    ``P(t) := {(p,e,t_b,t_f) ∈ P | t_b ≤ t ≤ t_f}``.
    """

    purpose: str
    entity: Entity
    t_begin: int
    t_final: int

    def __post_init__(self) -> None:
        if not self.purpose:
            raise ValueError("policy purpose must be non-empty")
        if self.t_begin > self.t_final:
            raise ValueError(
                f"policy interval is empty: t_begin={self.t_begin} > t_final={self.t_final}"
            )

    def active_at(self, t: int) -> bool:
        """Whether the policy authorizes access at model time ``t``."""
        return self.t_begin <= t <= self.t_final

    def authorizes(self, purpose: str, entity: Entity, t: int) -> bool:
        """Whether this policy authorizes ``entity`` to act for ``purpose`` at ``t``."""
        return (
            self.active_at(t)
            and self.purpose == purpose
            and self.entity == entity
        )

    def restricted_to(self, t_begin: int, t_final: int) -> Optional["Policy"]:
        """The policy clipped to ``[t_begin, t_final]``, or None if disjoint.

        Used when deriving data: the derived unit's policies are "generally a
        restriction of the policies of the base data units" (§2.1).
        """
        lo = max(self.t_begin, t_begin)
        hi = min(self.t_final, t_final)
        if lo > hi:
            return None
        return Policy(self.purpose, self.entity, lo, hi)

    def __str__(self) -> str:
        return (
            f"⟨{self.purpose}, {self.entity.name}, "
            f"{self.t_begin}, {self.t_final}⟩"
        )


class PolicySet:
    """The policy aspect ``P`` of a data unit.

    Mutable (consent is granted and withdrawn over time), but exposes
    immutable snapshots via :meth:`active_at` so that state captures
    (``X(t)``) do not alias live structure.
    """

    def __init__(self, policies: Iterable[Policy] = ()) -> None:
        self._policies: List[Policy] = list(policies)

    # -------------------------------------------------------------- mutation
    def add(self, policy: Policy) -> None:
        self._policies.append(policy)

    def withdraw(self, policy: Policy, at: int) -> bool:
        """Withdraw ``policy`` effective at time ``at``.

        Models consent withdrawal: the policy's final time is clipped to
        ``at - 1`` (it never authorizes actions at or after ``at``).  Returns
        False if the policy was not present.
        """
        for i, existing in enumerate(self._policies):
            if existing == policy:
                if at <= existing.t_begin:
                    del self._policies[i]
                else:
                    self._policies[i] = Policy(
                        existing.purpose, existing.entity, existing.t_begin, at - 1
                    )
                return True
        return False

    def remove_all(self) -> int:
        """Drop every policy (used by erasure of the metadata aspect)."""
        n = len(self._policies)
        self._policies.clear()
        return n

    # --------------------------------------------------------------- queries
    def active_at(self, t: int) -> FrozenSet[Policy]:
        """``P(t)`` — the policies in force at model time ``t``."""
        return frozenset(p for p in self._policies if p.active_at(t))

    def authorizing(self, purpose: str, entity: Entity, t: int) -> Optional[Policy]:
        """Some policy authorizing the access, or None."""
        for policy in self._policies:
            if policy.authorizes(purpose, entity, t):
                return policy
        return None

    def purposes(self) -> Set[str]:
        return {p.purpose for p in self._policies}

    def entities(self) -> Set[Entity]:
        return {p.entity for p in self._policies}

    def latest_expiry(self) -> Optional[int]:
        """The largest ``t_final`` over all policies, or None if empty."""
        if not self._policies:
            return None
        return max(p.t_final for p in self._policies)

    def erasure_deadline(self) -> Optional[int]:
        """The ``t_final`` of the compliance-erase policy, if any (G17)."""
        deadlines = [
            p.t_final
            for p in self._policies
            if p.purpose == Purpose.COMPLIANCE_ERASE
        ]
        return min(deadlines) if deadlines else None

    def restricted_to(self, t_begin: int, t_final: int) -> "PolicySet":
        """Clip every policy to the window; drop the ones that vanish."""
        clipped = (p.restricted_to(t_begin, t_final) for p in self._policies)
        return PolicySet(p for p in clipped if p is not None)

    def intersect(self, other: "PolicySet") -> "PolicySet":
        """Policies common (after window intersection) to both sets.

        This is the conservative combination rule for derived data from
        multiple base units: an access to the derivation is only authorized
        when *every* contributing unit authorized it.
        """
        result: List[Policy] = []
        for mine in self._policies:
            for theirs in other._policies:
                if mine.purpose == theirs.purpose and mine.entity == theirs.entity:
                    joint = mine.restricted_to(theirs.t_begin, theirs.t_final)
                    if joint is not None:
                        result.append(joint)
        return PolicySet(result)

    # ------------------------------------------------------------- protocol
    def __iter__(self) -> Iterator[Policy]:
        return iter(self._policies)

    def __len__(self) -> int:
        return len(self._policies)

    def __contains__(self, policy: Policy) -> bool:
        return policy in self._policies

    def copy(self) -> "PolicySet":
        return PolicySet(self._policies)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PolicySet({self._policies!r})"
