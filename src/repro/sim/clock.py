"""Simulated clock.

The clock advances only when a component charges a cost to it.  Model time is
kept in integer microseconds so that arithmetic is exact and ordering of
events is total.  Components never read wall-clock time; they call
:meth:`SimClock.charge` with a cost expressed in microseconds (usually
computed by a :class:`~repro.sim.costs.CostModel`).

The clock also keeps a per-category ledger so experiments can decompose
completion time into storage / policy / crypto / logging components — used by
the ablation benches and by tests asserting *why* a profile is slower.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, Optional


MICROS_PER_SECOND = 1_000_000
MICROS_PER_MINUTE = 60 * MICROS_PER_SECOND


class SimClock:
    """A deterministic, monotonically non-decreasing simulated clock.

    Parameters
    ----------
    start:
        Initial model time in microseconds since the simulation epoch.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before the epoch")
        self._now = int(start)
        self._accum = float(start)
        self._ledger: Counter = Counter()

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current model time in microseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current model time in seconds."""
        return self._now / MICROS_PER_SECOND

    @property
    def now_minutes(self) -> float:
        """Current model time in minutes."""
        return self._now / MICROS_PER_MINUTE

    def charge(self, micros: float, category: str = "other") -> int:
        """Advance the clock by ``micros`` and attribute it to ``category``.

        Fractional microsecond costs are accumulated exactly in the ledger and
        rounded only in the clock position, keeping totals faithful while the
        timeline stays integral.

        Returns the new model time.
        """
        if micros < 0:
            raise ValueError(f"cannot charge a negative cost: {micros}")
        self._ledger[category] += micros
        self._accum += micros
        self._now = int(self._accum)
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Move the clock forward to ``timestamp`` (idle time).

        Idle time is attributed to the ``"idle"`` ledger category.  Moving
        backwards is an error: simulated time is monotone.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._ledger["idle"] += timestamp - self._now
        self._accum += timestamp - self._now
        self._now = timestamp
        return self._now

    # ---------------------------------------------------------------- ledger
    def ledger(self) -> Dict[str, float]:
        """A copy of the per-category cost ledger (microseconds)."""
        return dict(self._ledger)

    def spent(self, category: str) -> float:
        """Microseconds attributed to ``category`` so far."""
        return float(self._ledger.get(category, 0.0))

    def categories(self) -> Iterator[str]:
        return iter(sorted(self._ledger))

    # ------------------------------------------------------------- intervals
    def stopwatch(self) -> "Stopwatch":
        """A stopwatch anchored at the current model time."""
        return Stopwatch(self)

    def reset(self, start: int = 0) -> None:
        """Reset time and ledger.  Intended for experiment harness reuse."""
        if start < 0:
            raise ValueError("clock cannot start before the epoch")
        self._now = int(start)
        self._accum = float(start)
        self._ledger = Counter()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now}us)"


class Stopwatch:
    """Measures elapsed simulated time between its creation and :meth:`stop`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now
        self._stopped: Optional[int] = None

    @property
    def start(self) -> int:
        return self._start

    def stop(self) -> int:
        """Freeze and return the elapsed microseconds."""
        if self._stopped is None:
            self._stopped = self._clock.now
        return self._stopped - self._start

    @property
    def elapsed(self) -> int:
        """Elapsed microseconds (live if not stopped)."""
        end = self._stopped if self._stopped is not None else self._clock.now
        return end - self._start

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed / MICROS_PER_SECOND

    @property
    def elapsed_minutes(self) -> float:
        return self.elapsed / MICROS_PER_MINUTE
