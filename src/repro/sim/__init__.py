"""Deterministic simulation substrate.

Every timing result in the reproduction comes from :class:`~repro.sim.clock.SimClock`
driven by a :class:`~repro.sim.costs.CostModel`, never from wall-clock time.
This makes experiment outputs bit-for-bit reproducible across machines: the
paper's figures depend on *structural* costs (dead-tuple bloat, policy checks,
encryption bytes, log appends), all of which are charged explicitly.
"""

from repro.sim.clock import SimClock
from repro.sim.costs import CostBook, CostModel

__all__ = ["SimClock", "CostModel", "CostBook"]
