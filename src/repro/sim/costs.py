"""Cost model for the simulated substrate.

The paper's completion-time figures are driven by a handful of structural
costs: random page I/O, sequential scan throughput, index probes, per-policy
evaluation, log appends, per-byte encryption, and vacuum work.  The
:class:`CostBook` makes each of those an explicit, documented constant
(microseconds), and :class:`CostModel` converts engine events into charges on
a :class:`~repro.sim.clock.SimClock`.

Defaults are calibrated so that the paper-scale runs (100k records / 10k
transactions) land in the same order of magnitude the paper reports —
minutes per workload for Figure 4(b), hundreds to thousands of seconds for
Figure 4(a) — while the *shape* (orderings, crossovers, growth slopes) is a
structural consequence of the engine mechanics, not of these constants.
Tests in ``tests/integration`` assert the shapes stay correct under cost-book
perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.sim.clock import SimClock


@dataclass(frozen=True)
class CostBook:
    """All elementary costs, in microseconds unless noted.

    The calibration anchors (comments) refer to the virtualized SATA-era
    setup the paper used (Oracle VirtualBox, 16 GB RAM, consumer SSD/disk).
    """

    # ----------------------------------------------------------- storage I/O
    page_read: float = 7_500.0        # buffered random page read via VM I/O stack
    page_write: float = 12_000.0      # dirty page write-back
    seq_page_read: float = 2_700.0    # sequential scan enjoys readahead
    fsync: float = 24_000.0           # WAL flush / commit
    tuple_cpu: float = 6.0            # per-tuple CPU (copy, compare)
    index_probe_level: float = 360.0  # per B-tree level descended
    index_insert: float = 780.0       # leaf insert incl. page dirtying share
    index_delete: float = 660.0       # leaf tombstone / removal

    # -------------------------------------------------------------- vacuuming
    vacuum_per_dead_tuple: float = 270.0    # scan + prune + index cleanup share
    vacuum_full_per_tuple: float = 2_000.0  # full rewrite: read+write+reindex share
    vacuum_trigger_overhead: float = 150_000.0  # process startup / lock acquisition
    vacuum_full_lock_overhead: float = 1_200_000.0  # exclusive lock + table swap

    # ------------------------------------------------------------------- LSM
    memtable_op: float = 75.0          # skiplist-ish insert/lookup
    sstable_probe: float = 4_200.0     # bloom pass -> run probe (index + block read)
    compaction_per_entry: float = 90.0  # merge cost per entry rewritten

    # ------------------------------------------------------- policy checking
    rbac_check: float = 6.0             # role bit test
    policy_table_join: float = 8_500.0  # P_GBench: joined probe of the policy
    #                                     table — an extra I/O per query
    fgac_policy_eval: float = 85.0      # evaluate one fine-grained policy predicate
    fgac_udf_overhead: float = 9_000.0  # per-row UDF invocation (Sieve on PSQL)
    sieve_index_lookup: float = 7_500.0  # guarded-expression index descent (I/O)
    policy_insert: float = 130.0        # register a policy row
    sieve_guard_insert: float = 350.0   # maintain guard + index on policy insert

    # ---------------------------------------------------------------- logging
    log_append: float = 70.0            # append one binary action record
    csv_log_row: float = 140.0          # PSQL csvlog row (format + write share)
    query_response_log: float = 420.0   # log full query + response payload
    policy_decision_log: float = 180.0  # record one allow/deny decision
    log_purge_per_record: float = 60.0  # find + rewrite log segment share

    # ----------------------------------------------------------- cryptography
    aes128_per_byte: float = 0.011
    aes256_per_byte: float = 0.016
    luks_per_byte: float = 0.013      # dm-crypt style per-sector XTS/SHA-256
    luks_sector_overhead: float = 2.0  # per 512-byte sector setup
    key_schedule: float = 40.0         # cipher context setup per object

    # ------------------------------------------------------------ sanitization
    sanitize_per_page: float = 60_000.0  # multi-pass overwrite of a freed page

    def scaled(self, factor: float) -> "CostBook":
        """A uniformly scaled copy — used by robustness tests."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        values = {
            name: getattr(self, name) * factor
            for name in self.__dataclass_fields__
        }
        return CostBook(**values)

    def replace(self, **overrides: float) -> "CostBook":
        """A copy with selected constants overridden."""
        return replace(self, **overrides)


@dataclass
class CostModel:
    """Charges engine events to a simulated clock.

    One :class:`CostModel` is shared by all components of a system under
    test; the ledger categories let experiments decompose completion time.
    """

    clock: SimClock
    book: CostBook = field(default_factory=CostBook)

    # ----------------------------------------------------------- storage I/O
    def charge_page_read(self, pages: int = 1) -> None:
        self.clock.charge(pages * self.book.page_read, "storage")

    def charge_page_write(self, pages: int = 1) -> None:
        self.clock.charge(pages * self.book.page_write, "storage")

    def charge_seq_scan(self, pages: int) -> None:
        self.clock.charge(pages * self.book.seq_page_read, "storage")

    def charge_fsync(self) -> None:
        self.clock.charge(self.book.fsync, "storage")

    def charge_tuple_cpu(self, tuples: int = 1) -> None:
        self.clock.charge(tuples * self.book.tuple_cpu, "storage")

    def charge_index_probe(self, levels: int) -> None:
        self.clock.charge(levels * self.book.index_probe_level, "storage")

    def charge_index_insert(self) -> None:
        self.clock.charge(self.book.index_insert, "storage")

    def charge_index_delete(self) -> None:
        self.clock.charge(self.book.index_delete, "storage")

    # -------------------------------------------------------------- vacuuming
    def charge_vacuum(self, dead_tuples: int) -> None:
        self.clock.charge(
            self.book.vacuum_trigger_overhead
            + dead_tuples * self.book.vacuum_per_dead_tuple,
            "vacuum",
        )

    def charge_vacuum_full(self, live_tuples: int) -> None:
        self.clock.charge(
            self.book.vacuum_full_lock_overhead
            + live_tuples * self.book.vacuum_full_per_tuple,
            "vacuum",
        )

    # ------------------------------------------------------------------- LSM
    def charge_memtable_op(self) -> None:
        self.clock.charge(self.book.memtable_op, "storage")

    def charge_sstable_probe(self, runs: int = 1) -> None:
        self.clock.charge(runs * self.book.sstable_probe, "storage")

    def charge_compaction(self, entries: int) -> None:
        self.clock.charge(entries * self.book.compaction_per_entry, "vacuum")

    # ------------------------------------------------------- policy checking
    def charge_rbac_check(self) -> None:
        self.clock.charge(self.book.rbac_check, "policy")

    def charge_policy_table_join(self, probes: int = 1) -> None:
        self.clock.charge(probes * self.book.policy_table_join, "policy")

    def charge_fgac_eval(self, policies: int) -> None:
        self.clock.charge(policies * self.book.fgac_policy_eval, "policy")

    def charge_sieve_lookup(self) -> None:
        self.clock.charge(self.book.sieve_index_lookup, "policy")

    def charge_fgac_udf(self) -> None:
        """Per-row UDF invocation overhead of FGAC-on-PSQL (Sieve, §4.2)."""
        self.clock.charge(self.book.fgac_udf_overhead, "policy")

    def charge_policy_insert(self) -> None:
        self.clock.charge(self.book.policy_insert, "policy")

    def charge_sieve_guard_insert(self) -> None:
        self.clock.charge(self.book.sieve_guard_insert, "policy")

    # ---------------------------------------------------------------- logging
    def charge_log_append(self, records: int = 1) -> None:
        self.clock.charge(records * self.book.log_append, "logging")

    def charge_csv_log_row(self, rows: int = 1) -> None:
        self.clock.charge(rows * self.book.csv_log_row, "logging")

    def charge_query_response_log(self) -> None:
        self.clock.charge(self.book.query_response_log, "logging")

    def charge_policy_decision_log(self) -> None:
        self.clock.charge(self.book.policy_decision_log, "logging")

    def charge_log_purge(self, records: int) -> None:
        self.clock.charge(records * self.book.log_purge_per_record, "logging")

    # ----------------------------------------------------------- cryptography
    def charge_aes128(self, nbytes: int) -> None:
        self.clock.charge(
            self.book.key_schedule + nbytes * self.book.aes128_per_byte, "crypto"
        )

    def charge_aes256(self, nbytes: int) -> None:
        self.clock.charge(
            self.book.key_schedule + nbytes * self.book.aes256_per_byte, "crypto"
        )

    def charge_luks(self, nbytes: int) -> None:
        sectors = max(1, (nbytes + 511) // 512)
        self.clock.charge(
            sectors * self.book.luks_sector_overhead
            + nbytes * self.book.luks_per_byte,
            "crypto",
        )

    # ------------------------------------------------------------ sanitization
    def charge_sanitize(self, pages: int) -> None:
        self.clock.charge(pages * self.book.sanitize_per_page, "sanitize")

    # ----------------------------------------------------------------- ledger
    def breakdown_seconds(self) -> Dict[str, float]:
        """Completion-time decomposition in seconds, by ledger category."""
        return {k: v / 1e6 for k, v in self.clock.ledger().items()}
