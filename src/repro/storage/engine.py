"""The relational engine — the reproduction's "PSQL".

Semantics follow PostgreSQL where the paper's evaluation depends on them:

* ``INSERT`` appends to the heap and the B-tree primary-key index;
* ``UPDATE`` is out-of-place (new version + dead old version — MVCC), so
  updates create bloat just like deletes;
* ``DELETE`` only marks tuples and index entries dead;
* ``VACUUM`` prunes dead tuples and index entries; space becomes reusable,
  the file does not shrink;
* ``VACUUM FULL`` rewrites the heap compactly and rebuilds the index under
  an exclusive lock;
* the retrofit system-action "add new attribute" (Table 1) is
  :meth:`RelationalEngine.set_flag` — the reversible-inaccessibility flag.

Cost charging: reads pay an explicit *bloat factor* — dead tuples reduce
heap density and buffer-pool efficiency, so the marginal page-fetch cost is
charged as ``page_read × (1 + bloat_factor × dead_fraction)``.  This is the
single structural knob behind the paper's Figure-4(a) observation that
DELETE+VACUUM beats DELETE alone on a read-heavy mix: VACUUM pays per-dead-
tuple costs on 20% of operations to keep the other 80% at density ~1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import codec
from repro.core.locations import CopyLocation
from repro.sim.costs import CostModel
from repro.storage.catalog import Catalog, Table, TableSchema
from repro.storage.errors import (
    DuplicateKeyError,
    StorageError,
    TupleNotFoundError,
)
from repro.storage.page import PAGE_SIZE
from repro.storage.wal import WalRecordType, WriteAheadLog


@dataclass(frozen=True)
class TableStats:
    """Physical statistics for one table."""

    name: str
    live_tuples: int
    dead_tuples: int
    pages: int
    heap_bytes: int
    index_bytes: int
    index_dead_entries: int
    dead_fraction: float

    @property
    def total_bytes(self) -> int:
        return self.heap_bytes + self.index_bytes


class FlaggedPayload:
    """Wrapper marking a row's reversible-inaccessibility flag.

    A distinct type (not a dict) so user payloads can never be mistaken for
    flag state; reads unwrap it transparently.
    """

    __slots__ = ("flagged", "value")

    def __init__(self, flagged: bool, value: Any) -> None:
        self.flagged = flagged
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlaggedPayload(flagged={self.flagged})"


# Storage encodes values through repro.codec; the wrapper registers a
# compact extension encoding (flag + inner value) so a flagged value costs
# two extra bytes instead of a pickle round-trip, and the flag state rides
# inside the blob through flushes, compactions, and encoded migrations.
codec.register_extension(
    FlaggedPayload,
    lambda fp: codec.encode((fp.flagged, fp.value)),
    lambda payload: FlaggedPayload(*codec.decode(payload)),
)


class EngineCipher:
    """Interface for at-rest encryption hooks (see :mod:`repro.crypto`).

    ``seal``/``open_`` transform a payload and charge the appropriate
    cost — implementations range from real AES to cost-only accounting.
    """

    #: bytes of ciphertext expansion per sealed payload (IV/tag overhead).
    overhead_bytes: int = 0

    def seal(self, payload: Any, nbytes: int) -> Any:  # pragma: no cover
        raise NotImplementedError

    def open_(self, payload: Any, nbytes: int) -> Any:  # pragma: no cover
        raise NotImplementedError


class RelationalEngine:
    """A single-node relational engine with PostgreSQL-like vacuuming.

    Parameters
    ----------
    cost:
        The shared cost model; every operation charges it.
    cipher:
        Optional at-rest encryption hook applied to row payloads.
    bloat_factor:
        Weight of the dead-tuple density penalty on reads (see module doc).
    autovacuum_threshold:
        If set, a table is vacuumed automatically once its dead-tuple count
        exceeds the threshold (the ablation benches sweep this; the paper's
        erasure study drives vacuums explicitly instead).
    """

    def __init__(
        self,
        cost: CostModel,
        cipher: Optional[EngineCipher] = None,
        bloat_factor: float = 1.0,
        autovacuum_threshold: Optional[int] = None,
        wal_group_size: int = 64,
        wal_checkpoint_every: Optional[int] = None,
    ) -> None:
        if bloat_factor < 0:
            raise ValueError("bloat_factor must be non-negative")
        if autovacuum_threshold is not None and autovacuum_threshold <= 0:
            raise ValueError("autovacuum_threshold must be positive")
        self._cost = cost
        self._cipher = cipher
        self._bloat_factor = bloat_factor
        self._autovacuum_threshold = autovacuum_threshold
        self._catalog = Catalog()
        self.wal = WriteAheadLog(
            cost, group_size=wal_group_size, checkpoint_every=wal_checkpoint_every
        )
        self.vacuum_count = 0
        self.vacuum_full_count = 0
        # Deleted keys whose WAL row images await scrubbing: the grounded
        # erase pairs DELETE with a reclamation pass, and that pass must
        # also make the *log* copy unrecoverable (WAL retention hazard).
        self._wal_scrub_pending: Dict[str, set] = {}

    # ----------------------------------------------------------------- DDL
    def create_table(
        self, name: str, row_bytes: int, flag_column: bool = False
    ) -> TableSchema:
        schema = TableSchema(name, row_bytes, flag_column)
        self._catalog.create(schema)
        return schema

    def drop_table(self, name: str) -> None:
        self._catalog.drop(name)

    def has_table(self, name: str) -> bool:
        return name in self._catalog

    def tables(self) -> List[str]:
        return [t.name for t in self._catalog]

    # ----------------------------------------------------------------- DML
    def insert(
        self,
        table: str,
        key: Any,
        payload: Any,
        payload_size: Optional[int] = None,
        check_duplicate: bool = True,
    ) -> None:
        """INSERT: heap append + index insert + WAL.

        ``check_duplicate=False`` is the bulk-load path (COPY-style): the
        caller guarantees fresh keys, so the engine skips the uniqueness
        probe — matching how the benchmarks load their datasets.
        """
        t = self._catalog.get(table)
        size = self._row_size(t, payload_size)
        self._insert_row(t, table, key, payload, size, check_duplicate)

    def insert_many(
        self,
        table: str,
        items: Iterable[Tuple[Any, Any]],
        payload_size: Optional[int] = None,
        check_duplicate: bool = False,
    ) -> int:
        """Bulk INSERT: one catalog/schema resolution for the whole batch.

        Per-row cost charging is identical to :meth:`insert`; only the
        Python-level per-call overhead (catalog lookup, size computation)
        is amortized.  Defaults to the COPY-style no-duplicate-probe path.
        """
        t = self._catalog.get(table)
        size = self._row_size(t, payload_size)
        count = 0
        for key, payload in items:
            self._insert_row(t, table, key, payload, size, check_duplicate)
            count += 1
        return count

    def _insert_row(
        self,
        t: Table,
        table: str,
        key: Any,
        payload: Any,
        size: int,
        check_duplicate: bool,
    ) -> None:
        """One heap append + index insert + WAL record, fully charged."""
        if check_duplicate:
            probe = t.index.probe(key)
            self._cost.charge_index_probe(probe.depth)
            if probe.found:
                raise DuplicateKeyError(f"{table}: key {key!r} already exists")
        # A re-insert after deletion makes the key live again: its WAL
        # images are ordinary superseded versions now, not erased data —
        # the next reclamation must not redact a live row's log copy.
        pending = self._wal_scrub_pending.get(table)
        if pending is not None:
            pending.discard(key)
        stored = self._seal(payload, size)
        tid = t.heap.insert(key, stored, size)
        t.index.insert(key, tid)
        self._cost.charge_index_insert()
        self._cost.charge_tuple_cpu()
        self._charge_heap_write(size)
        self.wal.append(WalRecordType.INSERT, table, key, size, payload=stored)

    def read(self, table: str, key: Any) -> Any:
        """Point SELECT by primary key.

        Charges the index descent, dead-entry steps, the density-degraded
        heap fetch, and decryption if the table is sealed.
        """
        t = self._catalog.get(table)
        return self._read_row(t, table, key)

    def read_many(self, table: str, keys: Sequence[Any]) -> List[Any]:
        """Batch point SELECTs: catalog resolution amortized, per-key index
        descent and heap fetch charged exactly as :meth:`read`."""
        t = self._catalog.get(table)
        return [self._read_row(t, table, key) for key in keys]

    def _read_row(self, t: Table, table: str, key: Any) -> Any:
        """One fully-charged point read: probe, fetch, unwrap, decrypt."""
        probe = t.index.probe(key)
        self._cost.charge_index_probe(probe.depth)
        if probe.dead_stepped:
            self._cost.charge_tuple_cpu(probe.dead_stepped)
        if not probe.found:
            raise TupleNotFoundError(f"{table}: no live tuple for key {key!r}")
        self._charge_heap_read(t)
        slot = t.heap.fetch(probe.tid)
        self._cost.charge_tuple_cpu()
        payload = slot.payload
        if isinstance(payload, FlaggedPayload):
            payload = payload.value
        return self._open(payload, slot.payload_size)

    def update(
        self, table: str, key: Any, payload: Any, payload_size: Optional[int] = None
    ) -> None:
        """UPDATE: MVCC out-of-place — dead old version + new version."""
        t = self._catalog.get(table)
        size = self._row_size(t, payload_size)
        probe = t.index.probe(key)
        self._cost.charge_index_probe(probe.depth)
        if not probe.found:
            raise TupleNotFoundError(f"{table}: no live tuple for key {key!r}")
        t.heap.mark_dead(probe.tid)
        t.index.mark_dead(key)
        self._cost.charge_index_delete()
        stored = self._seal(payload, size)
        tid = t.heap.insert(key, stored, size)
        t.index.insert(key, tid)
        self._cost.charge_index_insert()
        self._cost.charge_tuple_cpu()
        self._charge_heap_write(size)
        self.wal.append(WalRecordType.UPDATE, table, key, size, payload=stored)
        self._maybe_autovacuum(table)

    def delete(self, table: str, key: Any) -> None:
        """DELETE: mark the tuple and its index entry dead.  No space moves."""
        t = self._catalog.get(table)
        probe = t.index.probe(key)
        self._cost.charge_index_probe(probe.depth)
        if not probe.found:
            raise TupleNotFoundError(f"{table}: no live tuple for key {key!r}")
        t.heap.mark_dead(probe.tid)
        t.index.mark_dead(key)
        self._cost.charge_index_delete()
        self._cost.charge_tuple_cpu()
        # Hint-bit style page dirtying: a fraction of a page write.
        self._charge_heap_write(0)
        self.wal.append(WalRecordType.DELETE, table, key)
        self._wal_scrub_pending.setdefault(table, set()).add(key)
        self._maybe_autovacuum(table)

    def set_flag(self, table: str, key: Any, flagged: bool) -> None:
        """The "add new attribute" system-action: flip the visibility flag.

        In-place overwrite — the data stays physically present (that is the
        point: reversible inaccessibility is invertible, Table 1 row 1).
        """
        t = self._catalog.get(table)
        if not t.schema.flag_column:
            raise StorageError(
                f"table {table!r} was not created with flag_column=True; "
                "retrofit required (paper §1: systems may need retrofitting "
                "to support a grounding)"
            )
        probe = t.index.probe(key)
        self._cost.charge_index_probe(probe.depth)
        if not probe.found:
            raise TupleNotFoundError(f"{table}: no live tuple for key {key!r}")
        slot = t.heap.fetch(probe.tid)
        if isinstance(slot.payload, FlaggedPayload):
            slot.payload.flagged = flagged
        else:
            t.heap.overwrite(probe.tid, FlaggedPayload(flagged, slot.payload))
        self._cost.charge_tuple_cpu()
        self._charge_heap_write(1)
        self.wal.append(WalRecordType.FLAG, table, key)

    def is_flagged(self, table: str, key: Any) -> bool:
        """Whether the row is currently flagged inaccessible."""
        t = self._catalog.get(table)
        probe = t.index.probe(key)
        if not probe.found:
            raise TupleNotFoundError(f"{table}: no live tuple for key {key!r}")
        payload = t.heap.fetch(probe.tid).payload
        return isinstance(payload, FlaggedPayload) and payload.flagged

    def exists(self, table: str, key: Any) -> bool:
        return self._catalog.get(table).index.probe(key).found

    # ---------------------------------------------------------------- scans
    def seq_scan(
        self, table: str, predicate: Optional[Callable[[Any, Any], bool]] = None
    ) -> List[Tuple[Any, Any]]:
        """Full sequential scan over live tuples (pays every page, bloat
        included — a bloated relation is slower to scan)."""
        t = self._catalog.get(table)
        self._cost.charge_seq_scan(max(1, t.heap.page_count))
        out: List[Tuple[Any, Any]] = []
        for _tid, slot in t.heap.scan():
            self._cost.charge_tuple_cpu()
            value = self._open(slot.payload, slot.payload_size)
            if predicate is None or predicate(slot.key, value):
                out.append((slot.key, value))
        return out

    def range_scan(self, table: str, lo: Any, hi: Any) -> List[Tuple[Any, Any]]:
        """Index range scan: live keys in [lo, hi]."""
        t = self._catalog.get(table)
        self._cost.charge_index_probe(t.index.depth)
        out: List[Tuple[Any, Any]] = []
        for key, tid in t.index.range(lo, hi):
            self._charge_heap_read(t)
            slot = t.heap.fetch(tid)
            out.append((key, self._open(slot.payload, slot.payload_size)))
        return out

    def forensic_scan(self, table: str) -> List[Tuple[Any, bool]]:
        """What a disk inspection would see: every tuple, dead included.

        Returns ``(key, live)`` pairs.  This is the primitive behind the
        illegal-retention analysis — physically retained dead tuples are
        visible here until VACUUM runs.
        """
        t = self._catalog.get(table)
        self._cost.charge_seq_scan(max(1, t.heap.page_count))
        return [(slot.key, slot.live) for _tid, slot in t.heap.scan_all()]

    # --------------------------------------------------------------- vacuums
    def vacuum(self, table: str) -> int:
        """VACUUM: prune dead tuples + dead index entries.

        Reclamation is the second half of the grounded "delete", so it also
        scrubs the WAL row images of every key deleted since the last pass —
        otherwise the log would keep the erased values recoverable.
        """
        t = self._catalog.get(table)
        dead = t.heap.dead_tuples
        self._cost.charge_vacuum(dead)
        reclaimed = t.heap.vacuum()
        t.index.cleanup()
        self._scrub_deleted_wal(table)
        self.wal.append(WalRecordType.VACUUM, table)
        self.wal.flush()
        self.vacuum_count += 1
        return reclaimed

    def vacuum_full(self, table: str) -> int:
        """VACUUM FULL: exclusive-lock rewrite + index rebuild."""
        t = self._catalog.get(table)
        live = t.heap.live_tuples
        dead = t.heap.dead_tuples
        self._cost.charge_vacuum_full(live + dead)
        mapping = t.heap.rewrite()
        items = sorted((key, tid) for key, (tid, _slot) in mapping.items())
        t.index.rebuild(items)
        self._scrub_deleted_wal(table)
        self.wal.append(WalRecordType.VACUUM_FULL, table)
        self.wal.flush()
        self.vacuum_full_count += 1
        return dead

    def _scrub_deleted_wal(self, table: str) -> int:
        """Redact WAL row images of keys deleted since the last reclamation."""
        pending = self._wal_scrub_pending.pop(table, None)
        if not pending:
            return 0
        scrubbed = 0
        for key in pending:
            scrubbed += self.wal.scrub_key(table, key)
        return scrubbed

    def wal_holds_value(self, table: str, key: Any) -> bool:
        """Whether the WAL still retains a recoverable row image of the key."""
        return self.wal.holds_payload_for(table, key)

    def wal_copy_sites(self, table: str, key: Any) -> List[Tuple[CopyLocation, str]]:
        """The key's WAL row-image copy sites, typed: ``[]`` or one
        ``(CopyLocation.WAL, "wal/<table>")`` entry.  INSERT/UPDATE records
        carry the row image (that is what makes them replayable), so until
        the reclaim-time scrub redacts them the log segment is a first-class
        copy location — the same unification the block cache got via
        ``CopyLocation.CACHE`` sites."""
        if self.wal.holds_payload_for(table, key):
            return [(CopyLocation.WAL, self.wal.site_name(table))]
        return []

    def _maybe_autovacuum(self, table: str) -> None:
        if self._autovacuum_threshold is None:
            return
        t = self._catalog.get(table)
        if t.heap.dead_tuples >= self._autovacuum_threshold:
            self.vacuum(table)

    # ------------------------------------------------------------ statistics
    def stats(self, table: str) -> TableStats:
        t = self._catalog.get(table)
        return TableStats(
            name=table,
            live_tuples=t.heap.live_tuples,
            dead_tuples=t.heap.dead_tuples,
            pages=t.heap.page_count,
            heap_bytes=t.heap.total_bytes,
            index_bytes=t.index.size_bytes,
            index_dead_entries=t.index.dead_entries,
            dead_fraction=t.heap.dead_fraction,
        )

    def total_bytes(self) -> int:
        """Heap + index bytes across tables, plus the WAL."""
        total = self.wal.size_bytes
        for t in self._catalog:
            total += t.heap.total_bytes + t.index.size_bytes
        return total

    # -------------------------------------------------------------- internals
    def _row_size(self, t: Table, override: Optional[int]) -> int:
        size = override if override is not None else t.schema.effective_row_bytes
        if self._cipher is not None:
            size += self._cipher.overhead_bytes
        return size

    def _seal(self, payload: Any, nbytes: int) -> Any:
        if self._cipher is None:
            return payload
        return self._cipher.seal(payload, nbytes)

    def _open(self, payload: Any, nbytes: int) -> Any:
        if self._cipher is None:
            return payload
        return self._cipher.open_(payload, nbytes)

    def _charge_heap_read(self, t: Table) -> None:
        penalty = 1.0 + self._bloat_factor * t.heap.dead_fraction
        self._cost.charge_page_read(penalty)  # type: ignore[arg-type]

    def _charge_heap_write(self, nbytes: int) -> None:
        # Dirty-page write-back amortized over the tuples sharing the page;
        # a zero-byte write (delete hint bits) still dirties ~1/32 page.
        fraction = max(nbytes / PAGE_SIZE, 1 / 32)
        self._cost.charge_page_write(fraction)  # type: ignore[arg-type]
