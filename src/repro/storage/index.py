"""B-tree index.

A from-scratch B+-tree: internal nodes route by separator keys; leaves hold
``key → TID`` entries and are chained for range scans.  Deletion is lazy,
matching PostgreSQL: ``mark_dead`` leaves the entry in the leaf (index
bloat!) and only :meth:`cleanup` — invoked by VACUUM — physically removes
dead entries (by bulk-rebuilding the leaf level, which is also how the
engine implements the index rebuild after VACUUM FULL).

``probe`` returns the traversal depth and the number of dead entries the
search had to step over, so the engine can charge honest costs.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.storage.heap import TID

#: Max entries per leaf / children per internal node.
ORDER = 64

#: Approximate bytes per leaf entry (key + tid + flags), for space accounting.
ENTRY_BYTES = 24

#: Approximate bytes of per-node overhead.
NODE_OVERHEAD = 48

#: Bulk-load input: sorted (key, tid) pairs.
BulkItems = Optional[List[Tuple[Any, TID]]]


@dataclass
class _Entry:
    key: Any
    tid: TID
    live: bool = True


class _Leaf:
    __slots__ = ("keys", "entries", "next")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.entries: List[_Entry] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self, keys: List[Any], children: List[Any]) -> None:
        self.keys = keys          # len(children) - 1 separators
        self.children = children


@dataclass(frozen=True)
class ProbeResult:
    """What a point lookup observed — input to cost charging."""

    tid: Optional[TID]
    depth: int
    dead_stepped: int

    @property
    def found(self) -> bool:
        return self.tid is not None


class BTreeIndex:
    """A unique-key B+-tree with lazy deletion."""

    def __init__(self, name: str = "idx") -> None:
        self.name = name
        self._root: Any = _Leaf()
        self._height = 1
        self._live = 0
        self._dead = 0

    # ------------------------------------------------------------ statistics
    @property
    def depth(self) -> int:
        return self._height

    @property
    def live_entries(self) -> int:
        return self._live

    @property
    def dead_entries(self) -> int:
        return self._dead

    @property
    def size_bytes(self) -> int:
        entries = self._live + self._dead
        nodes = max(1, entries // (ORDER // 2))
        return entries * ENTRY_BYTES + nodes * NODE_OVERHEAD

    def __len__(self) -> int:
        return self._live

    # -------------------------------------------------------------- internals
    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            i = bisect_right(node.keys, key)
            node = node.children[i]
        return node

    def _find_leaf_path(self, key: Any) -> Tuple[_Leaf, List[Tuple[_Internal, int]]]:
        node = self._root
        path: List[Tuple[_Internal, int]] = []
        while isinstance(node, _Internal):
            i = bisect_right(node.keys, key)
            path.append((node, i))
            node = node.children[i]
        return node, path

    def _split_leaf(self, leaf: _Leaf) -> Tuple[Any, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.entries = leaf.entries[mid:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.entries = leaf.entries[:mid]
        leaf.next = right
        return right.keys[0], right

    # --------------------------------------------------------------- mutation
    def insert(self, key: Any, tid: TID) -> None:
        """Insert a new live entry.  The engine enforces key uniqueness among
        live entries; a dead entry with the same key may coexist (a deleted
        row whose index entry has not been vacuumed yet)."""
        leaf, path = self._find_leaf_path(key)
        i = bisect_left(leaf.keys, key)
        # Reuse a dead entry slot for the same key if present.
        j = i
        while j < len(leaf.keys) and leaf.keys[j] == key:
            if leaf.entries[j].live:
                raise KeyError(f"duplicate live key in index: {key!r}")
            j += 1
        leaf.keys.insert(i, key)
        leaf.entries.insert(i, _Entry(key, tid))
        self._live += 1
        if len(leaf.keys) <= ORDER:
            return
        # Split upward.
        sep, right = self._split_leaf(leaf)
        new_child: Any = right
        for node, child_i in reversed(path):
            node.keys.insert(child_i, sep)
            node.children.insert(child_i + 1, new_child)
            if len(node.children) <= ORDER:
                return
            mid = len(node.keys) // 2
            sep_up = node.keys[mid]
            right_node = _Internal(node.keys[mid + 1:], node.children[mid + 1:])
            node.keys = node.keys[:mid]
            node.children = node.children[:mid + 1]
            sep, new_child = sep_up, right_node
        self._root = _Internal([sep], [self._root, new_child])
        self._height += 1

    def mark_dead(self, key: Any) -> bool:
        """Lazily delete the live entry for ``key`` (stays until cleanup)."""
        leaf = self._find_leaf(key)
        i = bisect_left(leaf.keys, key)
        while i < len(leaf.keys) and leaf.keys[i] == key:
            if leaf.entries[i].live:
                leaf.entries[i].live = False
                self._live -= 1
                self._dead += 1
                return True
            i += 1
        return False

    def update_tid(self, key: Any, tid: TID) -> bool:
        """Repoint the live entry (used when a tuple moves)."""
        leaf = self._find_leaf(key)
        i = bisect_left(leaf.keys, key)
        while i < len(leaf.keys) and leaf.keys[i] == key:
            if leaf.entries[i].live:
                leaf.entries[i].tid = tid
                return True
            i += 1
        return False

    # ----------------------------------------------------------------- reads
    def probe(self, key: Any) -> ProbeResult:
        """Point lookup; reports depth and dead entries stepped over."""
        leaf = self._find_leaf(key)
        i = bisect_left(leaf.keys, key)
        dead = 0
        while i < len(leaf.keys) and leaf.keys[i] == key:
            entry = leaf.entries[i]
            if entry.live:
                return ProbeResult(entry.tid, self._height, dead)
            dead += 1
            i += 1
        return ProbeResult(None, self._height, dead)

    def get(self, key: Any) -> Optional[TID]:
        return self.probe(key).tid

    def __contains__(self, key: Any) -> bool:
        return self.probe(key).found

    def range(self, lo: Any = None, hi: Any = None) -> Iterator[Tuple[Any, TID]]:
        """Live entries with ``lo ≤ key ≤ hi`` in key order."""
        if lo is None:
            node = self._root
            while isinstance(node, _Internal):
                node = node.children[0]
            leaf, i = node, 0
        else:
            leaf = self._find_leaf(lo)
            i = bisect_left(leaf.keys, lo)
        while leaf is not None:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if hi is not None and key > hi:
                    return
                entry = leaf.entries[i]
                if entry.live:
                    yield key, entry.tid
                i += 1
            leaf, i = leaf.next, 0

    def keys(self) -> Iterator[Any]:
        for key, _tid in self.range():
            yield key

    # ----------------------------------------------------------- maintenance
    def cleanup(self) -> int:
        """Physically remove dead entries (VACUUM's index pass).

        Implemented as a bulk rebuild of the tree from live entries; returns
        the number of dead entries removed.
        """
        removed = self._dead
        live = list(self.range())
        self.rebuild(live)
        return removed

    def rebuild(self, items: BulkItems = None) -> None:
        """Bulk-load the tree from ``(key, tid)`` pairs (must be sorted)."""
        items = list(items or [])
        leaves: List[_Leaf] = []
        chunk = max(1, (ORDER * 3) // 4)
        for start in range(0, len(items), chunk):
            leaf = _Leaf()
            for key, tid in items[start:start + chunk]:
                leaf.keys.append(key)
                leaf.entries.append(_Entry(key, tid))
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        if not leaves:
            self._root = _Leaf()
            self._height = 1
            self._live = 0
            self._dead = 0
            return
        level: List[Any] = leaves
        seps: List[Any] = [leaf.keys[0] for leaf in leaves[1:]]
        height = 1
        while len(level) > 1:
            parents: List[Any] = []
            parent_seps: List[Any] = []
            for start in range(0, len(level), ORDER):
                children = level[start:start + ORDER]
                keys = seps[start:start + len(children) - 1]
                parents.append(_Internal(keys, children))
                if start + ORDER < len(level):
                    parent_seps.append(seps[start + len(children) - 1])
            level = parents
            seps = parent_seps
            height += 1
        self._root = level[0]
        self._height = height
        self._live = len(items)
        self._dead = 0
