"""Storage engine exceptions."""

from __future__ import annotations


class StorageError(Exception):
    """Base class for storage engine failures."""


class TableExistsError(StorageError):
    """CREATE TABLE of a name that already exists."""


class TableNotFoundError(StorageError):
    """Operation against a table that does not exist."""


class TupleNotFoundError(StorageError):
    """Key lookup found no live tuple."""


class DuplicateKeyError(StorageError):
    """Insert would violate the primary-key constraint."""


class PageFullError(StorageError):
    """Internal: a page had no room for the requested tuple."""
