"""Write-ahead log.

Every mutation appends a WAL record; commits force an fsync (group commit
batches ``group_size`` records per flush, which is how the engine keeps the
paper-scale load phases affordable while still charging honest durability
costs).  The WAL doubles as the engine-level history the audit layer reads,
and its size feeds the Table-2 space accounting.

WAL retention interacts with erasure (§3.2: "logs may be temporary or kept
for a long duration … logs directly impact requirements like demonstrating
compliance, system recovery, and data erasure"): :meth:`purge_key` exists
precisely so the strictest profile (P_SYS) can scrub a data unit's traces
from the log when erasing it.

The WAL is itself a *copy location*: INSERT/UPDATE records carry the row
image (that is what makes them replayable), so an erased unit's payload
survives in the log until a checkpoint recycles the segment.  That is the
same §1 hazard as the replication log — a grounded erase must scrub it or
"physically gone" is a lie.  :meth:`holds_payload_for` answers the copy-
tracking question and :meth:`scrub_key` redacts the payloads while keeping
the records (LSNs and types stay — recovery metadata is not personal data).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Iterator, List, Optional

from repro.sim.costs import CostModel


class WalRecordType(Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    VACUUM = "vacuum"
    VACUUM_FULL = "vacuum-full"
    FLAG = "flag"
    CHECKPOINT = "checkpoint"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Approximate serialized bytes per WAL record (header + key + payload ref).
RECORD_BYTES = 56


@dataclass(frozen=True)
class WalRecord:
    lsn: int
    type: WalRecordType
    table: str
    key: Any
    payload_size: int = 0
    #: The row image an INSERT/UPDATE must carry to be replayable — and the
    #: reason the WAL is a tracked copy location.  ``None`` once scrubbed.
    payload: Any = None


class WriteAheadLog:
    """An append-only, fsync-batched log."""

    def __init__(
        self,
        cost: CostModel,
        group_size: int = 64,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        """``checkpoint_every`` — auto-checkpoint (truncate recycled
        segments) after that many appends, bounding the WAL footprint the
        way real deployments recycle segments.  None disables."""
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        self._cost = cost
        self._group_size = group_size
        self._checkpoint_every = checkpoint_every
        self._since_checkpoint = 0
        self.checkpoint_count = 0
        # Records bucketed by (table, key) so erase-time purging is O(bucket)
        # instead of O(log) — P_SYS purges on every delete.
        self._buckets: dict = {}
        self._count = 0
        self._next_lsn = 1
        self._pending = 0
        self._flushes = 0

    # --------------------------------------------------------------- logging
    def append(
        self,
        record_type: WalRecordType,
        table: str,
        key: Any = None,
        payload_size: int = 0,
        payload: Any = None,
    ) -> WalRecord:
        record = WalRecord(
            self._next_lsn, record_type, table, key, payload_size, payload
        )
        self._next_lsn += 1
        self._buckets.setdefault((table, key), []).append(record)
        self._count += 1
        self._cost.charge_log_append()
        self._pending += 1
        if self._pending >= self._group_size:
            self.flush()
        self._since_checkpoint += 1
        if (
            self._checkpoint_every is not None
            and self._since_checkpoint >= self._checkpoint_every
        ):
            self.checkpoint()
        return record

    def flush(self) -> None:
        """Force the pending group to stable storage (one fsync)."""
        if self._pending:
            self._cost.charge_fsync()
            self._flushes += 1
            self._pending = 0

    # ---------------------------------------------------------------- queries
    @property
    def record_count(self) -> int:
        return self._count

    @property
    def flush_count(self) -> int:
        return self._flushes

    @property
    def size_bytes(self) -> int:
        return self._count * RECORD_BYTES

    def records(self) -> Iterator[WalRecord]:
        """All records in LSN order (materializes a sort; debugging/tests)."""
        merged = [r for bucket in self._buckets.values() for r in bucket]
        merged.sort(key=lambda r: r.lsn)
        return iter(merged)

    def records_for_key(self, table: str, key: Any) -> List[WalRecord]:
        return list(self._buckets.get((table, key), ()))

    # -------------------------------------------------------------- retention
    @staticmethod
    def site_name(table: str) -> str:
        """The copy-site name WAL row images report under: one logical log
        segment per table.  The engine pairs it with ``CopyLocation.WAL``
        when building its typed copy-location inventory."""
        return f"wal/{table}"

    def holds_payload_for(self, table: str, key: Any) -> bool:
        """Whether any log record still retains the key's row image.

        This is the WAL's copy-tracking primitive: until it returns False,
        a disk inspection of the log segments would recover the value, so
        the key is *physically present* regardless of heap state.
        """
        return any(
            r.payload is not None for r in self._buckets.get((table, key), ())
        )

    def scrub_key(self, table: str, key: Any) -> int:
        """Redact the row images from every record about ``key``.

        Unlike :meth:`purge_key` the records themselves survive — LSNs and
        record types are recovery metadata, not personal data — only the
        carried payloads are overwritten.  This is what a grounded erase
        runs when reclamation makes the heap copy unrecoverable: the log
        copy must not outlive it.  Returns the number of records redacted
        and charges the per-record segment-rewrite share.
        """
        bucket = self._buckets.get((table, key))
        if not bucket:
            return 0
        scrubbed = 0
        for i, record in enumerate(bucket):
            if record.payload is not None:
                bucket[i] = replace(record, payload=None)
                scrubbed += 1
        if scrubbed:
            self._cost.charge_log_purge(scrubbed)
        return scrubbed

    def purge_key(self, table: str, key: Any) -> int:
        """Scrub every record about ``key`` (erase-grounding log purge).

        Returns the number of records removed; charges the per-record purge
        cost (find + segment rewrite share).
        """
        removed = len(self._buckets.pop((table, key), ()))
        if removed:
            self._count -= removed
            self._cost.charge_log_purge(removed)
        return removed

    def checkpoint(self) -> int:
        """Flush everything and recycle all segments (data pages are safe)."""
        self.flush()
        self._cost.charge_fsync()
        self._since_checkpoint = 0
        self.checkpoint_count += 1
        return self.truncate_before(self._next_lsn)

    def truncate_before(self, lsn: int) -> int:
        """Checkpoint-style truncation of old segments."""
        removed = 0
        for bucket_key in list(self._buckets):
            bucket = self._buckets[bucket_key]
            kept = [r for r in bucket if r.lsn >= lsn]
            removed += len(bucket) - len(kept)
            if kept:
                self._buckets[bucket_key] = kept
            else:
                del self._buckets[bucket_key]
        self._count -= removed
        return removed
