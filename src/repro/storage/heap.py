"""Heap files — the page collections backing tables.

The heap implements the three erasure-relevant physical behaviours the paper
benchmarks (Figure 4a):

* ``mark_dead`` (DELETE): out-of-place delete, bloat accumulates;
* ``vacuum`` (VACUUM): prunes dead tuples in place — space becomes reusable
  but the file does **not** shrink, and tuple ids stay stable;
* ``rewrite`` (VACUUM FULL): compacts live tuples into fresh pages — the
  file shrinks, every tuple id changes (indexes must be rebuilt).

A free-space map (list of page numbers with room) keeps inserts O(1)
amortized without scanning the whole file.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.storage.page import PAGE_SIZE, TUPLE_OVERHEAD, Page, TupleSlot

#: Tuple id: (page_no, slot_no).
TID = Tuple[int, int]


class HeapFile:
    """An append-friendly collection of heap pages."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._pages: List[Page] = []
        self._free_map: List[int] = []  # page numbers believed to have room

    # ------------------------------------------------------------ statistics
    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def live_tuples(self) -> int:
        return sum(p.live_count for p in self._pages)

    @property
    def dead_tuples(self) -> int:
        return sum(p.dead_count for p in self._pages)

    @property
    def live_bytes(self) -> int:
        return sum(p.live_bytes for p in self._pages)

    @property
    def dead_bytes(self) -> int:
        return sum(p.dead_bytes for p in self._pages)

    @property
    def total_bytes(self) -> int:
        """On-disk footprint: the file never shrinks except via rewrite."""
        return len(self._pages) * PAGE_SIZE

    @property
    def dead_fraction(self) -> float:
        """Dead share of occupied tuples — the bloat statistic reads pay for."""
        total = self.live_tuples + self.dead_tuples
        return self.dead_tuples / total if total else 0.0

    # --------------------------------------------------------------- mutation
    def insert(self, key: Any, payload: Any, payload_size: int) -> TID:
        """Place the tuple on a page with room; extends the file if needed."""
        while self._free_map:
            page_no = self._free_map[-1]
            page = self._pages[page_no]
            if page.fits(payload_size):
                slot_no = page.insert(key, payload, payload_size)
                if not page.fits(payload_size):
                    self._free_map.pop()
                return (page_no, slot_no)
            self._free_map.pop()
        page = Page(len(self._pages))
        self._pages.append(page)
        slot_no = page.insert(key, payload, payload_size)
        if page.fits(payload_size):
            self._free_map.append(page.page_no)
        return (page.page_no, slot_no)

    def mark_dead(self, tid: TID) -> None:
        page_no, slot_no = tid
        self._pages[page_no].mark_dead(slot_no)

    def fetch(self, tid: TID) -> TupleSlot:
        page_no, slot_no = tid
        return self._pages[page_no].slot(slot_no)

    def overwrite(self, tid: TID, payload: Any) -> None:
        """In-place payload replacement (same size) — used by the reversible
        inaccessibility grounding, which flips a flag without moving data."""
        self.fetch(tid).payload = payload

    # --------------------------------------------------------------- vacuums
    def vacuum(self) -> int:
        """VACUUM: prune dead tuples everywhere; file size unchanged.

        Returns the number of tuples reclaimed.  Pages that regained room
        rejoin the free-space map.
        """
        reclaimed = 0
        for page in self._pages:
            got = page.prune()
            if got:
                reclaimed += got
                if page.page_no not in self._free_map and page.free_bytes > TUPLE_OVERHEAD:
                    self._free_map.append(page.page_no)
        return reclaimed

    def rewrite(self) -> Dict[Any, Tuple[TID, TupleSlot]]:
        """VACUUM FULL: compact live tuples into fresh pages.

        Returns ``{key: (new_tid, slot)}`` for every surviving tuple so the
        caller can rebuild its indexes.  Keys are assumed unique among live
        tuples (the engine enforces primary keys).
        """
        survivors: List[TupleSlot] = [
            slot for page in self._pages for _, slot in page.live_slots()
        ]
        self._pages = []
        self._free_map = []
        mapping: Dict[Any, Tuple[TID, TupleSlot]] = {}
        for slot in survivors:
            tid = self.insert(slot.key, slot.payload, slot.payload_size)
            mapping[slot.key] = (tid, slot)
        return mapping

    # ----------------------------------------------------------------- scans
    def scan(self) -> Iterator[Tuple[TID, TupleSlot]]:
        """Sequential scan over live tuples, page order."""
        for page in self._pages:
            for slot_no, slot in page.live_slots():
                yield (page.page_no, slot_no), slot

    def scan_all(self) -> Iterator[Tuple[TID, TupleSlot]]:
        """Scan including dead tuples (what a forensic read would see —
        relevant to the illegal-retention analysis)."""
        for page in self._pages:
            for slot_no, slot in page.all_slots():
                yield (page.page_no, slot_no), slot

    def page(self, page_no: int) -> Page:
        return self._pages[page_no]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HeapFile({self.name!r}, pages={self.page_count}, "
            f"live={self.live_tuples}, dead={self.dead_tuples})"
        )
