"""Table catalog — schemas and per-table physical structures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from repro.storage.errors import TableExistsError, TableNotFoundError
from repro.storage.heap import HeapFile
from repro.storage.index import BTreeIndex


@dataclass(frozen=True)
class TableSchema:
    """Logical description of a table.

    ``row_bytes`` is the nominal serialized size of one row — the workloads
    use fixed-size records (GDPRBench rows ≈ 70 B of personal data), and the
    space accounting relies on it.  ``flag_column`` marks tables retrofitted
    with the reversible-inaccessibility attribute (Table 1's "Add new
    attribute" system-action), which widens every row by one byte.
    """

    name: str
    row_bytes: int
    flag_column: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("table name must be non-empty")
        if self.row_bytes <= 0:
            raise ValueError("row_bytes must be positive")

    @property
    def effective_row_bytes(self) -> int:
        return self.row_bytes + (1 if self.flag_column else 0)


@dataclass
class Table:
    """A schema plus its physical structures."""

    schema: TableSchema
    heap: HeapFile
    index: BTreeIndex

    @property
    def name(self) -> str:
        return self.schema.name


class Catalog:
    """The engine's table registry."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def create(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise TableExistsError(f"table {schema.name!r} already exists")
        table = Table(
            schema=schema,
            heap=HeapFile(schema.name),
            index=BTreeIndex(f"{schema.name}_pkey"),
        )
        self._tables[schema.name] = table
        return table

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(f"no such table: {name!r}") from None

    def drop(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(f"no such table: {name!r}")
        del self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
