"""Heap pages.

A :class:`Page` is a fixed-capacity container of tuple slots, mirroring
PostgreSQL's 8 KB heap pages.  Tuples are never moved on DELETE — the slot
is marked dead and its space only becomes reusable after VACUUM prunes it.
Pruning keeps slot numbers stable (the slot becomes a hole), so tuple ids
``(page_no, slot_no)`` held by indexes stay valid; only VACUUM FULL moves
tuples (and therefore rebuilds indexes).

The page tracks live/dead byte and slot counts so the heap can expose the
bloat statistics the cost model feeds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.storage.errors import PageFullError

#: Usable bytes per heap page (PostgreSQL's BLCKSZ minus header, roughly).
PAGE_SIZE = 8192

#: Fixed per-tuple overhead (PostgreSQL: 23-byte header + line pointer).
TUPLE_OVERHEAD = 27


@dataclass
class TupleSlot:
    """One stored tuple version."""

    key: Any
    payload_size: int
    payload: Any
    live: bool = True

    @property
    def footprint(self) -> int:
        return self.payload_size + TUPLE_OVERHEAD


class Page:
    """A fixed-size heap page with out-of-place delete semantics."""

    __slots__ = ("page_no", "_slots", "_live_count", "_dead_count",
                 "_live_bytes", "_dead_bytes", "_free")

    def __init__(self, page_no: int) -> None:
        self.page_no = page_no
        self._slots: List[Optional[TupleSlot]] = []
        self._live_count = 0
        self._dead_count = 0
        self._live_bytes = 0
        self._dead_bytes = 0
        self._free = PAGE_SIZE

    # -------------------------------------------------------------- capacity
    @property
    def free_bytes(self) -> int:
        return self._free

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def dead_bytes(self) -> int:
        return self._dead_bytes

    @property
    def live_count(self) -> int:
        return self._live_count

    @property
    def dead_count(self) -> int:
        return self._dead_count

    @property
    def slot_count(self) -> int:
        """Occupied slots (live + dead), holes excluded."""
        return self._live_count + self._dead_count

    def fits(self, payload_size: int) -> bool:
        return payload_size + TUPLE_OVERHEAD <= self._free

    # ------------------------------------------------------------- mutation
    def insert(self, key: Any, payload: Any, payload_size: int) -> int:
        """Store a tuple; returns its (stable) slot number."""
        slot = TupleSlot(key, payload_size, payload)
        if slot.footprint > self._free:
            raise PageFullError(
                f"page {self.page_no}: need {slot.footprint}B, free {self._free}B"
            )
        self._slots.append(slot)
        self._free -= slot.footprint
        self._live_bytes += slot.footprint
        self._live_count += 1
        return len(self._slots) - 1

    def mark_dead(self, slot_no: int) -> None:
        """DELETE semantics: the slot stays, flagged dead, space not freed."""
        slot = self._require(slot_no)
        if not slot.live:
            raise ValueError(f"slot {slot_no} on page {self.page_no} already dead")
        slot.live = False
        self._live_bytes -= slot.footprint
        self._dead_bytes += slot.footprint
        self._live_count -= 1
        self._dead_count += 1

    def prune(self) -> int:
        """VACUUM semantics: turn dead slots into holes, freeing their space.

        Slot numbers of surviving tuples do not change.  Returns the number
        of dead slots reclaimed.
        """
        reclaimed = 0
        freed = 0
        for i, slot in enumerate(self._slots):
            if slot is not None and not slot.live:
                freed += slot.footprint
                self._slots[i] = None
                reclaimed += 1
        self._dead_bytes -= freed
        self._free += freed
        self._dead_count -= reclaimed
        return reclaimed

    # --------------------------------------------------------------- access
    def slot(self, slot_no: int) -> TupleSlot:
        return self._require(slot_no)

    def _require(self, slot_no: int) -> TupleSlot:
        try:
            slot = self._slots[slot_no]
        except IndexError:
            raise IndexError(
                f"page {self.page_no} has no slot {slot_no}"
            ) from None
        if slot is None:
            raise IndexError(
                f"page {self.page_no} slot {slot_no} was vacuumed away"
            )
        return slot

    def live_slots(self) -> Iterator[Tuple[int, TupleSlot]]:
        for i, slot in enumerate(self._slots):
            if slot is not None and slot.live:
                yield i, slot

    def all_slots(self) -> Iterator[Tuple[int, TupleSlot]]:
        for i, slot in enumerate(self._slots):
            if slot is not None:
                yield i, slot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Page({self.page_no}, live={self._live_count}, "
            f"dead={self._dead_count}, free={self._free}B)"
        )
