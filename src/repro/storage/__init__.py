"""A PostgreSQL-like storage substrate (the paper's "PSQL").

Page-based heap tables with MVCC-style out-of-place deletes: ``DELETE``
marks tuples dead but leaves them on their pages; ``VACUUM`` reclaims dead
tuples (space becomes reusable, the relation does not shrink); ``VACUUM
FULL`` rewrites the relation compactly under an exclusive lock.  Dead-tuple
bloat degrades read costs — exactly the mechanism behind the paper's
Figure 4(a) result that DELETE+VACUUM beats DELETE alone on a mixed
workload.

All timing flows through :class:`repro.sim.costs.CostModel`; all sizes are
tracked in bytes for the Table-2 space accounting.
"""

from repro.storage.catalog import TableSchema
from repro.storage.engine import RelationalEngine, TableStats
from repro.storage.errors import (
    DuplicateKeyError,
    StorageError,
    TableExistsError,
    TableNotFoundError,
    TupleNotFoundError,
)
from repro.storage.heap import HeapFile
from repro.storage.index import BTreeIndex
from repro.storage.page import PAGE_SIZE, Page
from repro.storage.wal import WriteAheadLog

__all__ = [
    "RelationalEngine",
    "TableStats",
    "TableSchema",
    "StorageError",
    "TableExistsError",
    "TableNotFoundError",
    "TupleNotFoundError",
    "DuplicateKeyError",
    "HeapFile",
    "BTreeIndex",
    "Page",
    "PAGE_SIZE",
    "WriteAheadLog",
]
