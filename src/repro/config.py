"""Typed construction surface — the validated successor to ``backend_opts``.

Five PRs of growth threaded untyped ``backend_opts`` / ``engine_opts``
mappings through :class:`~repro.systems.database.CompliantDatabase`,
:class:`~repro.systems.backends.BackendGroup`,
:class:`~repro.distributed.store.ReplicatedStore` (and its ``_Node``s), and
the §4.2 profiles.  Mappings validate nothing: a misspelled key
(``{"shared_block_cach": 256}``) was silently ignored and the deployment
ran un-tuned.  This module replaces them with three frozen dataclasses:

* :class:`BackendConfig` — one storage deployment's knobs.  Every field
  belongs to a declared engine family ("psql" / "lsm" / "crypto-shred");
  setting a field on the wrong family raises, and
  :meth:`BackendConfig.from_mapping` rejects unknown keys outright (with a
  did-you-mean suggestion).  The old mapping parameters remain accepted
  everywhere via :func:`warn_backend_opts` deprecation shims that route
  through ``from_mapping`` — so the misspelling bug is closed even for
  legacy callers.
* :class:`StoreConfig` — a full :class:`ReplicatedStore` topology
  (shards, replicas, lag, ring geometry) around a nested
  :class:`BackendConfig`; ``ReplicatedStore.from_config`` and the
  ``repro.cli serve`` front door consume it.
* :class:`ServiceConfig` — the :class:`~repro.service.ComplianceService`
  concurrency knobs (worker pools, admission-queue depth, erase batching,
  maintenance cadence).

Injected *objects* (a live :class:`SharedBlockCache`, a shared
:class:`KeyVault`, an existing engine) are deliberately **not** config
fields: configs describe deployments declaratively and stay picklable /
comparable; object injection remains an internal constructor concern of the
pool owner (``BackendGroup`` / ``ReplicatedStore``).
"""

from __future__ import annotations

import difflib
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

#: Engine families a config can target — mirrors
#: ``repro.systems.backends.BACKENDS`` (kept as literals here so the config
#: layer stays import-light and cycle-free; ``test_config`` asserts the two
#: registries agree).
BACKEND_FAMILIES: Tuple[str, ...] = ("crypto-shred", "lsm", "psql")

#: Config field → the engine families it is meaningful on.  ``backend``
#: itself is the selector and applies everywhere.
_FIELD_FAMILIES: Dict[str, Tuple[str, ...]] = {
    # psql (RelationalEngine + PsqlBackend)
    "table": ("psql",),
    "flag_column": ("psql",),
    "cipher": ("psql",),
    "bloat_factor": ("psql",),
    "autovacuum_threshold": ("psql",),
    "wal_group_size": ("psql",),
    "wal_checkpoint_every": ("psql",),
    # lsm (LSMEngine)
    "memtable_capacity": ("lsm",),
    "tier_threshold": ("lsm",),
    "block_cache_capacity": ("lsm",),
    "compaction": ("lsm",),
    "compaction_mode": ("lsm",),
    "namespace": ("lsm",),
    "shared_block_cache": ("lsm",),
    # crypto-shred
    "group_capacity": ("crypto-shred",),
    "shared_vault": ("crypto-shred",),
}

#: Fields consumed by the *pool owner* (ReplicatedStore / BackendGroup),
#: never forwarded to a backend constructor.
_POOL_FIELDS: Tuple[str, ...] = ("shared_block_cache", "shared_vault")

#: psql fields that configure the shared :class:`RelationalEngine` itself
#: (as opposed to one table's backend view of it).
_PSQL_ENGINE_FIELDS: Tuple[str, ...] = (
    "cipher",
    "bloat_factor",
    "autovacuum_threshold",
    "wal_group_size",
    "wal_checkpoint_every",
)


def _allowed_keys(backend: str) -> Tuple[str, ...]:
    return tuple(
        sorted(
            name
            for name, families in _FIELD_FAMILIES.items()
            if backend in families
        )
    )


def warn_backend_opts(param: str, owner: str) -> None:
    """One shared deprecation message for every legacy mapping parameter."""
    warnings.warn(
        f"{owner}({param}=...) mappings are deprecated; pass a typed "
        "repro.config.BackendConfig instead (unknown keys now raise either "
        "way)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class BackendConfig:
    """One storage deployment, declaratively.

    ``None`` means *unset* — the engine's own default applies and the key
    is not emitted by :meth:`backend_kwargs`.  Setting a field that the
    selected ``backend`` family does not understand raises ``ValueError``
    at construction, which is the whole point: a config object cannot
    describe a deployment the engines cannot build.
    """

    backend: str = "psql"
    # --- psql -----------------------------------------------------------
    table: Optional[str] = None
    flag_column: Optional[bool] = None
    cipher: Optional[Any] = None
    bloat_factor: Optional[float] = None
    autovacuum_threshold: Optional[int] = None
    wal_group_size: Optional[int] = None
    wal_checkpoint_every: Optional[int] = None
    # --- lsm ------------------------------------------------------------
    memtable_capacity: Optional[int] = None
    tier_threshold: Optional[int] = None
    block_cache_capacity: Optional[int] = None
    compaction: Optional[Any] = None
    compaction_mode: Optional[str] = None
    namespace: Optional[str] = None
    #: Pool one block-cache budget across every node/namespace (capacity,
    #: or ``True`` for the 1024-entry default) — consumed by the pool
    #: owner, not forwarded to ``make_backend``.
    shared_block_cache: Optional[Union[int, bool]] = None
    # --- crypto-shred ---------------------------------------------------
    group_capacity: Optional[int] = None
    #: Co-locate every node/namespace's per-unit keys in one shared
    #: :class:`KeyVault` (batched shreds) — pool-owner field.
    shared_vault: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_FAMILIES:
            # KeyError to match the BACKENDS registry contract
            # (make_backend / BackendGroup raise it for unknown names).
            raise KeyError(
                f"unknown backend {self.backend!r}; "
                f"choose from {sorted(BACKEND_FAMILIES)}"
            )
        wrong = [
            name
            for name, value in self._set_fields().items()
            if self.backend not in _FIELD_FAMILIES[name]
        ]
        if wrong:
            raise ValueError(
                f"option(s) {sorted(wrong)} do not apply to "
                f"backend {self.backend!r}; valid keys: "
                f"{list(_allowed_keys(self.backend))}"
            )

    # ------------------------------------------------------------ construction
    @classmethod
    def from_mapping(
        cls,
        backend: str,
        mapping: Optional[Mapping[str, Any]] = None,
    ) -> "BackendConfig":
        """Build from a legacy ``backend_opts`` mapping — unknown keys
        raise (closing the silently-ignored-misspelling bug), wrong-family
        keys raise via ``__post_init__``."""
        mapping = dict(mapping or {})
        unknown = sorted(set(mapping) - set(_FIELD_FAMILIES))
        if unknown:
            hints = []
            for key in unknown:
                close = difflib.get_close_matches(
                    key, _FIELD_FAMILIES, n=1, cutoff=0.6
                )
                hints.append(
                    f"{key!r}" + (f" (did you mean {close[0]!r}?)" if close else "")
                )
            raise ValueError(
                f"unknown backend option(s) {', '.join(hints)} for "
                f"backend {backend!r}; valid keys: "
                f"{list(_allowed_keys(backend))}"
            )
        return cls(backend=backend, **mapping)

    @classmethod
    def coerce(
        cls,
        backend: Union[str, "BackendConfig"],
        opts: Optional[Mapping[str, Any]],
        *,
        owner: str,
        param: str = "backend_opts",
    ) -> "BackendConfig":
        """The constructor-shim entry point every facade shares: a
        :class:`BackendConfig` passes through (extra ``opts`` then being a
        contradiction), a backend name + optional legacy mapping converts
        with a :class:`DeprecationWarning`."""
        if isinstance(backend, BackendConfig):
            if opts:
                raise ValueError(
                    f"{owner}: pass options on the BackendConfig, "
                    f"not via {param}"
                )
            return backend
        if opts is not None:
            warn_backend_opts(param, owner)
        return cls.from_mapping(backend, opts)

    # --------------------------------------------------------------- emission
    def _set_fields(self) -> Dict[str, Any]:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "backend" and getattr(self, f.name) is not None
        }

    def backend_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``make_backend(self.backend, cost, ...)``
        — every explicitly-set field except the pool-owner ones."""
        return {
            name: value
            for name, value in self._set_fields().items()
            if name not in _POOL_FIELDS
        }

    def engine_kwargs(self) -> Dict[str, Any]:
        """The psql subset that configures a shared
        :class:`RelationalEngine` (BackendGroup's single-WAL deployment)."""
        return {
            name: value
            for name, value in self._set_fields().items()
            if name in _PSQL_ENGINE_FIELDS
        }

    def merged(self, other: "BackendConfig") -> "BackendConfig":
        """This config with ``other``'s explicitly-set fields layered on
        top — how profile defaults compose with caller overrides."""
        if other.backend != self.backend:
            raise ValueError(
                f"cannot merge configs for different backends "
                f"({self.backend!r} vs {other.backend!r})"
            )
        return replace(self, **other._set_fields())

    @property
    def shared_block_cache_capacity(self) -> Optional[int]:
        """The pooled-cache capacity this config asks for (``None`` when
        pooling is off; ``True`` normalizes to the 1024-entry default)."""
        if not self.shared_block_cache:
            return None
        if self.shared_block_cache is True:
            return 1024
        return int(self.shared_block_cache)


@dataclass(frozen=True)
class StoreConfig:
    """A whole :class:`~repro.distributed.store.ReplicatedStore` topology.

    ``ReplicatedStore.from_config`` expands this into the constructor;
    the ``serve`` CLI and :class:`~repro.service.ComplianceService` treat
    it as the single declarative description of the deployment under
    service.
    """

    backend: BackendConfig = field(default_factory=BackendConfig)
    shards: int = 1
    n_replicas: int = 2
    replication_lag: int = 50_000
    cache_ttl: int = 500_000
    row_bytes: int = 70
    vnodes: int = 64
    shard_weights: Optional[Tuple[Tuple[int, float], ...]] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.n_replicas < 0:
            raise ValueError("n_replicas must be non-negative")
        if self.replication_lag < 0 or self.cache_ttl < 0:
            raise ValueError("lag and TTL must be non-negative")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.shard_weights is not None and not isinstance(
            self.shard_weights, tuple
        ):
            # Accept any mapping/sequence-of-pairs at construction but
            # store the canonical hashable form.
            object.__setattr__(
                self,
                "shard_weights",
                tuple(sorted(dict(self.shard_weights).items())),
            )

    @property
    def weights_mapping(self) -> Optional[Dict[int, float]]:
        if self.shard_weights is None:
            return None
        return dict(self.shard_weights)


@dataclass(frozen=True)
class ServiceConfig:
    """Concurrency knobs for the compliance-as-a-service front door."""

    #: Worker threads per shard pool (requests for one shard serialize
    #: through its pool and its shard lock either way; >1 overlaps policy
    #: work with storage work).
    workers_per_shard: int = 1
    #: Bounded admission queue depth per shard pool; a full queue rejects
    #: the request immediately (429-style) instead of growing latency.
    queue_depth: int = 64
    #: Max erases amortized into one ``erase_many`` call (one reclamation
    #: pass per node per batch instead of per key).
    erase_batch: int = 16
    #: Seconds the maintenance thread sleeps between ticks (each tick
    #: takes the topology write lock, steps the rebalance driver, and
    #: flushes read repairs).
    maintenance_interval: float = 0.002
    #: Keys migrated per maintenance tick while a rebalance is active.
    maintenance_budget_keys: int = 32
    #: Per-node merge-input byte budget for the bounded compaction slice a
    #: quiet maintenance tick runs (deferred LSM backends); 0 disables the
    #: slice entirely.
    maintenance_compaction_bytes: int = 1 << 20
    #: Run the invariant registry every N maintenance ticks (0 = only on
    #: demand / at close).
    invariant_check_every: int = 0
    #: Run an anti-entropy digest sweep every N *quiet* maintenance ticks
    #: (no rebalance in flight); 0 disables proactive sweeps — divergence
    #: then heals only via quorum-read repair.
    antientropy_every: int = 0
    #: Hash ranges per shard the anti-entropy sweep digests over.
    antientropy_ranges: int = 16
    #: Default ``call()`` timeout in seconds.
    request_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.workers_per_shard < 1:
            raise ValueError("workers_per_shard must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.erase_batch < 1:
            raise ValueError("erase_batch must be >= 1")
        if self.maintenance_interval <= 0:
            raise ValueError("maintenance_interval must be positive")
        if self.maintenance_budget_keys < 1:
            raise ValueError("maintenance_budget_keys must be >= 1")
        if self.maintenance_compaction_bytes < 0:
            raise ValueError("maintenance_compaction_bytes must be non-negative")
        if self.invariant_check_every < 0:
            raise ValueError("invariant_check_every must be non-negative")
        if self.antientropy_every < 0:
            raise ValueError("antientropy_every must be non-negative")
        if self.antientropy_ranges < 1:
            raise ValueError("antientropy_ranges must be >= 1")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
