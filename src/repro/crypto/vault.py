"""The key vault — one keystore for every per-unit master key.

The first crypto-shred design gave every unit a whole LUKS header (512
bytes of key slots) just to hold one 32-byte master key; a deployment with
several namespaces repeated that per namespace.  The vault centralizes the
keys: one fixed header, one compact entry per key, shared across every
``CryptoShredBackend`` namespace of a deployment (``BackendGroup`` injects
a single vault).  Erasure grounds exactly as before — destroying a unit's
vault entry (:meth:`shred`) makes that unit's ciphertext unrecoverable —
but the *batch* path (:meth:`shred_many`) models what co-locating the keys
buys: shredding N keys touches the key-table pages once, not N scattered
volume headers.

A shredded entry stays in the catalog (zeroed) so ``is_shredded`` keeps
answering; only :meth:`compact` — the space-release half of a full
reclamation — drops zeroed entries.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional

#: Fixed vault header (catalog metadata), charged once per vault.
VAULT_HEADER_BYTES = 512

#: Bytes one enrolled key occupies: the 32-byte master plus entry metadata.
KEY_ENTRY_BYTES = 48


class KeyVault:
    """Per-unit master keys behind integer key ids."""

    def __init__(self, seed: str = "vault") -> None:
        self._seed = seed
        self._keys: Dict[int, Optional[bytes]] = {}
        self._counter = 0
        self.shred_count = 0

    # ----------------------------------------------------------------- keys
    def create_key(self, context: str = "") -> int:
        """Enroll a fresh per-unit master key; returns its key id."""
        self._counter += 1
        key_id = self._counter
        seed = f"{self._seed}/key/{key_id}/{context}".encode()
        self._keys[key_id] = hashlib.sha256(seed).digest()
        return key_id

    def master(self, key_id: int) -> bytes:
        """The master key — raises if the entry was shredded."""
        try:
            key = self._keys[key_id]
        except KeyError:
            raise KeyError(f"vault has no key {key_id}") from None
        if key is None:
            raise PermissionError(f"vault key {key_id} was shredded")
        return key

    # ---------------------------------------------------------------- erase
    def shred(self, key_id: int) -> bool:
        """Destroy one key; returns False if it was already shredded."""
        if self._keys.get(key_id) is None:
            return False
        self._keys[key_id] = None
        self.shred_count += 1
        return True

    def shred_many(self, key_ids: List[int]) -> int:
        """Destroy a batch of keys in one key-table pass; returns the
        number actually destroyed (already-shredded ids are no-ops)."""
        return sum(1 for key_id in key_ids if self.shred(key_id))

    def is_shredded(self, key_id: int) -> bool:
        """Whether the key is gone (unknown ids count as shredded — there
        is nothing left that could decrypt)."""
        return self._keys.get(key_id) is None

    def compact(self) -> int:
        """Drop zeroed entries (space release); returns entries removed.
        ``is_shredded`` still answers True for them afterwards."""
        return len(self.compact_keys(list(self._keys)))

    def compact_keys(self, key_ids: Iterable[int]) -> List[int]:
        """Drop the zeroed entries among ``key_ids`` (a shared vault is
        compacted per owner — each backend releases only its own entries).
        Returns the ids actually removed."""
        removed = []
        for key_id in key_ids:
            if key_id in self._keys and self._keys[key_id] is None:
                del self._keys[key_id]
                removed.append(key_id)
        return removed

    # ----------------------------------------------------------- accounting
    @property
    def live_keys(self) -> int:
        return sum(1 for v in self._keys.values() if v is not None)

    @property
    def size_bytes(self) -> int:
        """Header plus one entry per catalog slot (zeroed slots included —
        they occupy key-table space until :meth:`compact`)."""
        return VAULT_HEADER_BYTES + KEY_ENTRY_BYTES * len(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KeyVault(live={self.live_keys}, shredded={self.shred_count})"
