"""A LUKS-style encrypted volume.

Models the parts of LUKS1/cryptsetup that matter to the paper's P_GBench
profile ("data is encrypted using LUKS (SHA-256)"):

* a header with cipher metadata and up to 8 key slots;
* each key slot stores the volume master key encrypted under a key derived
  from a passphrase via PBKDF2-HMAC-SHA256;
* sector-granular encryption of the payload area (512-byte sectors), each
  sector keyed by the master key + sector number (ESSIV-like).

Opening the volume with any enrolled passphrase recovers the master key;
revoking a slot makes that passphrase useless.  Disk-level erasure of a
LUKS volume (destroying the header) is the classic "crypto-shredding"
grounding — exposed here as :meth:`shred`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.fastcipher import FastStreamCipher
from repro.crypto.kdf import pbkdf2_sha256

SECTOR = 512


@dataclass
class _KeySlot:
    salt: bytes
    iterations: int
    encrypted_master: bytes


class LuksVolume:
    """An encrypted block volume with passphrase key slots."""

    MAX_SLOTS = 8

    def __init__(self, master_key: Optional[bytes] = None, iterations: int = 1000) -> None:
        self._master = master_key or hashlib.sha256(b"volume-master").digest()
        self._iterations = iterations
        self._slots: Dict[int, Optional[_KeySlot]] = {
            i: None for i in range(self.MAX_SLOTS)
        }
        self._sectors: Dict[int, bytes] = {}
        self._shredded = False

    # ---------------------------------------------------------------- slots
    def add_passphrase(self, passphrase: bytes) -> int:
        """Enroll a passphrase in the first free slot; returns the slot no."""
        self._check_alive()
        for slot_no, slot in self._slots.items():
            if slot is None:
                salt = hashlib.sha256(bytes([slot_no]) + passphrase).digest()[:16]
                kek = pbkdf2_sha256(passphrase, salt, self._iterations)
                sealed = FastStreamCipher(kek, b"slot").apply(self._master)
                self._slots[slot_no] = _KeySlot(salt, self._iterations, sealed)
                return slot_no
        raise ValueError("all key slots are occupied")

    def revoke_slot(self, slot_no: int) -> None:
        self._check_alive()
        if self._slots.get(slot_no) is None:
            raise KeyError(f"slot {slot_no} is empty")
        self._slots[slot_no] = None

    def open(self, passphrase: bytes) -> bytes:
        """Recover the master key with an enrolled passphrase."""
        self._check_alive()
        for slot in self._slots.values():
            if slot is None:
                continue
            kek = pbkdf2_sha256(passphrase, slot.salt, slot.iterations)
            candidate = FastStreamCipher(kek, b"slot").apply(slot.encrypted_master)
            # Verify via a digest check (LUKS uses a master-key digest).
            if hashlib.sha256(candidate).digest() == hashlib.sha256(self._master).digest():
                return candidate
        raise PermissionError("no key slot matches the passphrase")

    @property
    def active_slots(self) -> int:
        return sum(1 for s in self._slots.values() if s is not None)

    # --------------------------------------------------------------- sectors
    def _sector_cipher(self, sector_no: int) -> FastStreamCipher:
        # ESSIV-like: per-sector nonce derived from the master key.
        nonce = hashlib.sha256(
            self._master + sector_no.to_bytes(8, "big")
        ).digest()[:16]
        return FastStreamCipher(self._master, nonce)

    def write_sector(self, sector_no: int, data: bytes) -> None:
        self._check_alive()
        if len(data) > SECTOR:
            raise ValueError(f"sector payload exceeds {SECTOR} bytes")
        padded = data.ljust(SECTOR, b"\x00")
        self._sectors[sector_no] = self._sector_cipher(sector_no).apply(padded)

    def read_sector(self, sector_no: int) -> bytes:
        self._check_alive()
        try:
            encrypted = self._sectors[sector_no]
        except KeyError:
            raise KeyError(f"sector {sector_no} never written") from None
        return self._sector_cipher(sector_no).apply(encrypted)

    def raw_sector(self, sector_no: int) -> bytes:
        """Ciphertext as a forensic scan would see it (no key required)."""
        return self._sectors[sector_no]

    def discard_sectors(self, start: int = 0) -> int:
        """Drop ciphertext sectors numbered ``start`` and above.

        The TRIM/overwrite half of space release and sanitization: a
        shrinking rewrite must not leave stale tail ciphertext recoverable,
        and a full discard (``start=0``) releases the payload area
        entirely.  Works on shredded volumes too (sanitize runs after the
        key shred).  Returns the number of sectors discarded.
        """
        victims = [s for s in self._sectors if s >= start]
        for sector_no in victims:
            del self._sectors[sector_no]
        return len(victims)

    @property
    def sector_count(self) -> int:
        return len(self._sectors)

    # ---------------------------------------------------------------- erase
    def shred(self) -> None:
        """Destroy the header (master key + key slots): crypto-shredding.

        The ciphertext sectors remain, but without the master key they are
        unrecoverable — the disk-encryption grounding of erasure.
        """
        self._master = b""
        for slot_no in self._slots:
            self._slots[slot_no] = None
        self._shredded = True

    @property
    def is_shredded(self) -> bool:
        return self._shredded

    def _check_alive(self) -> None:
        if self._shredded:
            raise PermissionError("volume header was shredded")
