"""Cryptography substrate.

The three profiles encrypt at rest with three different schemes (paper §4.2):
P_Base uses AES-256, P_GBench uses LUKS (SHA-256-based disk encryption),
P_SYS uses AES-128.  This package implements:

* :mod:`repro.crypto.aes` — a from-scratch AES-128/192/256 block cipher,
  validated against the FIPS-197 test vectors;
* :mod:`repro.crypto.modes` — CTR and CBC modes over any block cipher;
* :mod:`repro.crypto.kdf` — PBKDF2-HMAC-SHA256 key derivation;
* :mod:`repro.crypto.luks` — a LUKS-style encrypted volume (header, key
  slots, per-sector encryption);
* :mod:`repro.crypto.fastcipher` — a SHA-256 keystream cipher used for bulk
  engine traffic (pure-Python AES is ~10³× slower than AES-NI; see
  DESIGN.md §1.3 for why this substitution preserves the benchmarks);
* :mod:`repro.crypto.adapters` — :class:`repro.storage.engine.EngineCipher`
  implementations wiring ciphers + cost charging into the engines.
"""

from repro.crypto.adapters import (
    AesEngineCipher,
    CipherKind,
    CostOnlyCipher,
    FastEngineCipher,
    make_engine_cipher,
)
from repro.crypto.aes import AES
from repro.crypto.fastcipher import FastStreamCipher
from repro.crypto.kdf import pbkdf2_sha256
from repro.crypto.luks import LuksVolume
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_keystream, ctr_xor

__all__ = [
    "AES",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_keystream",
    "ctr_xor",
    "pbkdf2_sha256",
    "LuksVolume",
    "FastStreamCipher",
    "CipherKind",
    "CostOnlyCipher",
    "FastEngineCipher",
    "AesEngineCipher",
    "make_engine_cipher",
]
