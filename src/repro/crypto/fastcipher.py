"""Fast keystream cipher for bulk engine traffic.

SHA-256 in counter mode: keystream block i = SHA256(key ‖ nonce ‖ i).
The hash runs in C (hashlib), so sealing every tuple at paper scale is
affordable, while the transformation remains a real keyed, invertible-only-
with-the-key cipher — good enough to make "encrypted at rest" mean that a
forensic scan sees ciphertext, which is what the erasure/retention analyses
need.  The *cost* of AES/LUKS is charged separately through the cost model
(see DESIGN.md §1.3).
"""

from __future__ import annotations

import hashlib


class FastStreamCipher:
    """SHA-256-CTR keystream cipher."""

    DIGEST = 32

    def __init__(self, key: bytes, nonce: bytes = b"") -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._prefix = hashlib.sha256(key + b"\x00" + nonce).digest()

    def keystream(self, nbytes: int, offset: int = 0) -> bytes:
        """``nbytes`` of keystream starting at byte ``offset``."""
        first_block = offset // self.DIGEST
        skip = offset % self.DIGEST
        out = bytearray()
        block = first_block
        while len(out) < skip + nbytes:
            out += hashlib.sha256(
                self._prefix + block.to_bytes(8, "big")
            ).digest()
            block += 1
        return bytes(out[skip:skip + nbytes])

    def apply(self, data: bytes, offset: int = 0) -> bytes:
        """Encrypt/decrypt (XOR is symmetric)."""
        stream = self.keystream(len(data), offset)
        return bytes(a ^ b for a, b in zip(data, stream))
