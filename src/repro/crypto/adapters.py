"""Engine cipher adapters.

:class:`repro.storage.engine.EngineCipher` implementations in three tiers:

* :class:`CostOnlyCipher` — charges the cost model, payload untouched.
  Used at paper scale (100k–500k records) where pure-Python transformation
  of every tuple would swamp the simulation in interpreter time.
* :class:`FastEngineCipher` — charges costs *and* really transforms the
  payload with the SHA-256 keystream cipher.  Used by examples, tests, and
  the forensic/retention analyses where ciphertext must actually be opaque.
* :class:`AesEngineCipher` — the real AES in CTR mode.  Reference tier.

All three charge identical simulated costs, so the figures do not depend on
the tier — that is asserted in ``tests/integration/test_cipher_tiers.py``.
"""

from __future__ import annotations

import hashlib
from enum import Enum
from typing import Any, Optional

from repro import codec
from repro.crypto.aes import AES
from repro.crypto.fastcipher import FastStreamCipher
from repro.crypto.modes import ctr_xor
from repro.sim.costs import CostModel


class CipherKind(Enum):
    """Which at-rest scheme a profile declares (paper §4.2)."""

    AES128 = "aes-128"
    AES256 = "aes-256"
    LUKS = "luks-sha256"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _charge(cost: CostModel, kind: CipherKind, nbytes: int) -> None:
    if kind is CipherKind.AES128:
        cost.charge_aes128(nbytes)
    elif kind is CipherKind.AES256:
        cost.charge_aes256(nbytes)
    else:
        cost.charge_luks(nbytes)


class CostOnlyCipher:
    """Charges encryption costs; payloads pass through untouched."""

    overhead_bytes = 16  # IV per sealed payload

    def __init__(self, cost: CostModel, kind: CipherKind) -> None:
        self._cost = cost
        self.kind = kind

    def seal(self, payload: Any, nbytes: int) -> Any:
        _charge(self._cost, self.kind, nbytes)
        return payload

    def open_(self, payload: Any, nbytes: int) -> Any:
        _charge(self._cost, self.kind, nbytes)
        return payload


class _TransformingCipher:
    """Shared plumbing for ciphers that really transform payloads.

    Payloads are arbitrary Python objects; they are serialized with ``repr``
    (workload payloads are strings/dicts of primitives), encrypted, and
    wrapped in a :class:`SealedPayload` that remembers nothing about the
    plaintext.  ``open_`` restores the original object.
    """

    overhead_bytes = 16

    def __init__(self, cost: CostModel, kind: CipherKind) -> None:
        self._cost = cost
        self.kind = kind
        self._counter = 0

    def _encrypt(self, data: bytes, nonce: bytes) -> bytes:  # pragma: no cover
        raise NotImplementedError

    def _decrypt(self, data: bytes, nonce: bytes) -> bytes:  # pragma: no cover
        raise NotImplementedError

    def seal(self, payload: Any, nbytes: int) -> "SealedPayload":
        _charge(self._cost, self.kind, nbytes)
        self._counter += 1
        nonce = hashlib.sha256(self._counter.to_bytes(8, "big")).digest()[:16]
        plaintext = codec.encode(payload)
        return SealedPayload(self._encrypt(plaintext, nonce), nonce)

    def open_(self, payload: Any, nbytes: int) -> Any:
        _charge(self._cost, self.kind, nbytes)
        if not isinstance(payload, SealedPayload):
            raise TypeError("payload was not sealed by this cipher")
        return codec.decode(self._decrypt(payload.ciphertext, payload.nonce))


class SealedPayload:
    """An encrypted payload: ciphertext + nonce, nothing else."""

    __slots__ = ("ciphertext", "nonce")

    def __init__(self, ciphertext: bytes, nonce: bytes) -> None:
        self.ciphertext = ciphertext
        self.nonce = nonce

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SealedPayload({len(self.ciphertext)}B)"


class FastEngineCipher(_TransformingCipher):
    """SHA-256 keystream transformation + cost charging."""

    def __init__(self, cost: CostModel, kind: CipherKind, key: bytes = b"k") -> None:
        super().__init__(cost, kind)
        self._key = key

    def _encrypt(self, data: bytes, nonce: bytes) -> bytes:
        return FastStreamCipher(self._key, nonce).apply(data)

    def _decrypt(self, data: bytes, nonce: bytes) -> bytes:
        return FastStreamCipher(self._key, nonce).apply(data)


class AesEngineCipher(_TransformingCipher):
    """Real AES-CTR transformation + cost charging (reference tier)."""

    def __init__(
        self, cost: CostModel, kind: CipherKind, key: Optional[bytes] = None
    ) -> None:
        super().__init__(cost, kind)
        if key is None:
            key = hashlib.sha256(b"aes-engine-key").digest()
            if kind is CipherKind.AES128:
                key = key[:16]
        self._aes = AES(key)

    def _encrypt(self, data: bytes, nonce: bytes) -> bytes:
        return ctr_xor(self._aes, nonce, data)

    def _decrypt(self, data: bytes, nonce: bytes) -> bytes:
        return ctr_xor(self._aes, nonce, data)


def make_engine_cipher(
    cost: CostModel, kind: CipherKind, tier: str = "cost-only"
) -> Any:
    """Factory: pick the adapter tier ("cost-only" | "fast" | "aes")."""
    if tier == "cost-only":
        return CostOnlyCipher(cost, kind)
    if tier == "fast":
        return FastEngineCipher(cost, kind)
    if tier == "aes":
        return AesEngineCipher(cost, kind)
    raise ValueError(f"unknown cipher tier: {tier!r}")
