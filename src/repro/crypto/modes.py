"""Block cipher modes of operation (CTR and CBC) with PKCS#7 padding.

Mode functions take any object exposing ``encrypt_block``/``decrypt_block``
over 16-byte blocks — in practice :class:`repro.crypto.aes.AES`.
"""

from __future__ import annotations

from typing import Protocol

BLOCK = 16


class BlockCipher(Protocol):  # pragma: no cover - typing protocol
    def encrypt_block(self, block: bytes) -> bytes: ...

    def decrypt_block(self, block: bytes) -> bytes: ...


# --------------------------------------------------------------------------
# PKCS#7 padding
# --------------------------------------------------------------------------

def pkcs7_pad(data: bytes) -> bytes:
    pad = BLOCK - (len(data) % BLOCK)
    return data + bytes([pad]) * pad


def pkcs7_unpad(data: bytes) -> bytes:
    if not data or len(data) % BLOCK:
        raise ValueError("invalid padded length")
    pad = data[-1]
    if not 1 <= pad <= BLOCK or data[-pad:] != bytes([pad]) * pad:
        raise ValueError("invalid PKCS#7 padding")
    return data[:-pad]


# --------------------------------------------------------------------------
# CTR mode
# --------------------------------------------------------------------------

def ctr_keystream(cipher: BlockCipher, nonce: bytes, nbytes: int) -> bytes:
    """Keystream of ``nbytes`` from a 16-byte nonce/counter block."""
    if len(nonce) != BLOCK:
        raise ValueError("CTR nonce must be 16 bytes")
    counter = int.from_bytes(nonce, "big")
    out = bytearray()
    while len(out) < nbytes:
        out += cipher.encrypt_block(counter.to_bytes(BLOCK, "big"))
        counter = (counter + 1) % (1 << 128)
    return bytes(out[:nbytes])


def ctr_xor(cipher: BlockCipher, nonce: bytes, data: bytes) -> bytes:
    """CTR encrypt/decrypt (symmetric)."""
    stream = ctr_keystream(cipher, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


# --------------------------------------------------------------------------
# CBC mode
# --------------------------------------------------------------------------

def cbc_encrypt(cipher: BlockCipher, iv: bytes, plaintext: bytes) -> bytes:
    if len(iv) != BLOCK:
        raise ValueError("CBC IV must be 16 bytes")
    data = pkcs7_pad(plaintext)
    out = bytearray()
    previous = iv
    for i in range(0, len(data), BLOCK):
        block = bytes(a ^ b for a, b in zip(data[i:i + BLOCK], previous))
        previous = cipher.encrypt_block(block)
        out += previous
    return bytes(out)


def cbc_decrypt(cipher: BlockCipher, iv: bytes, ciphertext: bytes) -> bytes:
    if len(iv) != BLOCK:
        raise ValueError("CBC IV must be 16 bytes")
    if len(ciphertext) % BLOCK:
        raise ValueError("ciphertext length must be a block multiple")
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), BLOCK):
        block = ciphertext[i:i + BLOCK]
        plain = cipher.decrypt_block(block)
        out += bytes(a ^ b for a, b in zip(plain, previous))
        previous = block
    return pkcs7_unpad(bytes(out))
