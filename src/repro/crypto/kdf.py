"""Key derivation — PBKDF2-HMAC-SHA256 (stdlib-backed HMAC, own loop).

Used by the LUKS volume to derive the key-encryption key from a passphrase,
mirroring cryptsetup's PBKDF2 default.
"""

from __future__ import annotations

import hashlib
import hmac


def pbkdf2_sha256(
    passphrase: bytes, salt: bytes, iterations: int, dklen: int = 32
) -> bytes:
    """PBKDF2 with HMAC-SHA256 (RFC 2898)."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if dklen < 1:
        raise ValueError("dklen must be >= 1")
    blocks = []
    block_index = 1
    while 32 * len(blocks) < dklen:
        u = hmac.new(
            passphrase, salt + block_index.to_bytes(4, "big"), hashlib.sha256
        ).digest()
        accum = int.from_bytes(u, "big")
        for _ in range(iterations - 1):
            u = hmac.new(passphrase, u, hashlib.sha256).digest()
            accum ^= int.from_bytes(u, "big")
        blocks.append(accum.to_bytes(32, "big"))
        block_index += 1
    return b"".join(blocks)[:dklen]
