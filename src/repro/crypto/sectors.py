"""Sector groups — packed multi-unit ciphertext regions.

The first crypto-shred layout gave every unit its own LUKS volume: a
512-byte header plus at least one 512-byte sector per value — a space
factor of roughly 3x a relational heap for 70-byte rows (Table-2 scale).
A :class:`SectorGroup` packs up to ``capacity`` units into one region that
shares a *single* 512-byte group header; each unit occupies its own
sector-aligned slot and is encrypted under its own subkey, KDF-derived
(:func:`derive_subkey`) from the unit's vault master key — so shredding
one unit's vault entry still grounds *that unit's* erasure while its
neighbors stay readable.  Per-unit cost drops from 1024+ bytes to
``512·sectors + 512/capacity`` plus a vault entry.

Sanitization batches the same way: :meth:`overwrite_slots` multi-pass
overwrites any set of slots in one sweep, so a batch of "permanently
delete" groundings in the same group pays one pass, not one per unit.

The group never sees key material beyond the subkeys handed to
``write``/``read``; a forensic scan (:meth:`raw_sector`) sees only
ciphertext, exactly like :class:`~repro.crypto.luks.LuksVolume`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.crypto.fastcipher import FastStreamCipher
from repro.crypto.kdf import pbkdf2_sha256

SECTOR = 512

#: Shared group header: slot table, salts, cipher metadata — amortized
#: over every unit in the group (the LUKS design paid this per unit).
GROUP_HEADER_BYTES = 512

#: Sectors one slot may span before the unit needs a dedicated group.
MAX_SLOT_SECTORS = 8

#: Units per group by default.
GROUP_CAPACITY = 16


def derive_subkey(master: bytes, group_id: int, slot: int) -> bytes:
    """The unit's sector-encryption subkey, derived from its (shreddable)
    vault master key and its placement — per-unit isolation inside a
    shared region."""
    salt = b"sector-group/%d/%d" % (group_id, slot)
    return pbkdf2_sha256(master, salt, 1)


class SectorGroup:
    """One packed ciphertext region holding up to ``capacity`` units."""

    def __init__(
        self,
        group_id: int,
        capacity: int = GROUP_CAPACITY,
        slot_sectors: int = MAX_SLOT_SECTORS,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if slot_sectors < 1:
            raise ValueError("slot_sectors must be positive")
        self.group_id = group_id
        self.capacity = capacity
        self.slot_sectors = slot_sectors
        self._sectors: Dict[int, bytes] = {}
        self._used: List[bool] = [False] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    # ----------------------------------------------------------------- slots
    @property
    def has_free_slot(self) -> bool:
        return bool(self._free)

    @property
    def slots_in_use(self) -> int:
        return self.capacity - len(self._free)

    def alloc_slot(self) -> int:
        """Claim a free slot (freed slots are reused — the space-release
        half of a full reclamation really returns capacity)."""
        if not self._free:
            raise ValueError(f"sector group {self.group_id} is full")
        slot = self._free.pop()
        self._used[slot] = True
        return slot

    def fits(self, nbytes: int) -> bool:
        """Whether a value of ``nbytes`` fits one slot of this group."""
        return self.sectors_needed(nbytes) <= self.slot_sectors

    @staticmethod
    def sectors_needed(nbytes: int) -> int:
        return max(1, (nbytes + SECTOR - 1) // SECTOR)

    def _slot_base(self, slot: int) -> int:
        return slot * self.slot_sectors

    # --------------------------------------------------------------- sectors
    def _sector_cipher(self, subkey: bytes, sector_no: int) -> FastStreamCipher:
        # ESSIV-like: per-sector nonce derived from the subkey.
        nonce = hashlib.sha256(
            subkey + sector_no.to_bytes(8, "big")
        ).digest()[:16]
        return FastStreamCipher(subkey, nonce)

    def write(self, slot: int, subkey: bytes, blob: bytes) -> int:
        """Encrypt ``blob`` into the slot's sectors; returns the sector
        count.  Stale tail sectors of a shrinking rewrite are discarded —
        the old value must not stay recoverable under the live subkey."""
        sectors = self.sectors_needed(len(blob))
        if sectors > self.slot_sectors:
            raise ValueError(
                f"value needs {sectors} sectors; slot holds {self.slot_sectors}"
            )
        base = self._slot_base(slot)
        for i in range(sectors):
            chunk = blob[i * SECTOR:(i + 1) * SECTOR].ljust(SECTOR, b"\x00")
            sector_no = base + i
            self._sectors[sector_no] = self._sector_cipher(
                subkey, sector_no
            ).apply(chunk)
        for sector_no in range(base + sectors, base + self.slot_sectors):
            self._sectors.pop(sector_no, None)
        return sectors

    def read(self, slot: int, subkey: bytes, sectors: int, nbytes: int) -> bytes:
        """Decrypt the slot's payload back to ``nbytes`` of plaintext."""
        base = self._slot_base(slot)
        parts = []
        for i in range(sectors):
            sector_no = base + i
            parts.append(
                self._sector_cipher(subkey, sector_no).apply(
                    self._sectors[sector_no]
                )
            )
        return b"".join(parts)[:nbytes]

    def read_sector(self, slot: int, subkey: bytes, index: int) -> bytes:
        """Decrypt one slot-relative sector."""
        sector_no = self._slot_base(slot) + index
        return self._sector_cipher(subkey, sector_no).apply(self._sectors[sector_no])

    def raw_sector(self, sector_no: int) -> bytes:
        """Ciphertext as a forensic scan would see it (no key required)."""
        return self._sectors[sector_no]

    def sector_number(self, slot: int, index: int) -> int:
        """The absolute sector number of a slot-relative index."""
        return self._slot_base(slot) + index

    def slot_sector_numbers(self, slot: int) -> List[int]:
        """The slot's currently-written sector numbers."""
        base = self._slot_base(slot)
        return [
            s for s in range(base, base + self.slot_sectors) if s in self._sectors
        ]

    # ----------------------------------------------------------------- erase
    def discard_slot(self, slot: int) -> int:
        """Drop the slot's ciphertext and free the slot for reuse (TRIM).
        Returns the sectors discarded."""
        dropped = 0
        for sector_no in self.slot_sector_numbers(slot):
            del self._sectors[sector_no]
            dropped += 1
        if self._used[slot]:
            self._used[slot] = False
            self._free.append(slot)
        return dropped

    def overwrite_slots(self, slots: List[int], passes: int = 3) -> int:
        """Multi-pass overwrite (NIST SP 800-88 "Purge") of several slots
        in one sweep, then discard them.  Returns total sectors overwritten
        (×1, not ×passes) — the batch is what amortizes sanitize cost when
        several units of the same group ground "permanently delete"
        together."""
        overwritten = 0
        for slot in slots:
            for sector_no in self.slot_sector_numbers(slot):
                noise = self._sectors[sector_no]
                for pass_no in range(passes):
                    noise = hashlib.sha256(
                        noise + bytes([pass_no])
                    ).digest() * (SECTOR // 32)
                    self._sectors[sector_no] = noise
                overwritten += 1
            self.discard_slot(slot)
        return overwritten

    # ----------------------------------------------------------- accounting
    @property
    def sector_count(self) -> int:
        return len(self._sectors)

    @property
    def size_bytes(self) -> int:
        """The shared header plus every written ciphertext sector."""
        return GROUP_HEADER_BYTES + self.sector_count * SECTOR

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SectorGroup(#{self.group_id}, slots={self.slots_in_use}/"
            f"{self.capacity}, sectors={self.sector_count})"
        )
