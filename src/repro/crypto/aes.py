"""AES (FIPS-197) from scratch.

A straightforward, table-based implementation of the Advanced Encryption
Standard supporting 128/192/256-bit keys.  Correctness is pinned to the
FIPS-197 appendix C test vectors in ``tests/unit/test_crypto.py``.

This is the *reference* cipher: the engines charge AES costs through the
cost model and move bulk bytes through :mod:`repro.crypto.fastcipher`;
this module exists so the cryptographic claims of the profiles ("data is
encrypted using AES-256") are backed by a real, tested implementation
rather than a label.
"""

from __future__ import annotations

from typing import List

# --------------------------------------------------------------------------
# S-box generation (from the multiplicative inverse in GF(2^8) + affine map),
# computed at import time — no magic constant tables to trust.
# --------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple:
    # Multiplicative inverses via exponentiation: a^254 = a^{-1} in GF(2^8).
    def inv(a: int) -> int:
        if a == 0:
            return 0
        result = 1
        power = a
        exponent = 254
        while exponent:
            if exponent & 1:
                result = _gf_mul(result, power)
            power = _gf_mul(power, power)
            exponent >>= 1
        return result

    sbox = [0] * 256
    for i in range(256):
        x = inv(i)
        # Affine transformation.
        y = x
        for shift in (1, 2, 3, 4):
            y ^= ((x << shift) | (x >> (8 - shift))) & 0xFF
        sbox[i] = y ^ 0x63
    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return tuple(sbox), tuple(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

_RCON = [0x01]
for _ in range(13):
    _RCON.append(_gf_mul(_RCON[-1], 2))

# Precomputed multiplication tables for MixColumns.
_MUL2 = tuple(_gf_mul(i, 2) for i in range(256))
_MUL3 = tuple(_gf_mul(i, 3) for i in range(256))
_MUL9 = tuple(_gf_mul(i, 9) for i in range(256))
_MUL11 = tuple(_gf_mul(i, 11) for i in range(256))
_MUL13 = tuple(_gf_mul(i, 13) for i in range(256))
_MUL14 = tuple(_gf_mul(i, 14) for i in range(256))


class AES:
    """AES block cipher over 16-byte blocks."""

    ROUNDS = {16: 10, 24: 12, 32: 14}

    def __init__(self, key: bytes) -> None:
        if len(key) not in self.ROUNDS:
            raise ValueError(
                f"AES key must be 16, 24, or 32 bytes, got {len(key)}"
            )
        self._rounds = self.ROUNDS[len(key)]
        self._round_keys = self._expand_key(key)

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def key_bits(self) -> int:
        return (len(self._round_keys) // (self._rounds + 1)) * 0 + (
            {10: 128, 12: 192, 14: 256}[self._rounds]
        )

    # ----------------------------------------------------------- key schedule
    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        words = [list(key[4 * i:4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self._rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]                       # RotWord
                temp = [_SBOX[b] for b in temp]                  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]                  # AES-256 extra
            words.append([w ^ t for w, t in zip(words[i - nk], temp)])
        # Group into round keys of 16 bytes, column-major state order.
        return [
            [b for word in words[4 * r:4 * r + 4] for b in word]
            for r in range(self._rounds + 1)
        ]

    # ----------------------------------------------------------- block ops
    @staticmethod
    def _add_round_key(state: List[int], round_key: List[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(s: List[int]) -> None:
        # State is column-major: s[col*4 + row].
        s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
        s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
        s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]

    @staticmethod
    def _inv_shift_rows(s: List[int]) -> None:
        s[5], s[9], s[13], s[1] = s[1], s[5], s[9], s[13]
        s[10], s[14], s[2], s[6] = s[2], s[6], s[10], s[14]
        s[15], s[3], s[7], s[11] = s[3], s[7], s[11], s[15]

    @staticmethod
    def _mix_columns(s: List[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            s[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            s[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            s[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            s[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(s: List[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            s[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            s[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            s[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            s[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]

    # ------------------------------------------------------------- interface
    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES encrypts exactly 16-byte blocks")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_no in range(1, self._rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_no])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES decrypts exactly 16-byte blocks")
        state = list(block)
        self._add_round_key(state, self._round_keys[self._rounds])
        for round_no in range(self._rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[round_no])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
