"""Scalable policy catalog for paper-scale benchmark runs.

The benchmark profiles attach 1–4 policies to every one of up to 500k data
units.  Materializing per-unit :class:`~repro.core.policy.Policy` objects
and per-unit Sieve guards at that scale costs gigabytes of interpreter
memory without changing any measured quantity: the policy *content* is
value-identical across units (the consent window each subject granted at
collection).

The catalog therefore stores the policy template once, tracks per-unit
membership as a set, and charges costs / accounts bytes exactly as the real
:class:`~repro.access.fgac.FgacController` and
:class:`~repro.access.sieve.SieveMiddleware` would —
``tests/integration/test_policycat_crossvalidation.py`` cross-validates
decision-for-decision against the real middlewares on small populations.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

from repro.access.sieve import (
    GUARD_BYTES,
    GUARD_INDEX_ENTRY_BYTES,
    GUARD_POLICY_BYTES,
)
from repro.core.entities import Entity
from repro.core.policy import Policy
from repro.sim.costs import CostModel


class ScalablePolicyCatalog:
    """Template-based policy store with FGAC/Sieve cost semantics.

    Parameters
    ----------
    mode:
        ``"joined"`` — P_GBench: policies in a separate table, every check
        pays a join probe then scans the unit's policies.
        ``"sieve"`` — P_SYS: guard-index descent, then evaluates only the
        (entity, purpose)-matching candidates; pays Sieve's metadata bytes.
    template:
        The policies attached to every enrolled unit.
    """

    MODES = ("joined", "sieve")

    def __init__(
        self, cost: CostModel, mode: str, template: Sequence[Policy]
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}")
        if not template:
            raise ValueError("template must contain at least one policy")
        self._cost = cost
        self._mode = mode
        self._template: Tuple[Policy, ...] = tuple(template)
        self._members: Set[int] = set()
        # Sieve guard candidates per (entity, purpose), precomputed once.
        self._guards: Dict[Tuple[str, str], Tuple[Policy, ...]] = {}
        for policy in self._template:
            key = (policy.entity.name, policy.purpose)
            self._guards[key] = self._guards.get(key, ()) + (policy,)

    # ---------------------------------------------------------------- manage
    @property
    def mode(self) -> str:
        return self._mode

    @property
    def policies_per_unit(self) -> int:
        return len(self._template)

    def attach_unit(self, unit_id: int) -> None:
        """Enroll a unit: one policy row per template entry; sieve mode also
        pays guard/index maintenance per policy."""
        self._members.add(unit_id)
        for _ in self._template:
            self._cost.charge_policy_insert()
            if self._mode == "sieve":
                self._cost.charge_sieve_guard_insert()

    def detach_unit(self, unit_id: int) -> int:
        if unit_id in self._members:
            self._members.discard(unit_id)
            return len(self._template)
        return 0

    @property
    def unit_count(self) -> int:
        return len(self._members)

    @property
    def policy_count(self) -> int:
        return len(self._members) * len(self._template)

    # ---------------------------------------------------------------- checks
    def evaluate(
        self, unit_id: int, entity: Entity, purpose: str, at: int
    ) -> Tuple[bool, int]:
        """(allowed, policies_evaluated) with mode-appropriate costs."""
        if unit_id not in self._members:
            if self._mode == "joined":
                self._cost.charge_policy_table_join()
            else:
                self._cost.charge_sieve_lookup()
            self._cost.charge_fgac_eval(1)
            return False, 0
        if self._mode == "joined":
            self._cost.charge_policy_table_join()
            candidates: Sequence[Policy] = self._template
        else:
            self._cost.charge_sieve_lookup()
            candidates = self._guards.get((entity.name, purpose), ())
        evaluated = 0
        for policy in candidates:
            evaluated += 1
            if policy.authorizes(purpose, entity, at):
                self._cost.charge_fgac_eval(evaluated)
                return True, evaluated
        self._cost.charge_fgac_eval(max(evaluated, 1))
        return False, evaluated

    # ----------------------------------------------------------------- space
    @property
    def size_bytes(self) -> int:
        """*Additional* metadata bytes beyond the base metadata table.

        In both profiles the base policy rows live in the engine's separate
        metadata table (whose heap the space accountant already counts), so
        "joined" mode adds nothing here; "sieve" mode adds the middleware's
        own structures: guards, guard-index entries, and denormalized policy
        copies.
        """
        if self._mode == "joined":
            return 0
        guards = self.unit_count * len(self._guards)
        denormalized = self.policy_count
        return guards * (GUARD_BYTES + GUARD_INDEX_ENTRY_BYTES) + (
            denormalized * GUARD_POLICY_BYTES
        )
