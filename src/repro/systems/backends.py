"""Storage backends — engine-specific system-actions behind one protocol.

The paper's grounding schema (Figure 2) maps a chosen interpretation of a
concept to *engine-specific* system-actions: "reversibly inaccessible" is a
flag-column write in PSQL but a flagged-value overwrite in an LSM store;
"delete" is DELETE+VACUUM in PSQL but tombstone + full compaction in an LSM
store.  :class:`StorageBackend` is the seam where those mappings plug into
the system layer: :class:`~repro.systems.database.CompliantDatabase`, the
§4.2 :class:`~repro.systems.profiles.ComplianceProfile` runners, and the
sharded :class:`~repro.distributed.store.ReplicatedStore` all speak the
concept-level vocabulary (insert / read / make-inaccessible / delete /
reclaim / sanitize / forensic-scan) and each backend realizes it with its
engine's own operations, preserving that engine's cost and retention
behaviour.

Three backends ground the evaluation:

* :class:`PsqlBackend` — wraps :class:`~repro.storage.engine.RelationalEngine`
  with the exact semantics the paper's Table 1 assumes (flag column,
  DELETE+VACUUM, DELETE+VACUUM FULL; "permanently delete" unsupported);
* :class:`LsmBackend` — wraps :class:`~repro.lsm.engine.LSMEngine`, grounding
  "reversibly inaccessible" as a flag write (overwrite with a flagged value),
  "delete" as tombstone + full compaction, and "strong delete" as a tombstone
  cascade + full compaction ("permanently delete" unsupported);
* :class:`CryptoShredBackend` — per-unit LUKS key volumes
  (:mod:`repro.crypto.luks`): every value lives encrypted under its own
  volume master key, so destroying the key (``shred``) makes the ciphertext
  unrecoverable, and pairing the shred with a multi-pass sector overwrite
  grounds **"permanently delete"** — the retrofit that fills the Table-1 row
  both native engines mark "Not supported".

Table 1, per backend (``×`` = impossible, ``✓`` = may occur):

======================= ==== ==== ==== ==============================
Erasure (psql)           IR   II   Inv  system-action(s)
======================= ==== ==== ==== ==============================
reversibly inaccessible  ×   ✓    ✓    Add new attribute
delete                   ×   ✓    ×    DELETE + VACUUM
strong delete            ×   ×    ×    DELETE + VACUUM FULL
permanently delete       ×   ×    ×    Not supported
======================= ==== ==== ==== ==============================

======================= ==============================================
Erasure (lsm)            system-action(s)
======================= ==============================================
reversibly inaccessible  flag write (overwrite with flagged value)
delete                   tombstone + full compaction
strong delete            tombstone cascade + full compaction
permanently delete       Not supported
======================= ==============================================

======================= ==============================================
Erasure (crypto-shred)   system-action(s)
======================= ==============================================
reversibly inaccessible  flag entry (key retained, value hidden)
delete                   logical delete + key shred
strong delete            logical delete cascade + key shred
permanently delete       key shred + sector sanitize  ← **supported**
======================= ==============================================

All three register their erasure groundings in
:func:`repro.core.erasure.register_erasure`; the facade selects the grounding
matching :attr:`StorageBackend.name` at construction.
"""

from __future__ import annotations

import hashlib
import pickle
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.crypto.luks import SECTOR, LuksVolume
from repro.lsm.engine import LSMEngine
from repro.lsm.memtable import TOMBSTONE
from repro.sim.costs import CostModel
from repro.storage.engine import FlaggedPayload, RelationalEngine
from repro.storage.errors import StorageError, TupleNotFoundError
from repro.storage.page import PAGE_SIZE

#: The facade's storage namespace: the PSQL table name (LSM and crypto-shred
#: stores have a single keyspace and don't use it).
DATA_TABLE = "data_units"


@dataclass(frozen=True)
class BackendStats:
    """Engine-neutral physical statistics for one backend.

    ``dead_entries`` counts physically retained but logically dead data —
    dead MVCC tuples in PSQL; tombstones plus shadowed (superseded or
    deleted-but-uncompacted) values in an LSM store; deleted-but-not-yet-
    shredded volumes in a crypto-shredding store.  That count is the
    illegal-retention surface of the paper's §1.
    """

    backend: str
    live_entries: int
    dead_entries: int
    total_bytes: int
    detail: Tuple[Tuple[str, Any], ...] = ()


class StorageBackend(ABC):
    """The system-action surface the system layer drives.

    ``name`` identifies the engine in the :class:`GroundingRegistry`
    ("psql", "lsm", "crypto-shred", …); consumers look up and select the
    erasure grounding registered under it.
    """

    #: Engine identifier used for grounding lookup.
    name: str = "abstract"

    #: Whether the engine offers a "permanently delete" system-action
    #: (advanced sanitization).  Table 1 marks the native engines False;
    #: the crypto-shredding retrofit flips it.
    supports_sanitize: bool = False

    def __init__(self) -> None:
        #: Reclamation passes run (VACUUM / full compaction / key-shred
        #: sweeps) — the profile runners report these per Figure 4.
        self.reclaim_count = 0
        self.reclaim_full_count = 0

    # ------------------------------------------------------------------- DML
    @abstractmethod
    def insert(self, unit_id: Any, value: Any, fresh: bool = False) -> None:
        """Store a new unit's value.

        ``fresh=True`` is the COPY-style bulk-load contract: the caller
        guarantees the id is unused, so engines may skip uniqueness probes.
        """

    @abstractmethod
    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        """Bulk-load ``(unit_id, value)`` pairs; returns the count stored.

        The facade guarantees fresh ids (its model rejects duplicates), so
        backends may skip per-key uniqueness probes — the COPY-style path.
        """

    @abstractmethod
    def read(self, unit_id: Any) -> Any:
        """The unit's current value; raises ``TupleNotFoundError`` if the
        unit holds no live value.  Reversibly-inaccessible values are
        returned unwrapped — visibility policy is the facade's job."""

    @abstractmethod
    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        """Batch point reads, same semantics as :meth:`read` per id."""

    @abstractmethod
    def update(self, unit_id: Any, value: Any) -> None:
        """Replace the unit's value."""

    def commit(self) -> None:
        """Durability point after a user-visible transaction (WAL flush on
        engines that keep one; a no-op elsewhere)."""

    # ------------------------------------------- reversible inaccessibility
    @abstractmethod
    def make_inaccessible(self, unit_id: Any) -> None:
        """The weakest erasure grounding: hide the value reversibly."""

    @abstractmethod
    def restore(self, unit_id: Any) -> None:
        """Invert :meth:`make_inaccessible`."""

    @abstractmethod
    def is_inaccessible(self, unit_id: Any) -> bool:
        """Whether the unit is currently reversibly inaccessible."""

    # ------------------------------------------------------ physical erasure
    @abstractmethod
    def delete(self, unit_id: Any) -> None:
        """Logically remove the value (dead tuple / tombstone / dead volume)
        without reclaiming physical space."""

    @abstractmethod
    def _reclaim(self) -> None:
        """Engine-specific reclamation (VACUUM / full compaction / shred
        sweep) — wrapped by :meth:`reclaim`, which counts the passes."""

    @abstractmethod
    def _reclaim_full(self) -> None:
        """The strongest reclamation the engine offers — wrapped by
        :meth:`reclaim_full`."""

    def reclaim(self) -> None:
        """Make logically deleted values physically unrecoverable — the
        second half of the "delete" grounding."""
        self.reclaim_count += 1
        self._reclaim()

    def reclaim_full(self) -> None:
        """The strongest reclamation (VACUUM FULL / full compaction / shred
        + space release) — the second half of the "strong delete" grounding."""
        self.reclaim_full_count += 1
        self._reclaim_full()

    def erase(self, unit_id: Any) -> None:
        """The full "delete" grounding: logical delete + reclamation."""
        self.delete(unit_id)
        self.reclaim()

    def erase_many(self, unit_ids: Sequence[Any], strong: bool = False) -> int:
        """Batch physical erase: delete every unit, then reclaim once.

        Amortizing the reclamation over the batch is exactly how a real
        deployment grounds high-volume erasure; single-unit semantics are
        preserved by :meth:`erase`.
        """
        count = 0
        for unit_id in unit_ids:
            self.delete(unit_id)
            count += 1
        if strong:
            self.reclaim_full()
        else:
            self.reclaim()
        return count

    def sanitize(self, unit_id: Any) -> None:
        """The "permanently delete" system-action: advanced sanitization of
        the unit's physical footprint.  Unsupported by default — the paper's
        point is that native engines must be *retrofitted* (§1)."""
        raise StorageError(
            f"{self.name} has no sanitization system-action "
            "(Table 1: permanently delete = Not supported)"
        )

    def maintain(self) -> None:
        """Run any deferred background maintenance the engine has queued
        (compaction work on LSM engines).  A no-op by default — engines
        whose reclamation is purely demand-driven have nothing to do
        between operations."""

    # ----------------------------------------------------------- bulk export
    def export_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, Any]]:
        """Live ``(unit_id, value)`` pairs whose id the predicate selects —
        the source side of a shard migration ("range" = a hash-ring arc,
        expressed as a predicate since ring ranges wrap).

        Reversibly-inaccessible units are exported wrapped in
        :class:`FlaggedPayload` whatever mechanism the engine uses for the
        flag (column, flag write, out-of-band bit), and
        :meth:`import_batch` re-grounds the wrapper on arrival — a
        migration must never silently undo a compliance-mandated
        reversible erase at the key's new home.

        The generic path scans the physical layout once and batch-reads the
        matches; engines override it with their native scan (PSQL seq scan,
        LSM merged run scan, crypto-shred volume sweep).
        """
        keys = sorted(
            {k for k, live in self.forensic_scan() if live and predicate(k)},
            key=repr,
        )
        out: List[Tuple[Any, Any]] = []
        for key, value in zip(keys, self.read_many(keys)):
            if self.is_inaccessible(key):
                value = FlaggedPayload(True, value)
            out.append((key, value))
        return out

    def import_batch(self, items: Sequence[Tuple[Any, Any]]) -> int:
        """Destination side of a shard migration: bulk-load ``(unit_id,
        value)`` pairs through the COPY-style path and hit a durability
        point, so the imported copies survive exactly like written ones.
        The migration planner guarantees the ids are fresh on this node.

        ``FlaggedPayload``-wrapped values (reversibly-inaccessible units in
        transit) are unwrapped and re-grounded through this engine's own
        flag mechanism, preserving the inaccessibility across the move.
        """
        items = list(items)
        plain = [
            (k, v) for k, v in items if not isinstance(v, FlaggedPayload)
        ]
        count = self.insert_many(plain) if plain else 0
        for key, value in items:
            if isinstance(value, FlaggedPayload):
                self.insert(key, value.value, fresh=True)
                if value.flagged:
                    self.make_inaccessible(key)
                count += 1
        self.commit()
        return count

    def purge_history(self, unit_id: Any) -> int:
        """Scrub the unit's traces from the engine's recovery log, if it
        keeps one (the P_SYS erase grounding).  Returns records purged."""
        return 0

    def log_holds_value(self, unit_id: Any) -> bool:
        """Whether the engine's recovery log still retains a recoverable
        copy of the unit's value — a tracked copy location (§1)."""
        return False

    # -------------------------------------------------------------- forensics
    @abstractmethod
    def physically_present(self, unit_id: Any) -> bool:
        """Whether a disk inspection would still recover the unit's value
        from *any* physical location the engine controls (heap, runs,
        recovery log)."""

    @abstractmethod
    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        """Every physical entry as ``(unit_id, live)`` pairs, logically dead
        data included — the illegal-retention primitive."""

    @abstractmethod
    def exists(self, unit_id: Any) -> bool:
        """Whether a live value exists for the unit."""

    @abstractmethod
    def stats(self) -> BackendStats:
        """Physical statistics for the bench harness."""

    # -------------------------------------------------------- space accounting
    def data_bytes(self) -> int:
        """Bytes attributable to stored values (heap / runs / sectors)."""
        return self.stats().total_bytes

    def index_bytes(self) -> int:
        """Bytes attributable to access structures (B-tree, Bloom filters)."""
        return 0

    def log_bytes(self) -> int:
        """Bytes held by the engine's recovery log, if any."""
        return 0


class PsqlBackend(StorageBackend):
    """Table-1's PSQL column, verbatim.

    All calls delegate to one :class:`RelationalEngine` table; semantics and
    cost charging are exactly those of the engine methods the facade
    previously called inline.  The engine's WAL is a tracked copy location:
    :meth:`physically_present` counts row images lingering in the log, and
    the reclamation passes scrub them (see :mod:`repro.storage.wal`).
    """

    name = "psql"

    def __init__(
        self,
        cost: CostModel,
        row_bytes: int = 70,
        table: str = DATA_TABLE,
        engine: Optional[RelationalEngine] = None,
        flag_column: bool = True,
        **engine_opts: Any,
    ) -> None:
        super().__init__()
        self.table = table
        self.engine = (
            engine if engine is not None else RelationalEngine(cost, **engine_opts)
        )
        if not self.engine.has_table(table):
            self.engine.create_table(table, row_bytes, flag_column=flag_column)

    # ------------------------------------------------------------------- DML
    def insert(self, unit_id: Any, value: Any, fresh: bool = False) -> None:
        self.engine.insert(self.table, unit_id, value, check_duplicate=not fresh)

    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        return self.engine.insert_many(self.table, items, check_duplicate=False)

    def read(self, unit_id: Any) -> Any:
        return self.engine.read(self.table, unit_id)

    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        return self.engine.read_many(self.table, unit_ids)

    def update(self, unit_id: Any, value: Any) -> None:
        self.engine.update(self.table, unit_id, value)

    def commit(self) -> None:
        self.engine.wal.flush()

    # ------------------------------------------- reversible inaccessibility
    def make_inaccessible(self, unit_id: Any) -> None:
        self.engine.set_flag(self.table, unit_id, True)

    def restore(self, unit_id: Any) -> None:
        self.engine.set_flag(self.table, unit_id, False)

    def is_inaccessible(self, unit_id: Any) -> bool:
        return self.engine.is_flagged(self.table, unit_id)

    # ------------------------------------------------------ physical erasure
    def delete(self, unit_id: Any) -> None:
        self.engine.delete(self.table, unit_id)

    def _reclaim(self) -> None:
        self.engine.vacuum(self.table)

    def _reclaim_full(self) -> None:
        self.engine.vacuum_full(self.table)

    def purge_history(self, unit_id: Any) -> int:
        return self.engine.wal.purge_key(self.table, unit_id)

    def log_holds_value(self, unit_id: Any) -> bool:
        return self.engine.wal_holds_value(self.table, unit_id)

    # ----------------------------------------------------------- bulk export
    def export_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, Any]]:
        """Sequential scan over live tuples, filtered by key — the COPY-out
        side of a shard migration.  Rows whose retrofit flag column is set
        travel as :class:`FlaggedPayload` so the flag state survives the
        move (the column itself is not part of the payload)."""
        out: List[Tuple[Any, Any]] = []
        for key, value in self.engine.seq_scan(
            self.table, lambda key, _value: predicate(key)
        ):
            if self.engine.is_flagged(self.table, key):
                value = FlaggedPayload(True, value)
            out.append((key, value))
        return sorted(out, key=lambda kv: repr(kv[0]))

    # -------------------------------------------------------------- forensics
    def physically_present(self, unit_id: Any) -> bool:
        if any(
            key == unit_id for key, _live in self.engine.forensic_scan(self.table)
        ):
            return True
        # The WAL keeps row images replayable until scrubbed/recycled — a
        # disk inspection of the log segments recovers them just the same.
        return self.engine.wal_holds_value(self.table, unit_id)

    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        return self.engine.forensic_scan(self.table)

    def exists(self, unit_id: Any) -> bool:
        return self.engine.exists(self.table, unit_id)

    def stats(self) -> BackendStats:
        s = self.engine.stats(self.table)
        return BackendStats(
            backend=self.name,
            live_entries=s.live_tuples,
            dead_entries=s.dead_tuples,
            total_bytes=s.total_bytes,
            detail=(
                ("pages", s.pages),
                ("index_dead_entries", s.index_dead_entries),
                ("dead_fraction", s.dead_fraction),
            ),
        )

    def data_bytes(self) -> int:
        return self.engine.stats(self.table).heap_bytes

    def index_bytes(self) -> int:
        return self.engine.stats(self.table).index_bytes

    def log_bytes(self) -> int:
        return self.engine.wal.size_bytes


class LsmBackend(StorageBackend):
    """The LSM grounding of Table 1.

    * "reversibly inaccessible" ↦ *flag write*: overwrite the key with a
      :class:`FlaggedPayload`-wrapped value — invertible, and the value stays
      physically present (same Inv/II profile as PSQL's flag column);
    * "delete" ↦ *tombstone + full compaction*: the tombstone alone leaves
      shadowed values in older runs (the §1 retention hazard); the paired
      full compaction drops them and the tombstone;
    * "strong delete" ↦ *tombstone cascade + full compaction*: tombstone the
      unit and its identifying descendants, then compact once.

    Keys are upserted (LSM put semantics); the facade's model layer enforces
    unit-id uniqueness.

    ``compaction`` selects the engine's :class:`CompactionPolicy` ("size" —
    the size-tiered default — or "leveled", or a policy instance);
    ``compaction_mode`` selects the scheduler ("sync" runs merges inside
    the flush, "deferred" queues them for :meth:`maintain`).  Either way
    the grounded erase (``reclaim`` = full compaction) stays synchronous.
    """

    name = "lsm"

    def __init__(
        self,
        cost: CostModel,
        row_bytes: int = 70,
        engine: Optional[LSMEngine] = None,
        memtable_capacity: int = 4096,
        tier_threshold: int = 4,
        block_cache_capacity: int = 1024,
        compaction: Any = "size",
        compaction_mode: str = "sync",
    ) -> None:
        super().__init__()
        self._row_bytes = row_bytes
        self.engine = (
            engine
            if engine is not None
            else LSMEngine(
                cost,
                payload_bytes=row_bytes,
                memtable_capacity=memtable_capacity,
                tier_threshold=tier_threshold,
                block_cache_capacity=block_cache_capacity,
                compaction=compaction,
                compaction_mode=compaction_mode,
            )
        )

    # ------------------------------------------------------------------- DML
    def insert(self, unit_id: Any, value: Any, fresh: bool = False) -> None:
        self.engine.put(unit_id, value)

    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        return self.engine.put_many(items)

    def read(self, unit_id: Any) -> Any:
        value = self.engine.get(unit_id)
        if value is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        if isinstance(value, FlaggedPayload):
            value = value.value
        return value

    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        return [self.read(unit_id) for unit_id in unit_ids]

    def update(self, unit_id: Any, value: Any) -> None:
        if self.engine.get(unit_id) is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        self.engine.put(unit_id, value)

    # ------------------------------------------- reversible inaccessibility
    def make_inaccessible(self, unit_id: Any) -> None:
        value = self.engine.get(unit_id)
        if value is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        if isinstance(value, FlaggedPayload):
            value.flagged = True
            return
        self.engine.put(unit_id, FlaggedPayload(True, value))

    def restore(self, unit_id: Any) -> None:
        value = self.engine.get(unit_id)
        if not isinstance(value, FlaggedPayload):
            raise StorageError(f"lsm: key {unit_id!r} is not flagged")
        self.engine.put(unit_id, value.value)

    def is_inaccessible(self, unit_id: Any) -> bool:
        value = self.engine.get(unit_id)
        if value is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        return isinstance(value, FlaggedPayload) and value.flagged

    # ------------------------------------------------------ physical erasure
    def delete(self, unit_id: Any) -> None:
        self.engine.delete(unit_id)

    def _reclaim(self) -> None:
        self.engine.full_compaction()

    def _reclaim_full(self) -> None:
        self.engine.full_compaction()

    def maintain(self) -> None:
        """Run any compaction work the deferred scheduler has queued — the
        between-operations hook of the compaction subsystem."""
        self.engine.run_pending_compactions()

    # ----------------------------------------------------------- bulk export
    def export_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, Any]]:
        """Merged newest-live scan over memtable + every run, filtered by
        key.  Values come back as stored — ``FlaggedPayload`` wrappers
        included — so migration preserves reversible-inaccessibility state.
        """
        return self.engine.live_items(predicate)

    # -------------------------------------------------------------- forensics
    def physically_present(self, unit_id: Any) -> bool:
        return self.engine.physically_present(unit_id)

    def copy_sites(self, unit_id: Any) -> List[str]:
        """Every physical site still holding a real value for the unit —
        the memtable and each SSTable, named by level.  Pre-compaction
        copies keep their own entries until the rewrite removes the table,
        which is what lets a distributed ``copies_of`` stay honest while
        compaction is pending."""
        return self.engine.copy_sites(unit_id)

    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        newest: Dict[Any, Tuple[int, Any]] = {}
        physical: List[Tuple[Any, int, Any]] = []
        for key, (seqno, value) in self.engine.memtable_entries():
            physical.append((key, seqno, value))
            if key not in newest or seqno > newest[key][0]:
                newest[key] = (seqno, value)
        for run in self.engine.runs():
            for key, seqno, value in run.entries():
                physical.append((key, seqno, value))
                if key not in newest or seqno > newest[key][0]:
                    newest[key] = (seqno, value)
        out: List[Tuple[Any, bool]] = []
        for key, seqno, value in physical:
            if value is TOMBSTONE:
                continue  # tombstones carry no recoverable value
            top_seqno, top_value = newest[key]
            out.append((key, seqno == top_seqno and top_value is not TOMBSTONE))
        return out

    def exists(self, unit_id: Any) -> bool:
        return self.engine.get(unit_id) is not None

    def stats(self) -> BackendStats:
        scan = self.forensic_scan()
        live = sum(1 for _key, is_live in scan if is_live)
        buffered = sum(1 for _ in self.engine.memtable_entries())
        return BackendStats(
            backend=self.name,
            live_entries=live,
            dead_entries=(len(scan) - live) + self.engine.tombstone_count,
            total_bytes=self.engine.total_bytes() + buffered * self._row_bytes,
            detail=(
                ("runs", self.engine.run_count),
                ("levels", self.engine.level_count),
                ("compaction_policy", self.engine.compaction_policy.name),
                ("tombstones", self.engine.tombstone_count),
                ("flushes", self.engine.flush_count),
                ("compactions", self.engine.compaction_count),
                ("write_amplification", self.engine.write_amplification),
                ("cache_hits", self.engine.cache_hits),
                ("cache_misses", self.engine.cache_misses),
            ),
        )

    def data_bytes(self) -> int:
        buffered = sum(1 for _ in self.engine.memtable_entries())
        return (
            self.engine.total_bytes()
            - self.index_bytes()
            + buffered * self._row_bytes
        )

    def index_bytes(self) -> int:
        return sum(run.bloom_bytes for run in self.engine.runs())


class _ShredVolume:
    """One unit's encrypted footprint: a LUKS volume plus bookkeeping."""

    __slots__ = ("volume", "sectors", "nbytes", "live", "flagged", "sanitized")

    def __init__(self, volume: LuksVolume, sectors: int, nbytes: int) -> None:
        self.volume = volume
        self.sectors = sectors
        self.nbytes = nbytes
        self.live = True
        self.flagged = False
        self.sanitized = False


class CryptoShredBackend(StorageBackend):
    """Crypto-shredding: the retrofit that grounds "permanently delete".

    Every unit's value is pickled and encrypted onto its **own**
    :class:`LuksVolume` under a per-unit master key; the plaintext never
    exists at rest.  The erasure interpretations then ground as:

    * "reversibly inaccessible" ↦ *flag entry*: a visibility flag beside the
      key slot — the key survives, so the transformation is invertible and
      the value stays recoverable (same Inv/II profile as the flag column);
    * "delete" ↦ *logical delete + key shred*: marking the entry dead is the
      O(1) step; the paired reclamation destroys the dead volumes' headers
      (master key + key slots), after which the ciphertext is unrecoverable
      — the crypto-erase analogue of VACUUM;
    * "strong delete" ↦ the same shred applied over the cascade;
    * "permanently delete" ↦ *key shred + sector sanitize*: in addition to
      the header destruction, every ciphertext sector is multi-pass
      overwritten (NIST SP 800-88 "Purge"), charged through
      :meth:`CostModel.charge_sanitize` — the Table-1 row no native engine
      supports.

    Retention honesty: between ``delete`` and the reclamation the key still
    exists, so the value is *recoverable* — those entries count as
    ``dead_entries`` and show up in :meth:`forensic_scan`, exactly like dead
    MVCC tuples or shadowed LSM values (§1).
    """

    name = "crypto-shred"
    supports_sanitize = True

    def __init__(self, cost: CostModel, row_bytes: int = 70) -> None:
        super().__init__()
        self._cost = cost
        self._row_bytes = row_bytes
        self._entries: Dict[Any, _ShredVolume] = {}
        # Dead volumes displaced by a re-insert over their unit id: their
        # keys are still intact, so they stay in the retention accounting
        # until a reclamation pass shreds them (§1 honesty).
        self._graveyard: List[Tuple[Any, _ShredVolume]] = []
        # Ciphertext bytes of shredded graveyard volumes: unrecoverable
        # noise still occupying disk until a full reclamation releases it.
        self._residue_bytes = 0
        self._key_counter = 0
        self.shred_count = 0
        self.sanitize_count = 0

    # --------------------------------------------------------------- internals
    def _master_key(self, unit_id: Any) -> bytes:
        self._key_counter += 1
        seed = f"unit-key/{self._key_counter}/{unit_id!r}".encode()
        return hashlib.sha256(seed).digest()

    def _entry(self, unit_id: Any) -> _ShredVolume:
        entry = self._entries.get(unit_id)
        if entry is None or not entry.live:
            raise TupleNotFoundError(
                f"crypto-shred: no live value for key {unit_id!r}"
            )
        return entry

    def _write_value(self, entry: _ShredVolume, value: Any) -> None:
        blob = pickle.dumps(value)
        entry.nbytes = len(blob)
        entry.sectors = max(1, (len(blob) + SECTOR - 1) // SECTOR)
        for sector_no in range(entry.sectors):
            entry.volume.write_sector(
                sector_no, blob[sector_no * SECTOR:(sector_no + 1) * SECTOR]
            )
        # A shrinking rewrite must not leave stale tail ciphertext behind —
        # the old value would stay recoverable under the still-live key.
        entry.volume.discard_sectors(entry.sectors)
        self._cost.charge_luks(max(len(blob), self._row_bytes))
        self._cost.charge_page_write(entry.sectors * SECTOR / PAGE_SIZE)

    def _read_value(self, entry: _ShredVolume) -> Any:
        blob = b"".join(
            entry.volume.read_sector(s) for s in range(entry.sectors)
        )[: entry.nbytes]
        self._cost.charge_page_read()
        self._cost.charge_luks(max(entry.nbytes, self._row_bytes))
        return pickle.loads(blob)

    def _shred(self, entry: _ShredVolume) -> None:
        """Destroy the volume header — one page write, keys gone forever."""
        if not entry.volume.is_shredded:
            entry.volume.shred()
            self._cost.charge_page_write()
            self.shred_count += 1

    # ------------------------------------------------------------------- DML
    def insert(self, unit_id: Any, value: Any, fresh: bool = False) -> None:
        existing = self._entries.get(unit_id)
        if existing is not None and existing.live:
            raise StorageError(
                f"crypto-shred: key {unit_id!r} already holds a live value"
            )
        if (
            existing is not None
            and existing.sectors > 0
            and not existing.volume.is_shredded
        ):
            # The displaced dead volume's key is still intact: keep it in
            # the retention accounting until a reclamation shreds it.
            self._graveyard.append((unit_id, existing))
        entry = _ShredVolume(LuksVolume(self._master_key(unit_id)), 0, 0)
        self._write_value(entry, value)
        self._entries[unit_id] = entry

    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        count = 0
        for unit_id, value in items:
            self.insert(unit_id, value, fresh=True)
            count += 1
        return count

    def read(self, unit_id: Any) -> Any:
        return self._read_value(self._entry(unit_id))

    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        return [self.read(unit_id) for unit_id in unit_ids]

    def update(self, unit_id: Any, value: Any) -> None:
        # In-place sector overwrite under the same key — no MVCC bloat.
        self._write_value(self._entry(unit_id), value)

    # ------------------------------------------- reversible inaccessibility
    def make_inaccessible(self, unit_id: Any) -> None:
        self._entry(unit_id).flagged = True
        self._cost.charge_page_write()

    def restore(self, unit_id: Any) -> None:
        entry = self._entries.get(unit_id)
        if entry is None or not entry.live or not entry.flagged:
            raise StorageError(f"crypto-shred: key {unit_id!r} is not flagged")
        entry.flagged = False
        self._cost.charge_page_write()

    def is_inaccessible(self, unit_id: Any) -> bool:
        return self._entry(unit_id).flagged

    # ------------------------------------------------------ physical erasure
    def delete(self, unit_id: Any) -> None:
        entry = self._entry(unit_id)
        entry.live = False
        self._cost.charge_tuple_cpu()

    def _reclaim(self) -> None:
        """Shred the keys of every dead entry (graveyard included) —
        crypto-erase.

        The pass sweeps the volume catalog to find dead entries (the
        analogue of VACUUM's heap scan), so batching erases amortizes it.
        """
        self._cost.charge_tuple_cpu(len(self._entries) + len(self._graveyard))
        for entry in self._entries.values():
            if not entry.live:
                self._shred(entry)
        # Shredded graveyard volumes leave the scan set for good — only
        # their (unrecoverable) ciphertext bytes keep occupying disk.
        for _unit_id, entry in self._graveyard:
            self._shred(entry)
            self._residue_bytes += entry.sectors * SECTOR
        self._graveyard.clear()

    def _reclaim_full(self) -> None:
        """Shred dead entries' keys and release their ciphertext space."""
        self._cost.charge_tuple_cpu(len(self._entries) + len(self._graveyard))
        for unit_id in list(self._entries):
            entry = self._entries[unit_id]
            if entry.live:
                continue
            self._shred(entry)
            entry.volume.discard_sectors()
            entry.sectors = 0
        for _unit_id, entry in self._graveyard:
            self._shred(entry)
            entry.volume.discard_sectors()
            entry.sectors = 0
        self._graveyard.clear()
        self._residue_bytes = 0  # the full pass releases the noise too

    def sanitize(self, unit_id: Any) -> None:
        """Key shred + multi-pass overwrite of the ciphertext sectors —
        Table 1's "permanently delete", charged as sanitization work."""
        entry = self._entries.get(unit_id)
        if entry is None:
            raise TupleNotFoundError(f"crypto-shred: unknown key {unit_id!r}")
        victims = [entry] + [e for uid, e in self._graveyard if uid == unit_id]
        self._graveyard = [
            (uid, e) for uid, e in self._graveyard if uid != unit_id
        ]
        pages = 0
        for victim in victims:
            self._shred(victim)
            pages += max(1, (victim.sectors * SECTOR + PAGE_SIZE - 1) // PAGE_SIZE)
            victim.volume.discard_sectors()
            victim.sectors = 0
            victim.nbytes = 0
            victim.sanitized = True
        self._cost.charge_sanitize(pages)
        entry.live = False
        self.sanitize_count += 1

    # ----------------------------------------------------------- bulk export
    def export_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, Any]]:
        """Decrypt-and-export every live volume the predicate selects: the
        plaintext exists only in transit, and the source volumes stay
        intact (and tracked) until the migration's grounded erase shreds
        their keys.  Flagged (reversibly-inaccessible) entries travel as
        :class:`FlaggedPayload` so the out-of-band visibility bit survives
        the move."""
        self._cost.charge_tuple_cpu(len(self._entries))  # catalog sweep
        out: List[Tuple[Any, Any]] = []
        for unit_id, entry in self._entries.items():
            if not entry.live or not predicate(unit_id):
                continue
            value = self._read_value(entry)
            if entry.flagged:
                value = FlaggedPayload(True, value)
            out.append((unit_id, value))
        return sorted(out, key=lambda kv: repr(kv[0]))

    # -------------------------------------------------------------- forensics
    def physically_present(self, unit_id: Any) -> bool:
        """Recoverable ⟺ ciphertext sectors remain *and* the key survives.

        After a key shred the sectors may still sit on disk, but without
        the master key a forensic scan sees only noise — that asymmetry is
        the whole point of the crypto-shredding grounding.
        """
        entry = self._entries.get(unit_id)
        if entry is not None and entry.sectors > 0 and not entry.volume.is_shredded:
            return True
        return any(
            uid == unit_id and e.sectors > 0 and not e.volume.is_shredded
            for uid, e in self._graveyard
        )

    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        out = [
            (unit_id, entry.live)
            for unit_id, entry in self._entries.items()
            if entry.sectors > 0 and not entry.volume.is_shredded
        ]
        out.extend(
            (uid, False)
            for uid, e in self._graveyard
            if e.sectors > 0 and not e.volume.is_shredded
        )
        return out

    def exists(self, unit_id: Any) -> bool:
        entry = self._entries.get(unit_id)
        return entry is not None and entry.live

    def stats(self) -> BackendStats:
        live = sum(1 for e in self._entries.values() if e.live)
        graveyard = [e for _uid, e in self._graveyard]
        recoverable_dead = sum(
            1
            for e in list(self._entries.values()) + graveyard
            if not e.live and e.sectors > 0 and not e.volume.is_shredded
        )
        header_bytes = 512  # LUKS header + key-slot area, per volume
        total = self._residue_bytes + sum(
            e.sectors * SECTOR + (0 if e.sanitized else header_bytes)
            for e in list(self._entries.values()) + graveyard
        )
        return BackendStats(
            backend=self.name,
            live_entries=live,
            dead_entries=recoverable_dead,
            total_bytes=total,
            detail=(
                ("volumes", len(self._entries)),
                ("shredded", self.shred_count),
                ("sanitized", self.sanitize_count),
            ),
        )

    def data_bytes(self) -> int:
        return self.stats().total_bytes


#: Backend name → constructor, the selection table for every consumer.
BACKENDS: Dict[str, Type[StorageBackend]] = {
    PsqlBackend.name: PsqlBackend,
    LsmBackend.name: LsmBackend,
    CryptoShredBackend.name: CryptoShredBackend,
}


def make_backend(
    name: str, cost: CostModel, row_bytes: int = 70, **kwargs: Any
) -> StorageBackend:
    """Construct a backend by engine name ("psql", "lsm", "crypto-shred")."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return cls(cost, row_bytes=row_bytes, **kwargs)


class BackendGroup:
    """Named storage namespaces over one engine family.

    The §4.2 profile runners need several tables (personal data, GDPR
    metadata, plain data); this group hands each namespace a
    :class:`StorageBackend` while sharing physical infrastructure the way
    the engine family would:

    * ``psql`` — one :class:`RelationalEngine` instance carries every
      namespace as a table (one WAL, one buffer pool), exactly the paper's
      single-PSQL deployment;
    * ``lsm`` / ``crypto-shred`` — single-keyspace engines get one engine
      per namespace (column-family style).

    ``engine_opts`` are family-specific tuning knobs, forwarded to the
    shared :class:`RelationalEngine` (psql) or to each per-namespace
    backend constructor (others).
    """

    def __init__(
        self,
        name: str,
        cost: CostModel,
        engine_opts: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if name not in BACKENDS:
            raise KeyError(
                f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
            )
        self.name = name
        self._cost = cost
        self._opts = dict(engine_opts or {})
        self._stores: Dict[str, StorageBackend] = {}
        self.engine: Optional[RelationalEngine] = (
            RelationalEngine(cost, **self._opts)
            if name == PsqlBackend.name
            else None
        )

    def create(
        self, namespace: str, row_bytes: int, flag_column: bool = False
    ) -> StorageBackend:
        """Create (and return) the backend for a new namespace."""
        if namespace in self._stores:
            raise ValueError(f"namespace {namespace!r} already exists")
        if self.engine is not None:
            store: StorageBackend = PsqlBackend(
                self._cost,
                row_bytes=row_bytes,
                table=namespace,
                engine=self.engine,
                flag_column=flag_column,
            )
        else:
            store = make_backend(
                self.name, self._cost, row_bytes=row_bytes, **self._opts
            )
        self._stores[namespace] = store
        return store

    def store(self, namespace: str) -> StorageBackend:
        return self._stores[namespace]

    def __contains__(self, namespace: str) -> bool:
        return namespace in self._stores

    def commit(self) -> None:
        """One durability point for the whole group (single WAL on psql)."""
        if self.engine is not None:
            self.engine.wal.flush()
        else:
            for store in self._stores.values():
                store.commit()

    def log_bytes(self) -> int:
        if self.engine is not None:
            return self.engine.wal.size_bytes
        return sum(store.log_bytes() for store in self._stores.values())

    @property
    def reclaim_count(self) -> int:
        return sum(s.reclaim_count for s in self._stores.values())

    @property
    def reclaim_full_count(self) -> int:
        return sum(s.reclaim_full_count for s in self._stores.values())
