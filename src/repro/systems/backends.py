"""Storage backends — engine-specific system-actions behind one protocol.

The paper's grounding schema (Figure 2) maps a chosen interpretation of a
concept to *engine-specific* system-actions: "reversibly inaccessible" is a
flag-column write in PSQL but a flagged-value overwrite in an LSM store;
"delete" is DELETE+VACUUM in PSQL but tombstone + full compaction in an LSM
store.  :class:`StorageBackend` is the seam where those mappings plug into
the system layer: :class:`~repro.systems.database.CompliantDatabase`, the
§4.2 :class:`~repro.systems.profiles.ComplianceProfile` runners, and the
sharded :class:`~repro.distributed.store.ReplicatedStore` all speak the
concept-level vocabulary (insert / read / make-inaccessible / delete /
reclaim / sanitize / forensic-scan) and each backend realizes it with its
engine's own operations, preserving that engine's cost and retention
behaviour.

Three backends ground the evaluation:

* :class:`PsqlBackend` — wraps :class:`~repro.storage.engine.RelationalEngine`
  with the exact semantics the paper's Table 1 assumes (flag column,
  DELETE+VACUUM, DELETE+VACUUM FULL; "permanently delete" unsupported);
* :class:`LsmBackend` — wraps :class:`~repro.lsm.engine.LSMEngine`, grounding
  "reversibly inaccessible" as a flag write (overwrite with a flagged value),
  "delete" as tombstone + full compaction, and "strong delete" as a tombstone
  cascade + full compaction ("permanently delete" unsupported);
* :class:`CryptoShredBackend` — vault-keyed packed sector groups
  (:mod:`repro.crypto.vault` + :mod:`repro.crypto.sectors`): every value
  lives encrypted under its own subkey, KDF-derived from a per-unit master
  key held in a shared :class:`KeyVault`, so destroying the vault entry
  (``shred``) makes the ciphertext unrecoverable, and pairing the shred
  with a multi-pass sector overwrite grounds **"permanently delete"** — the
  retrofit that fills the Table-1 row both native engines mark "Not
  supported".  Units pack ~16 per :class:`SectorGroup` sharing one header,
  so the space factor stays near the relational heap's instead of the 3x a
  volume-per-unit layout costs.

Table 1, per backend (``×`` = impossible, ``✓`` = may occur):

======================= ==== ==== ==== ==============================
Erasure (psql)           IR   II   Inv  system-action(s)
======================= ==== ==== ==== ==============================
reversibly inaccessible  ×   ✓    ✓    Add new attribute
delete                   ×   ✓    ×    DELETE + VACUUM
strong delete            ×   ×    ×    DELETE + VACUUM FULL
permanently delete       ×   ×    ×    Not supported
======================= ==== ==== ==== ==============================

======================= ==============================================
Erasure (lsm)            system-action(s)
======================= ==============================================
reversibly inaccessible  flag write (overwrite with flagged value)
delete                   tombstone + full compaction
strong delete            tombstone cascade + full compaction
permanently delete       Not supported
======================= ==============================================

======================= ==============================================
Erasure (crypto-shred)   system-action(s)
======================= ==============================================
reversibly inaccessible  flag entry (key retained, value hidden)
delete                   logical delete + key shred
strong delete            logical delete cascade + key shred
permanently delete       key shred + sector sanitize  ← **supported**
======================= ==============================================

All three register their erasure groundings in
:func:`repro.core.erasure.register_erasure`; the facade selects the grounding
matching :attr:`StorageBackend.name` at construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro import codec
from repro.config import BackendConfig
from repro.core.locations import CopyLocation
from repro.crypto.sectors import (
    GROUP_CAPACITY,
    MAX_SLOT_SECTORS,
    SECTOR,
    SectorGroup,
    derive_subkey,
)
from repro.crypto.vault import KEY_ENTRY_BYTES, VAULT_HEADER_BYTES, KeyVault
from repro.lsm.cache import SharedBlockCache
from repro.lsm.compaction import EMPTY_COMPACTION_STATS, CompactionStats
from repro.lsm.engine import LSMEngine
from repro.lsm.memtable import TOMBSTONE
from repro.sim.costs import CostModel
from repro.storage.engine import FlaggedPayload, RelationalEngine
from repro.storage.errors import StorageError, TupleNotFoundError
from repro.storage.page import PAGE_SIZE

#: The facade's storage namespace: the PSQL table name (LSM and crypto-shred
#: stores have a single keyspace and don't use it).
DATA_TABLE = "data_units"


@dataclass(frozen=True)
class BackendStats:
    """Engine-neutral physical statistics for one backend.

    ``dead_entries`` counts physically retained but logically dead data —
    dead MVCC tuples in PSQL; tombstones plus shadowed (superseded or
    deleted-but-uncompacted) values in an LSM store; deleted-but-not-yet-
    shredded volumes in a crypto-shredding store.  That count is the
    illegal-retention surface of the paper's §1.
    """

    backend: str
    live_entries: int
    dead_entries: int
    total_bytes: int
    detail: Tuple[Tuple[str, Any], ...] = ()


class ExportBatch:
    """An in-flight encoded migration batch, tracked as a copy site.

    ``export_encoded_range`` hands out *real value copies* — blobs that
    live outside the engine until the destination imports them.  While a
    batch is open the source backend reports every unit it carries as a
    ``(CopyLocation.MIGRATION, name)`` site, so a mid-migration
    ``erase_all_copies`` sees the batch instead of silently leaving a copy
    in transit.  A grounded erase on the source *scrubs* the unit from the
    batch (:meth:`discard`); closing the batch (or leaving its ``with``
    block) releases the site.
    """

    __slots__ = ("name", "_items", "_owner")

    def __init__(
        self,
        name: str,
        items: List[Tuple[Any, bytes]],
        owner: "StorageBackend",
    ) -> None:
        self.name = name
        self._items: Dict[Any, bytes] = dict(items)
        self._owner: Optional["StorageBackend"] = owner

    def holds(self, unit_id: Any) -> bool:
        return unit_id in self._items

    def discard(self, unit_id: Any) -> bool:
        """Scrub one unit's blob from the batch (the erase hook)."""
        return self._items.pop(unit_id, None) is not None

    @property
    def items(self) -> List[Tuple[Any, bytes]]:
        """The surviving ``(unit_id, blob)`` pairs, import-ready."""
        return list(self._items.items())

    def __len__(self) -> int:
        return len(self._items)

    def close(self) -> None:
        """Release the batch's copy site (idempotent)."""
        owner, self._owner = self._owner, None
        if owner is not None:
            owner._close_export(self)

    def __enter__(self) -> "ExportBatch":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class StorageBackend(ABC):
    """The system-action surface the system layer drives.

    ``name`` identifies the engine in the :class:`GroundingRegistry`
    ("psql", "lsm", "crypto-shred", …); consumers look up and select the
    erasure grounding registered under it.
    """

    #: Engine identifier used for grounding lookup.
    name: str = "abstract"

    #: Whether the engine offers a "permanently delete" system-action
    #: (advanced sanitization).  Table 1 marks the native engines False;
    #: the crypto-shredding retrofit flips it.
    supports_sanitize: bool = False

    #: Whether :meth:`copy_locations` already includes the engine's
    #: recovery-log row images as typed ``CopyLocation.WAL`` sites.  The
    #: distributed layer skips its probe-based WAL fallback for backends
    #: that declare this, so the same log segment is never double-counted.
    reports_typed_wal_sites: bool = False

    def __init__(self) -> None:
        #: Reclamation passes run (VACUUM / full compaction / key-shred
        #: sweeps) — the profile runners report these per Figure 4.
        self.reclaim_count = 0
        self.reclaim_full_count = 0
        #: Open encoded-export batches — in-flight migration copy sites.
        self._export_batches: List[ExportBatch] = []

    # ------------------------------------------------------------------- DML
    @abstractmethod
    def insert(self, unit_id: Any, value: Any, fresh: bool = False) -> None:
        """Store a new unit's value.

        ``fresh=True`` is the COPY-style bulk-load contract: the caller
        guarantees the id is unused, so engines may skip uniqueness probes.
        """

    @abstractmethod
    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        """Bulk-load ``(unit_id, value)`` pairs; returns the count stored.

        The facade guarantees fresh ids (its model rejects duplicates), so
        backends may skip per-key uniqueness probes — the COPY-style path.
        """

    @abstractmethod
    def read(self, unit_id: Any) -> Any:
        """The unit's current value; raises ``TupleNotFoundError`` if the
        unit holds no live value.  Reversibly-inaccessible values are
        returned unwrapped — visibility policy is the facade's job."""

    @abstractmethod
    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        """Batch point reads, same semantics as :meth:`read` per id."""

    @abstractmethod
    def update(self, unit_id: Any, value: Any) -> None:
        """Replace the unit's value."""

    def commit(self) -> None:
        """Durability point after a user-visible transaction (WAL flush on
        engines that keep one; a no-op elsewhere)."""

    # ------------------------------------------- reversible inaccessibility
    @abstractmethod
    def make_inaccessible(self, unit_id: Any) -> None:
        """The weakest erasure grounding: hide the value reversibly."""

    @abstractmethod
    def restore(self, unit_id: Any) -> None:
        """Invert :meth:`make_inaccessible`."""

    @abstractmethod
    def is_inaccessible(self, unit_id: Any) -> bool:
        """Whether the unit is currently reversibly inaccessible."""

    # ------------------------------------------------------ physical erasure
    @abstractmethod
    def delete(self, unit_id: Any) -> None:
        """Logically remove the value (dead tuple / tombstone / dead volume)
        without reclaiming physical space."""

    @abstractmethod
    def _reclaim(self) -> None:
        """Engine-specific reclamation (VACUUM / full compaction / shred
        sweep) — wrapped by :meth:`reclaim`, which counts the passes."""

    @abstractmethod
    def _reclaim_full(self) -> None:
        """The strongest reclamation the engine offers — wrapped by
        :meth:`reclaim_full`."""

    def reclaim(self) -> None:
        """Make logically deleted values physically unrecoverable — the
        second half of the "delete" grounding."""
        self.reclaim_count += 1
        self._reclaim()

    def reclaim_full(self) -> None:
        """The strongest reclamation (VACUUM FULL / full compaction / shred
        + space release) — the second half of the "strong delete" grounding."""
        self.reclaim_full_count += 1
        self._reclaim_full()

    def erase(self, unit_id: Any) -> None:
        """The full "delete" grounding: logical delete + reclamation —
        including any copy riding an open export batch."""
        self.delete(unit_id)
        self.scrub_exports([unit_id])
        self.reclaim()

    def erase_many(self, unit_ids: Sequence[Any], strong: bool = False) -> int:
        """Batch physical erase: delete every unit, then reclaim once.

        Amortizing the reclamation over the batch is exactly how a real
        deployment grounds high-volume erasure; single-unit semantics are
        preserved by :meth:`erase`.
        """
        count = 0
        for unit_id in unit_ids:
            self.delete(unit_id)
            count += 1
        self.scrub_exports(unit_ids)
        if strong:
            self.reclaim_full()
        else:
            self.reclaim()
        return count

    def scrub_exports(self, unit_ids: Sequence[Any]) -> None:
        """Drop erased units from every open export batch — a grounded
        erase must reach copies already handed out for migration."""
        for batch in self._export_batches:
            for unit_id in unit_ids:
                batch.discard(unit_id)

    def sanitize(self, unit_id: Any) -> None:
        """The "permanently delete" system-action: advanced sanitization of
        the unit's physical footprint.  Unsupported by default — the paper's
        point is that native engines must be *retrofitted* (§1)."""
        raise StorageError(
            f"{self.name} has no sanitization system-action "
            "(Table 1: permanently delete = Not supported)"
        )

    def maintain(self, max_bytes: Optional[int] = None) -> int:
        """Run any deferred background maintenance the engine has queued
        (compaction work on LSM engines); returns the number of maintenance
        units (merges) run.  ``max_bytes`` bounds one slice by merge input
        bytes so callers (the service maintenance thread) can interleave
        maintenance with live traffic.  A no-op by default — engines whose
        reclamation is purely demand-driven have nothing to do between
        operations."""
        return 0

    def compaction_stats(self) -> CompactionStats:
        """Merge/throttle counters for engines with background compaction
        (zeros for engines without one) — the observability companion of
        :meth:`maintain`."""
        return EMPTY_COMPACTION_STATS

    # ----------------------------------------------------------- bulk export
    def export_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, Any]]:
        """Live ``(unit_id, value)`` pairs whose id the predicate selects —
        the source side of a shard migration ("range" = a hash-ring arc,
        expressed as a predicate since ring ranges wrap).

        Reversibly-inaccessible units are exported wrapped in
        :class:`FlaggedPayload` whatever mechanism the engine uses for the
        flag (column, flag write, out-of-band bit), and
        :meth:`import_batch` re-grounds the wrapper on arrival — a
        migration must never silently undo a compliance-mandated
        reversible erase at the key's new home.

        The generic path scans the physical layout once and batch-reads the
        matches; engines override it with their native scan (PSQL seq scan,
        LSM merged run scan, crypto-shred volume sweep).
        """
        keys = sorted(
            {k for k, live in self.forensic_scan() if live and predicate(k)},
            key=repr,
        )
        out: List[Tuple[Any, Any]] = []
        for key, value in zip(keys, self.read_many(keys)):
            if self.is_inaccessible(key):
                value = FlaggedPayload(True, value)
            out.append((key, value))
        return out

    def import_batch(self, items: Sequence[Tuple[Any, Any]]) -> int:
        """Destination side of a shard migration: bulk-load ``(unit_id,
        value)`` pairs through the COPY-style path and hit a durability
        point, so the imported copies survive exactly like written ones.
        The migration planner guarantees the ids are fresh on this node.

        ``FlaggedPayload``-wrapped values (reversibly-inaccessible units in
        transit) are unwrapped and re-grounded through this engine's own
        flag mechanism, preserving the inaccessibility across the move.
        """
        items = list(items)
        plain = [
            (k, v) for k, v in items if not isinstance(v, FlaggedPayload)
        ]
        count = self.insert_many(plain) if plain else 0
        for key, value in items:
            if isinstance(value, FlaggedPayload):
                self.insert(key, value.value, fresh=True)
                if value.flagged:
                    self.make_inaccessible(key)
                count += 1
        self.commit()
        return count

    def export_encoded_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, bytes]]:
        """:meth:`export_range` in codec form: ``(unit_id, blob)`` pairs.

        The migration transport of choice — encoded batches stream between
        nodes without a decode/re-encode hop when both sides store codec
        blobs natively (LSM blocks, crypto-shred sectors).  The generic
        path encodes the object export; native overrides hand out the
        stored bytes directly.
        """
        return [
            (key, codec.encode(value))
            for key, value in self.export_range(predicate)
        ]

    def import_encoded_batch(self, items: Sequence[Tuple[Any, bytes]]) -> int:
        """Destination side of an encoded migration: load ``(unit_id,
        blob)`` pairs.  The generic path decodes and delegates to
        :meth:`import_batch` (re-grounding ``FlaggedPayload`` wrappers);
        native overrides write the blobs straight into storage."""
        return self.import_batch(
            [(key, codec.decode(blob)) for key, blob in items]
        )

    def open_export(
        self, predicate: Callable[[Any], bool], name: str = "export"
    ) -> ExportBatch:
        """Open a tracked encoded export: the batch's blobs are registered
        as in-flight ``MIGRATION`` copy sites (see :meth:`copy_locations`)
        until the batch is closed.  Use as a context manager around the
        transfer so a crash cannot leak an unregistered copy."""
        batch = ExportBatch(name, self.export_encoded_range(predicate), self)
        self._export_batches.append(batch)
        return batch

    def _close_export(self, batch: ExportBatch) -> None:
        if batch in self._export_batches:
            self._export_batches.remove(batch)

    def purge_history(self, unit_id: Any) -> int:
        """Scrub the unit's traces from the engine's recovery log, if it
        keeps one (the P_SYS erase grounding).  Returns records purged."""
        return 0

    def log_holds_value(self, unit_id: Any) -> bool:
        """Whether the engine's recovery log still retains a recoverable
        copy of the unit's value — a tracked copy location (§1)."""
        return False

    # -------------------------------------------------------------- forensics
    def cache_sites(self, unit_id: Any) -> List[str]:
        """Names of cache locations still holding a real copy of the
        unit's value — engines with a (possibly shared) block cache report
        them so a distributed ``copies_of`` can list the cache as a
        :class:`CopyLocation` ``CACHE`` site.  Empty by default."""
        return []

    def copy_locations(self, unit_id: Any) -> List[Tuple[CopyLocation, str]]:
        """The backend-level secondary copy sites for a unit: every cache
        entry holding a real value and every open export batch carrying
        its blob.  The distributed layer merges these into ``copies_of``;
        ``erase_all_copies`` is only "verified clean" once this is empty.
        """
        sites: List[Tuple[CopyLocation, str]] = [
            (CopyLocation.CACHE, site) for site in self.cache_sites(unit_id)
        ]
        sites.extend(
            (CopyLocation.MIGRATION, batch.name)
            for batch in self._export_batches
            if batch.holds(unit_id)
        )
        return sites

    @abstractmethod
    def physically_present(self, unit_id: Any) -> bool:
        """Whether a disk inspection would still recover the unit's value
        from *any* physical location the engine controls (heap, runs,
        recovery log)."""

    @abstractmethod
    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        """Every physical entry as ``(unit_id, live)`` pairs, logically dead
        data included — the illegal-retention primitive."""

    @abstractmethod
    def exists(self, unit_id: Any) -> bool:
        """Whether a live value exists for the unit."""

    @abstractmethod
    def stats(self) -> BackendStats:
        """Physical statistics for the bench harness."""

    # -------------------------------------------------------- space accounting
    def data_bytes(self) -> int:
        """Bytes attributable to stored values (heap / runs / sectors)."""
        return self.stats().total_bytes

    def index_bytes(self) -> int:
        """Bytes attributable to access structures (B-tree, Bloom filters)."""
        return 0

    def log_bytes(self) -> int:
        """Bytes held by the engine's recovery log, if any."""
        return 0


class PsqlBackend(StorageBackend):
    """Table-1's PSQL column, verbatim.

    All calls delegate to one :class:`RelationalEngine` table; semantics and
    cost charging are exactly those of the engine methods the facade
    previously called inline.  The engine's WAL is a tracked copy location:
    :meth:`physically_present` counts row images lingering in the log, and
    the reclamation passes scrub them (see :mod:`repro.storage.wal`).
    """

    name = "psql"

    #: WAL row images report as typed ``CopyLocation.WAL`` sites through
    #: :meth:`copy_locations` (see :meth:`RelationalEngine.wal_copy_sites`).
    reports_typed_wal_sites = True

    def __init__(
        self,
        cost: CostModel,
        row_bytes: int = 70,
        table: str = DATA_TABLE,
        engine: Optional[RelationalEngine] = None,
        flag_column: bool = True,
        **engine_opts: Any,
    ) -> None:
        super().__init__()
        self.table = table
        self.engine = (
            engine if engine is not None else RelationalEngine(cost, **engine_opts)
        )
        if not self.engine.has_table(table):
            self.engine.create_table(table, row_bytes, flag_column=flag_column)

    # ------------------------------------------------------------------- DML
    def insert(self, unit_id: Any, value: Any, fresh: bool = False) -> None:
        self.engine.insert(self.table, unit_id, value, check_duplicate=not fresh)

    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        return self.engine.insert_many(self.table, items, check_duplicate=False)

    def read(self, unit_id: Any) -> Any:
        return self.engine.read(self.table, unit_id)

    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        return self.engine.read_many(self.table, unit_ids)

    def update(self, unit_id: Any, value: Any) -> None:
        self.engine.update(self.table, unit_id, value)

    def commit(self) -> None:
        self.engine.wal.flush()

    # ------------------------------------------- reversible inaccessibility
    def make_inaccessible(self, unit_id: Any) -> None:
        self.engine.set_flag(self.table, unit_id, True)

    def restore(self, unit_id: Any) -> None:
        self.engine.set_flag(self.table, unit_id, False)

    def is_inaccessible(self, unit_id: Any) -> bool:
        return self.engine.is_flagged(self.table, unit_id)

    # ------------------------------------------------------ physical erasure
    def delete(self, unit_id: Any) -> None:
        self.engine.delete(self.table, unit_id)

    def _reclaim(self) -> None:
        self.engine.vacuum(self.table)

    def _reclaim_full(self) -> None:
        self.engine.vacuum_full(self.table)

    def purge_history(self, unit_id: Any) -> int:
        return self.engine.wal.purge_key(self.table, unit_id)

    def log_holds_value(self, unit_id: Any) -> bool:
        return self.engine.wal_holds_value(self.table, unit_id)

    def copy_locations(self, unit_id: Any) -> List[Tuple[CopyLocation, str]]:
        """Cache and migration sites plus the engine's typed WAL row-image
        sites: an unscrubbed INSERT/UPDATE row image reports directly as a
        ``CopyLocation.WAL`` entry, so consumers no longer need the untyped
        ``log_holds_value`` side channel to see the log copy."""
        sites = super().copy_locations(unit_id)
        sites.extend(self.engine.wal_copy_sites(self.table, unit_id))
        return sites

    # ----------------------------------------------------------- bulk export
    def export_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, Any]]:
        """Sequential scan over live tuples, filtered by key — the COPY-out
        side of a shard migration.  Rows whose retrofit flag column is set
        travel as :class:`FlaggedPayload` so the flag state survives the
        move (the column itself is not part of the payload)."""
        out: List[Tuple[Any, Any]] = []
        for key, value in self.engine.seq_scan(
            self.table, lambda key, _value: predicate(key)
        ):
            if self.engine.is_flagged(self.table, key):
                value = FlaggedPayload(True, value)
            out.append((key, value))
        return sorted(out, key=lambda kv: repr(kv[0]))

    # -------------------------------------------------------------- forensics
    def physically_present(self, unit_id: Any) -> bool:
        if any(
            key == unit_id for key, _live in self.engine.forensic_scan(self.table)
        ):
            return True
        # The WAL keeps row images replayable until scrubbed/recycled — a
        # disk inspection of the log segments recovers them just the same.
        return self.engine.wal_holds_value(self.table, unit_id)

    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        return self.engine.forensic_scan(self.table)

    def exists(self, unit_id: Any) -> bool:
        return self.engine.exists(self.table, unit_id)

    def stats(self) -> BackendStats:
        s = self.engine.stats(self.table)
        return BackendStats(
            backend=self.name,
            live_entries=s.live_tuples,
            dead_entries=s.dead_tuples,
            total_bytes=s.total_bytes,
            detail=(
                ("pages", s.pages),
                ("index_dead_entries", s.index_dead_entries),
                ("dead_fraction", s.dead_fraction),
            ),
        )

    def data_bytes(self) -> int:
        return self.engine.stats(self.table).heap_bytes

    def index_bytes(self) -> int:
        return self.engine.stats(self.table).index_bytes

    def log_bytes(self) -> int:
        return self.engine.wal.size_bytes


class LsmBackend(StorageBackend):
    """The LSM grounding of Table 1.

    * "reversibly inaccessible" ↦ *flag write*: overwrite the key with a
      :class:`FlaggedPayload`-wrapped value — invertible, and the value stays
      physically present (same Inv/II profile as PSQL's flag column);
    * "delete" ↦ *tombstone + full compaction*: the tombstone alone leaves
      shadowed values in older runs (the §1 retention hazard); the paired
      full compaction drops them and the tombstone;
    * "strong delete" ↦ *tombstone cascade + full compaction*: tombstone the
      unit and its identifying descendants, then compact once.

    Keys are upserted (LSM put semantics); the facade's model layer enforces
    unit-id uniqueness.

    ``compaction`` selects the engine's :class:`CompactionPolicy` ("size" —
    the size-tiered default — or "leveled", or a policy instance);
    ``compaction_mode`` selects the scheduler ("sync" runs merges inside
    the flush, "deferred" queues them for :meth:`maintain`).  Either way
    the grounded erase (``reclaim`` = full compaction) stays synchronous.

    ``block_cache`` injects a :class:`SharedBlockCache` so several
    namespaces (a :class:`BackendGroup`) or co-located shards pool one
    cache budget; without it the engine builds a private cache of
    ``block_cache_capacity`` entries.  ``namespace`` labels this backend's
    entries in the shared cache (and its ``CACHE`` copy sites).
    """

    name = "lsm"

    def __init__(
        self,
        cost: CostModel,
        row_bytes: int = 70,
        engine: Optional[LSMEngine] = None,
        memtable_capacity: int = 4096,
        tier_threshold: int = 4,
        block_cache_capacity: int = 1024,
        compaction: Any = "size",
        compaction_mode: str = "sync",
        block_cache: Optional[SharedBlockCache] = None,
        namespace: str = "",
    ) -> None:
        super().__init__()
        self._row_bytes = row_bytes
        self.engine = (
            engine
            if engine is not None
            else LSMEngine(
                cost,
                payload_bytes=row_bytes,
                memtable_capacity=memtable_capacity,
                tier_threshold=tier_threshold,
                block_cache_capacity=block_cache_capacity,
                compaction=compaction,
                compaction_mode=compaction_mode,
                block_cache=block_cache,
                namespace=namespace,
            )
        )

    # ------------------------------------------------------------------- DML
    def insert(self, unit_id: Any, value: Any, fresh: bool = False) -> None:
        self.engine.put(unit_id, value)

    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        return self.engine.put_many(items)

    def read(self, unit_id: Any) -> Any:
        value = self.engine.get(unit_id)
        if value is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        if isinstance(value, FlaggedPayload):
            value = value.value
        return value

    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        return [self.read(unit_id) for unit_id in unit_ids]

    def update(self, unit_id: Any, value: Any) -> None:
        if self.engine.get(unit_id) is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        self.engine.put(unit_id, value)

    # ------------------------------------------- reversible inaccessibility
    def make_inaccessible(self, unit_id: Any) -> None:
        value = self.engine.get(unit_id)
        if value is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        # The engine hands back a decoded copy, not an alias of the stored
        # bytes — the flag write must go back through put to stick.
        if isinstance(value, FlaggedPayload):
            self.engine.put(unit_id, FlaggedPayload(True, value.value))
            return
        self.engine.put(unit_id, FlaggedPayload(True, value))

    def restore(self, unit_id: Any) -> None:
        value = self.engine.get(unit_id)
        if not isinstance(value, FlaggedPayload):
            raise StorageError(f"lsm: key {unit_id!r} is not flagged")
        self.engine.put(unit_id, value.value)

    def is_inaccessible(self, unit_id: Any) -> bool:
        value = self.engine.get(unit_id)
        if value is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        return isinstance(value, FlaggedPayload) and value.flagged

    # ------------------------------------------------------ physical erasure
    def delete(self, unit_id: Any) -> None:
        self.engine.delete(unit_id)

    def _reclaim(self) -> None:
        self.engine.full_compaction()

    def _reclaim_full(self) -> None:
        self.engine.full_compaction()

    def maintain(self, max_bytes: Optional[int] = None) -> int:
        """Run compaction work the deferred scheduler has queued — the
        between-operations hook of the compaction subsystem.  ``max_bytes``
        bounds the slice (at least one merge still runs when work is
        planned); returns merges run."""
        return self.engine.run_pending_compactions(max_bytes=max_bytes)

    def compaction_stats(self) -> CompactionStats:
        return self.engine.scheduler.stats()

    # ----------------------------------------------------------- bulk export
    def export_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, Any]]:
        """Merged newest-live scan over memtable + every run, filtered by
        key.  Values come back as stored — ``FlaggedPayload`` wrappers
        included — so migration preserves reversible-inaccessibility state.
        """
        return self.engine.live_items(predicate)

    def export_encoded_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, bytes]]:
        """Native encoded export: the stored blobs stream out unchanged
        (``FlaggedPayload`` wrappers are *in* the blobs, so the flag state
        travels without a decode)."""
        return self.engine.live_items_encoded(predicate)

    def import_encoded_batch(self, items: Sequence[Tuple[Any, bytes]]) -> int:
        """Native encoded import: blobs from the source engine land in the
        memtable as-is via :meth:`LSMEngine.put_encoded`."""
        count = 0
        for unit_id, blob in items:
            self.engine.put_encoded(unit_id, blob)
            count += 1
        self.commit()
        return count

    # -------------------------------------------------------------- forensics
    def cache_sites(self, unit_id: Any) -> List[str]:
        return [site for _loc, site in self.engine.cache_copy_sites(unit_id)]

    def physically_present(self, unit_id: Any) -> bool:
        return self.engine.physically_present(unit_id)

    def copy_sites(self, unit_id: Any) -> List[str]:
        """Every physical site still holding a real value for the unit —
        the memtable and each SSTable, named by level.  Pre-compaction
        copies keep their own entries until the rewrite removes the table,
        which is what lets a distributed ``copies_of`` stay honest while
        compaction is pending."""
        return self.engine.copy_sites(unit_id)

    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        newest: Dict[Any, Tuple[int, Any]] = {}
        physical: List[Tuple[Any, int, Any]] = []
        for key, (seqno, value) in self.engine.memtable_entries():
            physical.append((key, seqno, value))
            if key not in newest or seqno > newest[key][0]:
                newest[key] = (seqno, value)
        for run in self.engine.runs():
            for key, seqno, value in run.entries():
                physical.append((key, seqno, value))
                if key not in newest or seqno > newest[key][0]:
                    newest[key] = (seqno, value)
        out: List[Tuple[Any, bool]] = []
        for key, seqno, value in physical:
            if value is TOMBSTONE:
                continue  # tombstones carry no recoverable value
            top_seqno, top_value = newest[key]
            out.append((key, seqno == top_seqno and top_value is not TOMBSTONE))
        return out

    def exists(self, unit_id: Any) -> bool:
        return self.engine.get(unit_id) is not None

    def stats(self) -> BackendStats:
        scan = self.forensic_scan()
        live = sum(1 for _key, is_live in scan if is_live)
        return BackendStats(
            backend=self.name,
            live_entries=live,
            dead_entries=(len(scan) - live) + self.engine.tombstone_count,
            total_bytes=self.engine.total_bytes() + self.engine.memtable_bytes(),
            detail=(
                ("runs", self.engine.run_count),
                ("levels", self.engine.level_count),
                ("compaction_policy", self.engine.compaction_policy.name),
                ("tombstones", self.engine.tombstone_count),
                ("flushes", self.engine.flush_count),
                ("compactions", self.engine.compaction_count),
                ("write_amplification", self.engine.write_amplification),
                ("cache_hits", self.engine.cache_hits),
                ("cache_misses", self.engine.cache_misses),
                ("merges_run", self.engine.scheduler.merges_run),
                ("bytes_compacted", self.engine.bytes_compacted),
                ("trivial_moves", self.engine.trivial_moves),
                ("stall_events", self.engine.scheduler.stall_events),
                ("compaction_queue_depth", self.engine.scheduler.queue_depth),
                ("write_stalled", self.engine.write_stalled),
            ),
        )

    def data_bytes(self) -> int:
        # Real buffered blob bytes, not a nominal rows × row_bytes guess.
        return (
            self.engine.total_bytes()
            - self.index_bytes()
            + self.engine.memtable_bytes()
        )

    def index_bytes(self) -> int:
        return sum(run.bloom_bytes for run in self.engine.runs())


class _ShredEntry:
    """One unit's encrypted footprint: vault key + packed placement."""

    __slots__ = (
        "key_id",
        "group",
        "slot",
        "sectors",
        "nbytes",
        "live",
        "flagged",
        "sanitized",
        "volume",
    )

    def __init__(self, key_id: int) -> None:
        self.key_id = key_id
        self.group: Optional[SectorGroup] = None
        self.slot = -1
        self.sectors = 0
        self.nbytes = 0
        self.live = True
        self.flagged = False
        self.sanitized = False
        self.volume: Optional["_SlotView"] = None


class _SlotView:
    """The old per-unit "volume" surface over a packed (group, slot).

    Forensics (and the regression tests) address a unit's footprint as
    "its volume"; this view keeps that address working over the packed
    layout: sector indexes are slot-relative, ``is_shredded`` asks the
    vault, and ``read_sector`` fails exactly like a shredded volume once
    the unit's key is gone.
    """

    __slots__ = ("_vault", "_entry")

    def __init__(self, vault: KeyVault, entry: _ShredEntry) -> None:
        self._vault = vault
        self._entry = entry

    @property
    def is_shredded(self) -> bool:
        return self._vault.is_shredded(self._entry.key_id)

    @property
    def sector_count(self) -> int:
        entry = self._entry
        if entry.group is None:
            return 0
        return len(entry.group.slot_sector_numbers(entry.slot))

    def raw_sector(self, index: int) -> bytes:
        entry = self._entry
        return entry.group.raw_sector(entry.group.sector_number(entry.slot, index))

    def read_sector(self, index: int) -> bytes:
        entry = self._entry
        master = self._vault.master(entry.key_id)  # PermissionError if shredded
        subkey = derive_subkey(master, entry.group.group_id, entry.slot)
        return entry.group.read_sector(entry.slot, subkey, index)


class CryptoShredBackend(StorageBackend):
    """Crypto-shredding: the retrofit that grounds "permanently delete".

    Every unit's value is codec-encoded and encrypted into a slot of a
    packed :class:`SectorGroup` under its own subkey, KDF-derived from a
    per-unit master key in the :class:`KeyVault`; the plaintext never
    exists at rest.  The erasure interpretations then ground as:

    * "reversibly inaccessible" ↦ *flag entry*: a visibility flag beside
      the catalog entry — the key survives, so the transformation is
      invertible and the value stays recoverable (same Inv/II profile as
      the flag column);
    * "delete" ↦ *logical delete + key shred*: marking the entry dead is
      the O(1) step; the paired reclamation destroys the dead entries'
      vault keys in one batched key-table write, after which the
      ciphertext is unrecoverable — the crypto-erase analogue of VACUUM;
    * "strong delete" ↦ the same shred applied over the cascade;
    * "permanently delete" ↦ *key shred + sector sanitize*: in addition to
      the key destruction, every ciphertext sector is multi-pass
      overwritten (NIST SP 800-88 "Purge"), charged through
      :meth:`CostModel.charge_sanitize` — the Table-1 row no native engine
      supports.  :meth:`sanitize_many` amortizes the overwrite sweep per
      touched group.

    Space: ~``group_capacity`` units share one 512-byte group header and
    one vault (injectable, so a :class:`BackendGroup` shares it across
    namespaces), versus a whole LUKS header per unit in the original
    layout — the Table-2 factor drops from ~3x the relational heap toward
    parity.

    Retention honesty: between ``delete`` and the reclamation the key still
    exists, so the value is *recoverable* — those entries count as
    ``dead_entries`` and show up in :meth:`forensic_scan`, exactly like dead
    MVCC tuples or shadowed LSM values (§1).
    """

    name = "crypto-shred"
    supports_sanitize = True

    def __init__(
        self,
        cost: CostModel,
        row_bytes: int = 70,
        vault: Optional[KeyVault] = None,
        group_capacity: int = GROUP_CAPACITY,
    ) -> None:
        super().__init__()
        self._cost = cost
        self._row_bytes = row_bytes
        self._owns_vault = vault is None
        self._vault = vault if vault is not None else KeyVault()
        self._group_capacity = group_capacity
        self._entries: Dict[Any, _ShredEntry] = {}
        # Dead entries displaced by a re-insert over their unit id: their
        # keys are still intact, so they stay in the retention accounting
        # until a reclamation pass shreds them (§1 honesty).
        self._graveyard: List[Tuple[Any, _ShredEntry]] = []
        # Shredded graveyard placements: unrecoverable noise still
        # occupying group sectors until a full reclamation releases them.
        self._residue_slots: List[_ShredEntry] = []
        self._residue_bytes = 0
        self._groups: List[SectorGroup] = []
        self._partial: List[SectorGroup] = []
        self._group_counter = 0
        #: Vault entries this backend enrolled and has not yet compacted
        #: away — its share of a (possibly shared) vault's key table.
        self._owned_ids: set = set()
        self.shred_count = 0
        self.sanitize_count = 0

    # --------------------------------------------------------------- internals
    def _entry(self, unit_id: Any) -> _ShredEntry:
        entry = self._entries.get(unit_id)
        if entry is None or not entry.live:
            raise TupleNotFoundError(
                f"crypto-shred: no live value for key {unit_id!r}"
            )
        return entry

    def _alloc_placement(self, sectors: int) -> Tuple[SectorGroup, int]:
        """A (group, slot) with room for ``sectors``; oversized values get
        a dedicated single-slot group, everything else packs."""
        if sectors > MAX_SLOT_SECTORS:
            self._group_counter += 1
            group = SectorGroup(
                self._group_counter, capacity=1, slot_sectors=sectors
            )
            self._groups.append(group)
            return group, group.alloc_slot()
        while self._partial and not self._partial[-1].has_free_slot:
            self._partial.pop()
        if not self._partial:
            self._group_counter += 1
            group = SectorGroup(self._group_counter, capacity=self._group_capacity)
            self._groups.append(group)
            self._partial.append(group)
        group = self._partial[-1]
        return group, group.alloc_slot()

    def _offer_partial(self, group: SectorGroup) -> None:
        if group.capacity > 1 and group.has_free_slot and group not in self._partial:
            self._partial.append(group)

    def _release_slot(self, entry: _ShredEntry) -> None:
        """Discard the entry's ciphertext and return its slot to the pool."""
        if entry.group is not None:
            entry.group.discard_slot(entry.slot)
            self._offer_partial(entry.group)
            entry.group = None
            entry.slot = -1
        entry.sectors = 0

    def _subkey(self, entry: _ShredEntry) -> bytes:
        return derive_subkey(
            self._vault.master(entry.key_id), entry.group.group_id, entry.slot
        )

    def _write_blob(self, entry: _ShredEntry, blob: bytes) -> None:
        sectors = SectorGroup.sectors_needed(len(blob))
        if entry.group is None or sectors > entry.group.slot_sectors:
            # First write, or the value outgrew its slot: (re)place it.
            self._release_slot(entry)
            entry.group, entry.slot = self._alloc_placement(sectors)
        entry.sectors = entry.group.write(entry.slot, self._subkey(entry), blob)
        entry.nbytes = len(blob)
        self._cost.charge_luks(max(len(blob), self._row_bytes))
        self._cost.charge_page_write(entry.sectors * SECTOR / PAGE_SIZE)

    def _read_blob(self, entry: _ShredEntry) -> bytes:
        blob = entry.group.read(
            entry.slot, self._subkey(entry), entry.sectors, entry.nbytes
        )
        self._cost.charge_page_read()
        self._cost.charge_luks(max(entry.nbytes, self._row_bytes))
        return blob

    def _shred_one(self, entry: _ShredEntry) -> None:
        """Destroy one vault key — one key-table write, gone forever."""
        if self._vault.shred(entry.key_id):
            self._cost.charge_page_write()
            self.shred_count += 1

    def _shred_batch(self, entries: Sequence[_ShredEntry]) -> int:
        """Destroy a batch of vault keys in one key-table pass: the
        co-located vault turns N scattered header writes into one write
        covering the touched entry pages."""
        shredded = self._vault.shred_many([e.key_id for e in entries])
        if shredded:
            self._cost.charge_page_write(
                max(1.0, shredded * KEY_ENTRY_BYTES / PAGE_SIZE)
            )
            self.shred_count += shredded
        return shredded

    # ------------------------------------------------------------------- DML
    def insert(self, unit_id: Any, value: Any, fresh: bool = False) -> None:
        self._insert_blob(unit_id, codec.encode(value))

    def _insert_blob(self, unit_id: Any, blob: bytes) -> None:
        existing = self._entries.get(unit_id)
        if existing is not None and existing.live:
            raise StorageError(
                f"crypto-shred: key {unit_id!r} already holds a live value"
            )
        if (
            existing is not None
            and existing.sectors > 0
            and not self._vault.is_shredded(existing.key_id)
        ):
            # The displaced dead entry's key is still intact: keep it in
            # the retention accounting until a reclamation shreds it.
            self._graveyard.append((unit_id, existing))
        elif existing is not None:
            # Already shredded (or empty): its noise can make way now.
            self._release_slot(existing)
        key_id = self._vault.create_key(repr(unit_id))
        self._owned_ids.add(key_id)
        entry = _ShredEntry(key_id)
        entry.volume = _SlotView(self._vault, entry)
        self._write_blob(entry, blob)
        self._entries[unit_id] = entry

    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        count = 0
        for unit_id, value in items:
            self.insert(unit_id, value, fresh=True)
            count += 1
        return count

    def read(self, unit_id: Any) -> Any:
        return codec.decode(self._read_blob(self._entry(unit_id)))

    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        return [self.read(unit_id) for unit_id in unit_ids]

    def update(self, unit_id: Any, value: Any) -> None:
        # In-place sector overwrite under the same key — no MVCC bloat.
        self._write_blob(self._entry(unit_id), codec.encode(value))

    # ------------------------------------------- reversible inaccessibility
    def make_inaccessible(self, unit_id: Any) -> None:
        self._entry(unit_id).flagged = True
        self._cost.charge_page_write()

    def restore(self, unit_id: Any) -> None:
        entry = self._entries.get(unit_id)
        if entry is None or not entry.live or not entry.flagged:
            raise StorageError(f"crypto-shred: key {unit_id!r} is not flagged")
        entry.flagged = False
        self._cost.charge_page_write()

    def is_inaccessible(self, unit_id: Any) -> bool:
        return self._entry(unit_id).flagged

    # ------------------------------------------------------ physical erasure
    def delete(self, unit_id: Any) -> None:
        entry = self._entry(unit_id)
        entry.live = False
        self._cost.charge_tuple_cpu()

    def _reclaim(self) -> None:
        """Shred the keys of every dead entry (graveyard included) —
        crypto-erase, one batched key-table write for the whole sweep.

        The pass sweeps the catalog to find dead entries (the analogue of
        VACUUM's heap scan), so batching erases amortizes it.
        """
        self._cost.charge_tuple_cpu(len(self._entries) + len(self._graveyard))
        victims = [e for e in self._entries.values() if not e.live]
        victims.extend(e for _uid, e in self._graveyard)
        self._shred_batch(victims)
        # Shredded graveyard placements leave the scan set for good — only
        # their (unrecoverable) ciphertext sectors keep occupying disk.
        for _unit_id, entry in self._graveyard:
            self._residue_bytes += entry.sectors * SECTOR
            self._residue_slots.append(entry)
        self._graveyard.clear()

    def _reclaim_full(self) -> None:
        """Shred dead entries' keys, release their ciphertext space, and
        compact this backend's share of the vault's key table."""
        self._cost.charge_tuple_cpu(len(self._entries) + len(self._graveyard))
        victims = [e for e in self._entries.values() if not e.live]
        victims.extend(e for _uid, e in self._graveyard)
        self._shred_batch(victims)
        for entry in victims:
            self._release_slot(entry)
        for entry in self._residue_slots:
            self._release_slot(entry)
        self._residue_slots.clear()
        self._graveyard.clear()
        self._residue_bytes = 0  # the full pass releases the noise too
        for key_id in self._vault.compact_keys(sorted(self._owned_ids)):
            self._owned_ids.discard(key_id)
        # Fully drained groups release their header too.
        kept = [g for g in self._groups if g.sector_count or g.slots_in_use]
        if len(kept) != len(self._groups):
            self._groups = kept
            self._partial = [
                g for g in kept if g.capacity > 1 and g.has_free_slot
            ]

    def _sanitize_victims(
        self, victims: Sequence[_ShredEntry], batched: bool
    ) -> int:
        """Shred + multi-pass overwrite, one sweep per touched group;
        returns the pages of sanitize work to charge."""
        if batched:
            self._shred_batch(victims)
        else:
            for victim in victims:
                self._shred_one(victim)
        pages = 0
        by_group: Dict[int, Tuple[SectorGroup, List[int]]] = {}
        for victim in victims:
            pages += max(
                1, (victim.sectors * SECTOR + PAGE_SIZE - 1) // PAGE_SIZE
            )
            if victim.group is not None and victim.sectors:
                group, slots = by_group.setdefault(
                    id(victim.group), (victim.group, [])
                )
                slots.append(victim.slot)
        for group, slots in by_group.values():
            group.overwrite_slots(slots)
        for victim in victims:
            self._release_slot(victim)
            victim.nbytes = 0
            victim.sanitized = True
        return pages

    def sanitize(self, unit_id: Any) -> None:
        """Key shred + multi-pass overwrite of the ciphertext sectors —
        Table 1's "permanently delete", charged as sanitization work."""
        entry = self._entries.get(unit_id)
        if entry is None:
            raise TupleNotFoundError(f"crypto-shred: unknown key {unit_id!r}")
        victims = [entry] + [e for uid, e in self._graveyard if uid == unit_id]
        self._graveyard = [
            (uid, e) for uid, e in self._graveyard if uid != unit_id
        ]
        pages = self._sanitize_victims(victims, batched=False)
        self._cost.charge_sanitize(pages)
        entry.live = False
        self.sanitize_count += 1

    def sanitize_many(self, unit_ids: Sequence[Any]) -> int:
        """Batch "permanently delete": one key-table shred write and one
        overwrite sweep per touched sector group — the packed layout's
        amortization of shred-time sanitize cost.  Returns units sanitized.
        """
        heads: List[_ShredEntry] = []
        for unit_id in unit_ids:
            entry = self._entries.get(unit_id)
            if entry is None:
                raise TupleNotFoundError(
                    f"crypto-shred: unknown key {unit_id!r}"
                )
            heads.append(entry)
        wanted = set(unit_ids)
        victims = heads + [e for uid, e in self._graveyard if uid in wanted]
        self._graveyard = [
            (uid, e) for uid, e in self._graveyard if uid not in wanted
        ]
        pages = self._sanitize_victims(victims, batched=True)
        self._cost.charge_sanitize(pages)
        for entry in heads:
            entry.live = False
        self.sanitize_count += len(heads)
        return len(heads)

    # ----------------------------------------------------------- bulk export
    def export_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, Any]]:
        """Decrypt-and-export every live volume the predicate selects: the
        plaintext exists only in transit, and the source volumes stay
        intact (and tracked) until the migration's grounded erase shreds
        their keys.  Flagged (reversibly-inaccessible) entries travel as
        :class:`FlaggedPayload` so the out-of-band visibility bit survives
        the move."""
        self._cost.charge_tuple_cpu(len(self._entries))  # catalog sweep
        out: List[Tuple[Any, Any]] = []
        for unit_id, entry in self._entries.items():
            if not entry.live or not predicate(unit_id):
                continue
            value = codec.decode(self._read_blob(entry))
            if entry.flagged:
                value = FlaggedPayload(True, value)
            out.append((unit_id, value))
        return sorted(out, key=lambda kv: repr(kv[0]))

    def export_encoded_range(
        self, predicate: Callable[[Any], bool]
    ) -> List[Tuple[Any, bytes]]:
        """Native encoded export: sectors decrypt straight to codec blobs
        (flagged entries alone pay a re-wrap, the flag being out-of-band
        here)."""
        self._cost.charge_tuple_cpu(len(self._entries))  # catalog sweep
        out: List[Tuple[Any, bytes]] = []
        for unit_id, entry in self._entries.items():
            if not entry.live or not predicate(unit_id):
                continue
            blob = self._read_blob(entry)
            if entry.flagged:
                blob = codec.encode(FlaggedPayload(True, codec.decode(blob)))
            out.append((unit_id, blob))
        return sorted(out, key=lambda kv: repr(kv[0]))

    def import_encoded_batch(self, items: Sequence[Tuple[Any, bytes]]) -> int:
        """Native encoded import: plain blobs encrypt into sectors as-is;
        ``FlaggedPayload`` blobs re-ground through the out-of-band flag."""
        count = 0
        for unit_id, blob in items:
            if codec.is_extension_blob(blob):
                value = codec.decode(blob)
                if isinstance(value, FlaggedPayload):
                    self._insert_blob(unit_id, codec.encode(value.value))
                    if value.flagged:
                        self.make_inaccessible(unit_id)
                    count += 1
                    continue
            self._insert_blob(unit_id, blob)
            count += 1
        self.commit()
        return count

    # -------------------------------------------------------------- forensics
    def physically_present(self, unit_id: Any) -> bool:
        """Recoverable ⟺ ciphertext sectors remain *and* the key survives.

        After a key shred the sectors may still sit on disk, but without
        the master key a forensic scan sees only noise — that asymmetry is
        the whole point of the crypto-shredding grounding.
        """
        entry = self._entries.get(unit_id)
        if (
            entry is not None
            and entry.sectors > 0
            and not self._vault.is_shredded(entry.key_id)
        ):
            return True
        return any(
            uid == unit_id
            and e.sectors > 0
            and not self._vault.is_shredded(e.key_id)
            for uid, e in self._graveyard
        )

    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        out = [
            (unit_id, entry.live)
            for unit_id, entry in self._entries.items()
            if entry.sectors > 0 and not self._vault.is_shredded(entry.key_id)
        ]
        out.extend(
            (uid, False)
            for uid, e in self._graveyard
            if e.sectors > 0 and not self._vault.is_shredded(e.key_id)
        )
        return out

    def exists(self, unit_id: Any) -> bool:
        entry = self._entries.get(unit_id)
        return entry is not None and entry.live

    def stats(self) -> BackendStats:
        live = sum(1 for e in self._entries.values() if e.live)
        graveyard = [e for _uid, e in self._graveyard]
        recoverable_dead = sum(
            1
            for e in list(self._entries.values()) + graveyard
            if not e.live
            and e.sectors > 0
            and not self._vault.is_shredded(e.key_id)
        )
        return BackendStats(
            backend=self.name,
            live_entries=live,
            dead_entries=recoverable_dead,
            total_bytes=self.data_bytes() + self.index_bytes(),
            detail=(
                ("volumes", len(self._entries)),
                ("shredded", self.shred_count),
                ("sanitized", self.sanitize_count),
                ("groups", len(self._groups)),
                ("vault_keys", len(self._owned_ids)),
                ("residue_bytes", self._residue_bytes),
            ),
        )

    def data_bytes(self) -> int:
        """Group headers + every ciphertext sector — graveyard and shredded
        residue included, since that noise occupies real disk until a full
        reclamation releases the slots."""
        return sum(group.size_bytes for group in self._groups)

    def index_bytes(self) -> int:
        """This backend's share of the vault key table: one entry per
        enrolled key (zeroed ones included until compaction) plus the
        vault header when the vault is private.  A shared vault's header
        is group infrastructure, amortized across its owners."""
        share = VAULT_HEADER_BYTES if self._owns_vault else 0
        return share + KEY_ENTRY_BYTES * len(self._owned_ids)


#: Backend name → constructor, the selection table for every consumer.
BACKENDS: Dict[str, Type[StorageBackend]] = {
    PsqlBackend.name: PsqlBackend,
    LsmBackend.name: LsmBackend,
    CryptoShredBackend.name: CryptoShredBackend,
}


def make_backend(
    name: str, cost: CostModel, row_bytes: int = 70, **kwargs: Any
) -> StorageBackend:
    """Construct a backend by engine name ("psql", "lsm", "crypto-shred")."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return cls(cost, row_bytes=row_bytes, **kwargs)


class BackendGroup:
    """Named storage namespaces over one engine family.

    The §4.2 profile runners need several tables (personal data, GDPR
    metadata, plain data); this group hands each namespace a
    :class:`StorageBackend` while sharing physical infrastructure the way
    the engine family would:

    * ``psql`` — one :class:`RelationalEngine` instance carries every
      namespace as a table (one WAL, one buffer pool), exactly the paper's
      single-PSQL deployment;
    * ``lsm`` — one engine per namespace (column-family style), all of
      them reading through one :class:`SharedBlockCache` — a single cache
      budget pooled across the namespaces instead of K private slices;
    * ``crypto-shred`` — one backend per namespace over one shared
      :class:`KeyVault`: every namespace's per-unit keys co-locate in one
      key table (one header, batched shreds), the deployment shape the
      Table-2 space factor assumes.

    ``engine_opts`` is a typed :class:`~repro.config.BackendConfig`
    (family-specific tuning for the shared :class:`RelationalEngine` on
    psql, or each per-namespace backend constructor elsewhere); legacy
    mappings are still accepted via a deprecation shim that validates keys
    through :meth:`BackendConfig.from_mapping`.
    """

    def __init__(
        self,
        name: str,
        cost: CostModel,
        engine_opts: Union[BackendConfig, Mapping[str, Any], None] = None,
    ) -> None:
        if name not in BACKENDS:
            raise KeyError(
                f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
            )
        if isinstance(engine_opts, BackendConfig):
            if engine_opts.backend != name:
                raise ValueError(
                    f"BackendGroup({name!r}) got a config for "
                    f"{engine_opts.backend!r}"
                )
            config = engine_opts
        else:
            config = BackendConfig.coerce(
                name, engine_opts, owner="BackendGroup", param="engine_opts"
            )
        if config.table is not None or config.flag_column is not None:
            raise ValueError(
                "table/flag_column are per-namespace in a BackendGroup; "
                "pass them to create()"
            )
        self.name = name
        self.config = config
        self._cost = cost
        self._stores: Dict[str, StorageBackend] = {}
        self.engine: Optional[RelationalEngine] = (
            RelationalEngine(cost, **config.engine_kwargs())
            if name == PsqlBackend.name
            else None
        )
        #: One pooled cache budget across every LSM namespace.
        self.block_cache: Optional[SharedBlockCache] = (
            SharedBlockCache(
                config.block_cache_capacity
                or config.shared_block_cache_capacity
                or 1024
            )
            if name == LsmBackend.name
            else None
        )
        #: One key table across every crypto-shred namespace.
        self.vault: Optional[KeyVault] = (
            KeyVault() if name == CryptoShredBackend.name else None
        )

    def _create_kwargs(self) -> Dict[str, Any]:
        """Per-namespace constructor kwargs: everything set on the config
        except what the group itself provides (pooled cache budget,
        namespace naming)."""
        kwargs = self.config.backend_kwargs()
        kwargs.pop("block_cache_capacity", None)
        kwargs.pop("namespace", None)
        return kwargs

    def create(
        self, namespace: str, row_bytes: int, flag_column: bool = False
    ) -> StorageBackend:
        """Create (and return) the backend for a new namespace."""
        if namespace in self._stores:
            raise ValueError(f"namespace {namespace!r} already exists")
        if self.engine is not None:
            store: StorageBackend = PsqlBackend(
                self._cost,
                row_bytes=row_bytes,
                table=namespace,
                engine=self.engine,
                flag_column=flag_column,
            )
        elif self.block_cache is not None:
            store = make_backend(
                self.name,
                self._cost,
                row_bytes=row_bytes,
                block_cache=self.block_cache,
                namespace=namespace,
                **self._create_kwargs(),
            )
        elif self.vault is not None:
            store = make_backend(
                self.name,
                self._cost,
                row_bytes=row_bytes,
                vault=self.vault,
                **self._create_kwargs(),
            )
        else:
            store = make_backend(
                self.name,
                self._cost,
                row_bytes=row_bytes,
                **self._create_kwargs(),
            )
        self._stores[namespace] = store
        return store

    def store(self, namespace: str) -> StorageBackend:
        return self._stores[namespace]

    def __contains__(self, namespace: str) -> bool:
        return namespace in self._stores

    def commit(self) -> None:
        """One durability point for the whole group (single WAL on psql)."""
        if self.engine is not None:
            self.engine.wal.flush()
        else:
            for store in self._stores.values():
                store.commit()

    def log_bytes(self) -> int:
        if self.engine is not None:
            return self.engine.wal.size_bytes
        return sum(store.log_bytes() for store in self._stores.values())

    @property
    def reclaim_count(self) -> int:
        return sum(s.reclaim_count for s in self._stores.values())

    @property
    def reclaim_full_count(self) -> int:
        return sum(s.reclaim_full_count for s in self._stores.values())
