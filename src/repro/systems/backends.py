"""Storage backends — engine-specific system-actions behind one protocol.

The paper's grounding schema (Figure 2) maps a chosen interpretation of a
concept to *engine-specific* system-actions: "reversibly inaccessible" is a
flag-column write in PSQL but a flagged-value overwrite in an LSM store;
"delete" is DELETE+VACUUM in PSQL but tombstone + full compaction in an LSM
store.  :class:`StorageBackend` is the seam where those mappings plug into
:class:`~repro.systems.database.CompliantDatabase`: the facade speaks the
concept-level vocabulary (insert / read / make-inaccessible / delete /
reclaim / forensic-scan) and each backend realizes it with its engine's own
operations, preserving that engine's cost and retention behaviour.

Two backends ground the evaluation:

* :class:`PsqlBackend` — wraps :class:`~repro.storage.engine.RelationalEngine`
  with the exact semantics the paper's Table 1 assumes (flag column,
  DELETE+VACUUM, DELETE+VACUUM FULL);
* :class:`LsmBackend` — wraps :class:`~repro.lsm.engine.LSMEngine`, grounding
  "reversibly inaccessible" as a flag write (overwrite with a flagged value),
  "delete" as tombstone + full compaction, and "strong delete" as a tombstone
  cascade + full compaction.

Both register their erasure groundings in
:func:`repro.core.erasure.register_erasure`; the facade selects the grounding
matching :attr:`StorageBackend.name` at construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.lsm.engine import LSMEngine
from repro.lsm.memtable import TOMBSTONE
from repro.sim.costs import CostModel
from repro.storage.engine import FlaggedPayload, RelationalEngine
from repro.storage.errors import StorageError, TupleNotFoundError

#: The facade's storage namespace: the PSQL table name (LSM stores have a
#: single keyspace and don't use it).
DATA_TABLE = "data_units"


@dataclass(frozen=True)
class BackendStats:
    """Engine-neutral physical statistics for one backend.

    ``dead_entries`` counts physically retained but logically dead data —
    dead MVCC tuples in PSQL; tombstones plus shadowed (superseded or
    deleted-but-uncompacted) values in an LSM store.  That count is the
    illegal-retention surface of the paper's §1.
    """

    backend: str
    live_entries: int
    dead_entries: int
    total_bytes: int
    detail: Tuple[Tuple[str, Any], ...] = ()


class StorageBackend(ABC):
    """The system-action surface a :class:`CompliantDatabase` drives.

    ``name`` identifies the engine in the :class:`GroundingRegistry`
    ("psql", "lsm", …); the facade looks up and selects the erasure
    grounding registered under it.
    """

    #: Engine identifier used for grounding lookup.
    name: str = "abstract"

    # ------------------------------------------------------------------- DML
    @abstractmethod
    def insert(self, unit_id: Any, value: Any) -> None:
        """Store a new unit's value."""

    @abstractmethod
    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        """Bulk-load ``(unit_id, value)`` pairs; returns the count stored.

        The facade guarantees fresh ids (its model rejects duplicates), so
        backends may skip per-key uniqueness probes — the COPY-style path.
        """

    @abstractmethod
    def read(self, unit_id: Any) -> Any:
        """The unit's current value; raises ``TupleNotFoundError`` if the
        unit holds no live value.  Reversibly-inaccessible values are
        returned unwrapped — visibility policy is the facade's job."""

    @abstractmethod
    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        """Batch point reads, same semantics as :meth:`read` per id."""

    @abstractmethod
    def update(self, unit_id: Any, value: Any) -> None:
        """Replace the unit's value."""

    # ------------------------------------------- reversible inaccessibility
    @abstractmethod
    def make_inaccessible(self, unit_id: Any) -> None:
        """The weakest erasure grounding: hide the value reversibly."""

    @abstractmethod
    def restore(self, unit_id: Any) -> None:
        """Invert :meth:`make_inaccessible`."""

    @abstractmethod
    def is_inaccessible(self, unit_id: Any) -> bool:
        """Whether the unit is currently reversibly inaccessible."""

    # ------------------------------------------------------ physical erasure
    @abstractmethod
    def delete(self, unit_id: Any) -> None:
        """Logically remove the value (dead tuple / tombstone) without
        reclaiming physical space."""

    @abstractmethod
    def reclaim(self) -> None:
        """Make logically deleted values physically unrecoverable — the
        second half of the "delete" grounding (VACUUM / full compaction)."""

    @abstractmethod
    def reclaim_full(self) -> None:
        """The strongest reclamation the engine offers (VACUUM FULL / full
        compaction) — the second half of the "strong delete" grounding."""

    def erase(self, unit_id: Any) -> None:
        """The full "delete" grounding: logical delete + reclamation."""
        self.delete(unit_id)
        self.reclaim()

    def erase_many(self, unit_ids: Sequence[Any], strong: bool = False) -> int:
        """Batch physical erase: delete every unit, then reclaim once.

        Amortizing the reclamation over the batch is exactly how a real
        deployment grounds high-volume erasure; single-unit semantics are
        preserved by :meth:`erase`.
        """
        count = 0
        for unit_id in unit_ids:
            self.delete(unit_id)
            count += 1
        if strong:
            self.reclaim_full()
        else:
            self.reclaim()
        return count

    # -------------------------------------------------------------- forensics
    @abstractmethod
    def physically_present(self, unit_id: Any) -> bool:
        """Whether a disk inspection would still recover the unit's value."""

    @abstractmethod
    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        """Every physical entry as ``(unit_id, live)`` pairs, logically dead
        data included — the illegal-retention primitive."""

    @abstractmethod
    def exists(self, unit_id: Any) -> bool:
        """Whether a live value exists for the unit."""

    @abstractmethod
    def stats(self) -> BackendStats:
        """Physical statistics for the bench harness."""


class PsqlBackend(StorageBackend):
    """Table-1's PSQL column, verbatim.

    All calls delegate to one :class:`RelationalEngine` table created with
    the retrofit flag column; semantics and cost charging are exactly those
    of the engine methods the facade previously called inline.
    """

    name = "psql"

    def __init__(
        self,
        cost: CostModel,
        row_bytes: int = 70,
        table: str = DATA_TABLE,
        engine: Optional[RelationalEngine] = None,
    ) -> None:
        self.table = table
        self.engine = engine if engine is not None else RelationalEngine(cost)
        if not self.engine.has_table(table):
            self.engine.create_table(table, row_bytes, flag_column=True)

    # ------------------------------------------------------------------- DML
    def insert(self, unit_id: Any, value: Any) -> None:
        self.engine.insert(self.table, unit_id, value)

    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        return self.engine.insert_many(self.table, items, check_duplicate=False)

    def read(self, unit_id: Any) -> Any:
        return self.engine.read(self.table, unit_id)

    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        return self.engine.read_many(self.table, unit_ids)

    def update(self, unit_id: Any, value: Any) -> None:
        self.engine.update(self.table, unit_id, value)

    # ------------------------------------------- reversible inaccessibility
    def make_inaccessible(self, unit_id: Any) -> None:
        self.engine.set_flag(self.table, unit_id, True)

    def restore(self, unit_id: Any) -> None:
        self.engine.set_flag(self.table, unit_id, False)

    def is_inaccessible(self, unit_id: Any) -> bool:
        return self.engine.is_flagged(self.table, unit_id)

    # ------------------------------------------------------ physical erasure
    def delete(self, unit_id: Any) -> None:
        self.engine.delete(self.table, unit_id)

    def reclaim(self) -> None:
        self.engine.vacuum(self.table)

    def reclaim_full(self) -> None:
        self.engine.vacuum_full(self.table)

    # -------------------------------------------------------------- forensics
    def physically_present(self, unit_id: Any) -> bool:
        return any(
            key == unit_id for key, _live in self.engine.forensic_scan(self.table)
        )

    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        return self.engine.forensic_scan(self.table)

    def exists(self, unit_id: Any) -> bool:
        return self.engine.exists(self.table, unit_id)

    def stats(self) -> BackendStats:
        s = self.engine.stats(self.table)
        return BackendStats(
            backend=self.name,
            live_entries=s.live_tuples,
            dead_entries=s.dead_tuples,
            total_bytes=s.total_bytes,
            detail=(
                ("pages", s.pages),
                ("index_dead_entries", s.index_dead_entries),
                ("dead_fraction", s.dead_fraction),
            ),
        )


class LsmBackend(StorageBackend):
    """The LSM grounding of Table 1.

    * "reversibly inaccessible" ↦ *flag write*: overwrite the key with a
      :class:`FlaggedPayload`-wrapped value — invertible, and the value stays
      physically present (same Inv/II profile as PSQL's flag column);
    * "delete" ↦ *tombstone + full compaction*: the tombstone alone leaves
      shadowed values in older runs (the §1 retention hazard); the paired
      full compaction drops them and the tombstone;
    * "strong delete" ↦ *tombstone cascade + full compaction*: tombstone the
      unit and its identifying descendants, then compact once.

    Keys are upserted (LSM put semantics); the facade's model layer enforces
    unit-id uniqueness.
    """

    name = "lsm"

    def __init__(
        self,
        cost: CostModel,
        row_bytes: int = 70,
        engine: Optional[LSMEngine] = None,
        memtable_capacity: int = 4096,
        tier_threshold: int = 4,
    ) -> None:
        self._row_bytes = row_bytes
        self.engine = (
            engine
            if engine is not None
            else LSMEngine(
                cost,
                payload_bytes=row_bytes,
                memtable_capacity=memtable_capacity,
                tier_threshold=tier_threshold,
            )
        )

    # ------------------------------------------------------------------- DML
    def insert(self, unit_id: Any, value: Any) -> None:
        self.engine.put(unit_id, value)

    def insert_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        return self.engine.put_many(items)

    def read(self, unit_id: Any) -> Any:
        value = self.engine.get(unit_id)
        if value is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        if isinstance(value, FlaggedPayload):
            value = value.value
        return value

    def read_many(self, unit_ids: Sequence[Any]) -> List[Any]:
        return [self.read(unit_id) for unit_id in unit_ids]

    def update(self, unit_id: Any, value: Any) -> None:
        if self.engine.get(unit_id) is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        self.engine.put(unit_id, value)

    # ------------------------------------------- reversible inaccessibility
    def make_inaccessible(self, unit_id: Any) -> None:
        value = self.engine.get(unit_id)
        if value is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        if isinstance(value, FlaggedPayload):
            value.flagged = True
            return
        self.engine.put(unit_id, FlaggedPayload(True, value))

    def restore(self, unit_id: Any) -> None:
        value = self.engine.get(unit_id)
        if not isinstance(value, FlaggedPayload):
            raise StorageError(f"lsm: key {unit_id!r} is not flagged")
        self.engine.put(unit_id, value.value)

    def is_inaccessible(self, unit_id: Any) -> bool:
        value = self.engine.get(unit_id)
        if value is None:
            raise TupleNotFoundError(f"lsm: no live value for key {unit_id!r}")
        return isinstance(value, FlaggedPayload) and value.flagged

    # ------------------------------------------------------ physical erasure
    def delete(self, unit_id: Any) -> None:
        self.engine.delete(unit_id)

    def reclaim(self) -> None:
        self.engine.full_compaction()

    def reclaim_full(self) -> None:
        self.engine.full_compaction()

    # -------------------------------------------------------------- forensics
    def physically_present(self, unit_id: Any) -> bool:
        return self.engine.physically_present(unit_id)

    def forensic_scan(self) -> List[Tuple[Any, bool]]:
        newest: Dict[Any, Tuple[int, Any]] = {}
        physical: List[Tuple[Any, int, Any]] = []
        for key, (seqno, value) in self.engine.memtable_entries():
            physical.append((key, seqno, value))
            if key not in newest or seqno > newest[key][0]:
                newest[key] = (seqno, value)
        for run in self.engine.runs():
            for key, seqno, value in run.entries():
                physical.append((key, seqno, value))
                if key not in newest or seqno > newest[key][0]:
                    newest[key] = (seqno, value)
        out: List[Tuple[Any, bool]] = []
        for key, seqno, value in physical:
            if value is TOMBSTONE:
                continue  # tombstones carry no recoverable value
            top_seqno, top_value = newest[key]
            out.append((key, seqno == top_seqno and top_value is not TOMBSTONE))
        return out

    def exists(self, unit_id: Any) -> bool:
        return self.engine.get(unit_id) is not None

    def stats(self) -> BackendStats:
        scan = self.forensic_scan()
        live = sum(1 for _key, is_live in scan if is_live)
        buffered = sum(1 for _ in self.engine.memtable_entries())
        return BackendStats(
            backend=self.name,
            live_entries=live,
            dead_entries=(len(scan) - live) + self.engine.tombstone_count,
            total_bytes=self.engine.total_bytes() + buffered * self._row_bytes,
            detail=(
                ("runs", self.engine.run_count),
                ("tombstones", self.engine.tombstone_count),
                ("flushes", self.engine.flush_count),
                ("compactions", self.engine.compaction_count),
            ),
        )


#: Backend name → constructor, the facade's selection table.
BACKENDS: Dict[str, Type[StorageBackend]] = {
    PsqlBackend.name: PsqlBackend,
    LsmBackend.name: LsmBackend,
}


def make_backend(
    name: str, cost: CostModel, row_bytes: int = 70, **kwargs: Any
) -> StorageBackend:
    """Construct a backend by engine name ("psql" or "lsm")."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return cls(cost, row_bytes=row_bytes, **kwargs)
