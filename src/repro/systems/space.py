"""Space accounting — Table 2.

    "To evaluate the 'Metadata explosion' associated with each grounding /
     implementation, we define space factor as the ratio of the total size
     of the database to the total size of personal data in it."

Components register byte providers under one of three classes — personal
data, metadata, index — and the accountant renders the Table-2 row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

MB = 1024 * 1024


@dataclass(frozen=True)
class SpaceReport:
    """One Table-2 row."""

    system: str
    personal_bytes: int
    metadata_bytes: int
    index_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.personal_bytes + self.metadata_bytes + self.index_bytes

    @property
    def space_factor(self) -> float:
        if self.personal_bytes == 0:
            return float("inf") if self.total_bytes else 0.0
        return self.total_bytes / self.personal_bytes

    @property
    def personal_mb(self) -> float:
        return self.personal_bytes / MB

    @property
    def metadata_mb(self) -> float:
        return self.metadata_bytes / MB

    @property
    def total_mb(self) -> float:
        return self.total_bytes / MB

    def row(self) -> Tuple[str, str, str, str, str]:
        """(system, personal MB, metadata MB, total MB, space factor)."""
        return (
            self.system,
            f"{self.personal_mb:.0f}",
            f"{self.metadata_mb:.0f}",
            f"{self.total_mb:.0f}",
            f"{self.space_factor:.1f}x",
        )


class SpaceAccountant:
    """Registry of byte providers, grouped by storage class."""

    CLASSES = ("personal", "metadata", "index")

    def __init__(self, system: str) -> None:
        self._system = system
        self._providers: List[Tuple[str, str, Callable[[], int]]] = []

    def register(
        self, name: str, storage_class: str, provider: Callable[[], int]
    ) -> None:
        if storage_class not in self.CLASSES:
            raise ValueError(
                f"storage_class must be one of {self.CLASSES}, got {storage_class!r}"
            )
        if any(n == name for n, _c, _p in self._providers):
            raise ValueError(f"provider {name!r} already registered")
        self._providers.append((name, storage_class, provider))

    def breakdown(self) -> Dict[str, int]:
        """Bytes per registered provider."""
        return {name: provider() for name, _cls, provider in self._providers}

    def report(self) -> SpaceReport:
        totals = {cls: 0 for cls in self.CLASSES}
        for _name, cls, provider in self._providers:
            totals[cls] += provider()
        return SpaceReport(
            system=self._system,
            personal_bytes=totals["personal"],
            metadata_bytes=totals["metadata"],
            index_bytes=totals["index"],
        )
