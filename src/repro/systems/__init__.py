"""Systems layer — where groundings meet system-actions.

* :mod:`repro.systems.database` — :class:`CompliantDatabase`, the public
  facade tying the Data-CASE model (units, policies, histories, invariants)
  to a concrete engine via a grounding registry.  This is the library a
  downstream service provider would use (paper §4.1).
* :mod:`repro.systems.profiles` + ``pbase``/``pgbench``/``psys`` — the three
  end-to-end "interpretations of GDPR-compliance" of §4.2, benchmarked in
  Figures 4(b)/4(c) and Table 2.
* :mod:`repro.systems.space` — the Table-2 space accounting.
"""

from repro.systems.backends import (
    BACKENDS,
    BackendGroup,
    BackendStats,
    CryptoShredBackend,
    LsmBackend,
    PsqlBackend,
    StorageBackend,
    make_backend,
)
from repro.systems.database import CompliantDatabase, EraseOutcome
from repro.systems.pbase import PBase
from repro.systems.pgbench import PGBench
from repro.systems.profiles import ComplianceProfile, ProfileConfig, RunResult
from repro.systems.psys import PSys
from repro.systems.space import SpaceAccountant, SpaceReport

PROFILES = {"P_Base": PBase, "P_GBench": PGBench, "P_SYS": PSys}


def make_profile(name: str, **kwargs) -> ComplianceProfile:
    """Factory for the paper's three profiles by name."""
    try:
        cls = PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "BACKENDS",
    "BackendGroup",
    "BackendStats",
    "CryptoShredBackend",
    "LsmBackend",
    "PsqlBackend",
    "StorageBackend",
    "make_backend",
    "CompliantDatabase",
    "EraseOutcome",
    "ComplianceProfile",
    "ProfileConfig",
    "RunResult",
    "PBase",
    "PGBench",
    "PSys",
    "PROFILES",
    "make_profile",
    "SpaceAccountant",
    "SpaceReport",
]
