"""P_Base — the least restrictive interpretation of GDPR-compliance (§4.2).

    "The system implements role-based access control using roles, role
     attributes, and role memberships.  It implements histories using native
     csv logging and setting up security policy to record query responses at
     row-level and the data is encrypted using AES-256.  It implements
     deletes (see Table 1 for grounding) to erase data using
     DELETE + VACUUM."

Metadata is inlined with the data rows (no separate table, no joins), so
metadata operations are ordinary row operations on a slightly wider row.
"""

from __future__ import annotations

from repro.access.rbac import Permission, RbacController
from repro.audit.csvlog import CsvLogger
from repro.systems.profiles import (
    DATA_TABLE,
    OPERATOR,
    ComplianceProfile,
)
from repro.workloads.base import OpKind

#: Extra bytes of inlined GDPR metadata per data row.
INLINE_METADATA_BYTES = 30


class PBase(ComplianceProfile):
    """RBAC + CSV logs + AES-256 + the grounded "delete" (interval reclaim)."""

    name = "P_Base"
    maintenance = "interval"

    # ------------------------------------------------------------------ setup
    def _data_row_bytes(self) -> int:
        return self.config.record_bytes + INLINE_METADATA_BYTES

    def _has_metadata_table(self) -> bool:
        return False

    def _setup(self) -> None:
        self.rbac = RbacController(self.cost)
        self.csvlog = CsvLogger(self.cost)
        self.rbac.create_role("gdpr-operator", scope="benchmark")
        for operation in ("create", "read", "update", "delete",
                          "read-metadata", "update-metadata",
                          "read-by-metadata"):
            self.rbac.grant(
                "gdpr-operator", Permission(DATA_TABLE, operation, "*")
            )
        self.rbac.add_member(OPERATOR.name, "gdpr-operator")

    def _register_profile_space(self) -> None:
        self.space.register("csv-logs", "metadata", lambda: self.csvlog.size_bytes)
        self.space.register("role-tables", "metadata", lambda: self.rbac.size_bytes)

    # ------------------------------------------------------------------ hooks
    def _attach_policies(self, key: int) -> None:
        """RBAC is role-scoped: nothing is registered per data unit."""

    def _check_access(self, key: int, op: OpKind, personal: bool) -> bool:
        return self.rbac.is_allowed(OPERATOR.name, DATA_TABLE, op.value, "*")

    def _log_operation(
        self, key: int, op: OpKind, response_bytes: int, personal: bool
    ) -> None:
        self.csvlog.log(
            self.clock.now, OPERATOR.name, op.value.upper(), DATA_TABLE, key
        )

    def _log_load(self, key: int) -> None:
        # Row-level response recording fires on every ingested row.
        self.csvlog.log(self.clock.now, OPERATOR.name, "INSERT", DATA_TABLE, key)

    def _encrypt_at_rest(self, nbytes: int) -> None:
        self.cost.charge_aes256(nbytes)

    def _erase(self, key: int) -> None:
        """The Table-1 "delete" grounding on the active backend: logical
        delete plus the periodic reclamation pass (DELETE+VACUUM on psql,
        tombstone+full compaction on lsm, logical delete+key shred on
        crypto-shred)."""
        self.data.delete(key)
        self._maybe_reclaim()
