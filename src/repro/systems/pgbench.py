"""P_GBench — the middle interpretation of GDPR-compliance (§4.2).

    "The system stores policies and other metadata in a table separate from
     the one containing personal data.  Thus, all queries must perform joins
     to implement appropriate policies.  Histories are implemented by
     logging all queries and responses (no csv logs).  Data is encrypted
     using LUKS (SHA-256).  Erasure is implemented using DELETE in PSQL."
"""

from __future__ import annotations

from repro.audit.querylog import QueryResponseLogger
from repro.core.policy import Policy, Purpose
from repro.systems.policycat import ScalablePolicyCatalog
from repro.systems.profiles import DATA_TABLE, OPERATOR, ComplianceProfile
from repro.workloads.base import OpKind

#: Consent window granted at collection (model-time microseconds).
CONSENT_WINDOW = (0, 10**15)


class PGBench(ComplianceProfile):
    """Joined policy table + query/response logs + LUKS + DELETE-only.

    P_GBench *claims* the "delete" interpretation but never schedules the
    grounding's reclamation half — dead tuples (psql), shadowed values
    (lsm), or unshredded dead volumes (crypto-shred) accumulate forever,
    which is exactly the §1 retention hazard the paper measures.
    """

    name = "P_GBench"
    maintenance = "never"

    def _setup(self) -> None:
        template = [
            Policy(Purpose.SERVICE, OPERATOR, *CONSENT_WINDOW),
            Policy(Purpose.RETENTION, OPERATOR, *CONSENT_WINDOW),
        ]
        self.policies = ScalablePolicyCatalog(self.cost, "joined", template)
        self.querylog = QueryResponseLogger(self.cost)

    def _register_profile_space(self) -> None:
        self.space.register(
            "policy-table", "metadata", lambda: self.policies.size_bytes
        )
        self.space.register(
            "query-logs", "metadata", lambda: self.querylog.size_bytes
        )

    # ------------------------------------------------------------------ hooks
    def _attach_policies(self, key: int) -> None:
        self.policies.attach_unit(key)

    def _check_access(self, key: int, op: OpKind, personal: bool) -> bool:
        allowed, _evaluated = self.policies.evaluate(
            key, OPERATOR, Purpose.SERVICE, self.clock.now
        )
        # Creates target a key that has no policies *yet*: authorized by the
        # collection contract, not by a stored policy row.
        if op in (OpKind.CREATE,):
            return True
        return allowed

    def _log_load(self, key: int) -> None:
        """Bulk load is one statement; per-row logging does not apply."""

    def _log_operation(
        self, key: int, op: OpKind, response_bytes: int, personal: bool
    ) -> None:
        self.querylog.log(
            self.clock.now,
            OPERATOR.name,
            f"{op.value.upper()} {DATA_TABLE} key={key}",
            DATA_TABLE,
            key,
            response_bytes,
        )

    def _encrypt_at_rest(self, nbytes: int) -> None:
        self.cost.charge_luks(nbytes)

    def _metadata_update(self, key: int) -> None:
        """Metadata updates also maintain the policy rows (the separate
        table holds 'policies and other metadata')."""
        super()._metadata_update(key)
        self.cost.charge_policy_insert()

    def _erase(self, key: int) -> None:
        """Logical delete only — dead data accumulates, reclamation never."""
        self.data.delete(key)
        self.meta.delete(key)
        self.policies.detach_unit(key)
