"""Compliance profiles — the execution framework of §4.2.

:class:`ComplianceProfile` owns the shared skeleton: a simulated clock, the
PSQL engine, the load and transaction phases, and the space accounting.
Subclasses (P_Base, P_GBench, P_SYS) override the four hook groups the
paper's descriptions differ on:

=====================  ==================  =====================  =====================
hook                   P_Base              P_GBench               P_SYS
=====================  ==================  =====================  =====================
access control         RBAC (roles)        policy-table joins     FGAC via Sieve
history grounding      CSV logs            query+response logs    query logs + policy-
                                                                  decision logs
encryption at rest     AES-256 (data)      LUKS/SHA-256 (disk)    AES-128 (data + logs)
erase grounding        DELETE + VACUUM     DELETE                 DELETE + VACUUM FULL
                                                                  + purge logs
=====================  ==================  =====================  =====================

The paper's YCSB-C observation is modelled through ``personal=False``
workloads: operations on non-personal tables skip per-unit policy checks
and per-operation response logging (the machinery attaches to personal-data
tables), so the residual compliance overhead on ordinary traffic is small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.core.entities import Entity, controller, processor
from repro.sim.clock import SimClock
from repro.sim.costs import CostBook, CostModel
from repro.storage.engine import RelationalEngine
from repro.systems.space import SpaceAccountant, SpaceReport
from repro.workloads.base import OpKind, Operation, Workload
from repro.workloads.mall import MallDataset, RECORD_BYTES

DATA_TABLE = "personal_data"
META_TABLE = "gdpr_metadata"
PLAIN_TABLE = "plain_data"

#: Operation kinds that commit a write transaction.
_MUTATING_KINDS = frozenset(
    {OpKind.CREATE, OpKind.UPDATE, OpKind.DELETE, OpKind.UPDATE_META}
)

#: The entity executing benchmark operations.
OPERATOR = processor("benchmark-processor")
CONTROLLER = controller("benchmark-controller")


@dataclass
class ProfileConfig:
    """Tunable parameters shared by all profiles."""

    record_bytes: int = RECORD_BYTES
    metadata_row_bytes: int = 72  # one policy/metadata row per record
    vacuum_interval: int = 1_000        # deletes between VACUUMs (P_Base)
    vacuum_full_interval: int = 2_000   # deletes between VACUUM FULLs (P_SYS)
    cipher_tier: str = "cost-only"      # "cost-only" | "fast" | "aes"
    cost_book: CostBook = field(default_factory=CostBook)
    dataset_seed: int = 42


@dataclass(frozen=True)
class RunResult:
    """Outcome of one (profile, workload) execution."""

    profile: str
    workload: str
    record_count: int
    transaction_count: int
    load_seconds: float
    txn_seconds: float
    breakdown: Dict[str, float]
    space: SpaceReport
    denials: int
    vacuum_count: int
    vacuum_full_count: int

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.txn_seconds

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0


class ComplianceProfile:
    """Base class: engine plumbing + run loop.  Subclasses set ``name``."""

    name = "abstract"

    def __init__(self, config: Optional[ProfileConfig] = None) -> None:
        self.config = config or ProfileConfig()
        self.clock = SimClock()
        self.cost = CostModel(self.clock, self.config.cost_book)
        self.engine = RelationalEngine(
            self.cost,
            cipher=None,
            bloat_factor=8.0,
            wal_checkpoint_every=5_000,
        )
        self.space = SpaceAccountant(self.name)
        self.denials = 0
        self._deletes_since_maintenance = 0
        self._loaded_records = 0
        self._setup_tables()
        self._setup()
        self._register_space()

    # ------------------------------------------------------------- lifecycle
    def _setup_tables(self) -> None:
        self.engine.create_table(DATA_TABLE, self._data_row_bytes())
        if self._has_metadata_table():
            self.engine.create_table(META_TABLE, self.config.metadata_row_bytes)

    def _setup(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _register_space(self) -> None:
        self.space.register(
            "personal-data",
            "personal",
            lambda: self._loaded_records * self.config.record_bytes,
        )
        self.space.register(
            "heap-overhead",
            "metadata",
            lambda: max(
                0,
                self.engine.stats(DATA_TABLE).heap_bytes
                - self._loaded_records * self.config.record_bytes,
            ),
        )
        self.space.register(
            "data-index",
            "index",
            lambda: self.engine.stats(DATA_TABLE).index_bytes,
        )
        if self._has_metadata_table():
            self.space.register(
                "metadata-table",
                "metadata",
                lambda: self.engine.stats(META_TABLE).heap_bytes,
            )
            self.space.register(
                "metadata-index",
                "index",
                lambda: self.engine.stats(META_TABLE).index_bytes,
            )
        self.space.register("wal", "metadata", lambda: self.engine.wal.size_bytes)
        self._register_profile_space()

    # ------------------------------------------------- hooks for subclasses
    def _data_row_bytes(self) -> int:
        """P_Base inlines metadata into the data row; others keep it at 70B."""
        return self.config.record_bytes

    def _has_metadata_table(self) -> bool:
        return True

    def _register_profile_space(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def _attach_policies(self, key: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def _check_access(self, key: int, op: OpKind, personal: bool) -> bool:
        """Returns False (and counts a denial) if access is refused."""
        raise NotImplementedError  # pragma: no cover

    def _log_operation(
        self, key: int, op: OpKind, response_bytes: int, personal: bool
    ) -> None:  # pragma: no cover
        raise NotImplementedError

    def _log_load(self, key: int) -> None:
        """History grounding for the bulk-load path.

        Profiles differ: P_Base's row-level response recording fires per
        row even for loads; P_GBench logs at statement level (one bulk COPY
        record — negligible, modelled as zero); P_SYS logs a policy decision
        per record but no per-row query record.
        """
        raise NotImplementedError  # pragma: no cover

    def _erase(self, key: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def _encrypt_at_rest(self, nbytes: int) -> None:  # pragma: no cover
        raise NotImplementedError

    # -------------------------------------------------------------- load path
    def load(self, n_records: int, dataset: Optional[MallDataset] = None) -> None:
        """Load phase: ingest ``n_records`` Mall observations.

        Every record lands in the data table; profiles with a metadata table
        also get one metadata row and their policy registrations; every
        profile logs the ingestion per its history grounding.
        """
        if dataset is None:
            dataset = MallDataset(
                n_devices=max(1, n_records // 100),
                seed=self.config.dataset_seed,
            )
        stream = dataset.stream()
        for _ in range(n_records):
            record = next(stream)
            key = record.record_id
            payload = (record.subject_id, record.timestamp, record.zone)
            self.engine.insert(DATA_TABLE, key, payload, check_duplicate=False)
            self._encrypt_at_rest(self.config.record_bytes)
            if self._has_metadata_table():
                self.engine.insert(
                    META_TABLE,
                    key,
                    (record.subject_id, record.timestamp),
                    check_duplicate=False,
                )
            self._attach_policies(key)
            self._log_load(key)
            self._loaded_records += 1

    # ---------------------------------------------------------- txn execution
    def execute(self, op: Operation, personal: bool = True) -> None:
        """Run one benchmark operation with the profile's full machinery."""
        table = DATA_TABLE if personal else PLAIN_TABLE
        if personal and not self._check_access(op.key, op.kind, personal):
            self.denials += 1
            return
        if op.kind == OpKind.CREATE:
            self.engine.insert(table, op.key, (op.key, 0, "created"))
            self._encrypt_at_rest(self.config.record_bytes)
            if personal and self._has_metadata_table():
                self.engine.insert(META_TABLE, op.key, (op.key, 0))
            if personal:
                self._attach_policies(op.key)
        elif op.kind == OpKind.READ:
            self.engine.read(table, op.key)
            self._encrypt_at_rest(self.config.record_bytes)
        elif op.kind == OpKind.UPDATE:
            self.engine.update(table, op.key, (op.key, 1, "updated"))
            self._encrypt_at_rest(self.config.record_bytes)
        elif op.kind == OpKind.DELETE:
            self._erase(op.key)
        elif op.kind == OpKind.READ_META:
            self._metadata_read(op.key)
        elif op.kind == OpKind.UPDATE_META:
            self._metadata_update(op.key)
        elif op.kind == OpKind.READ_BY_META:
            self._metadata_read(op.key)
            self.engine.read(table, op.key)
            self._encrypt_at_rest(self.config.record_bytes)
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unhandled operation kind: {op.kind}")
        if personal:
            self._log_operation(
                op.key, op.kind, self.config.record_bytes, personal
            )
            if op.kind in _MUTATING_KINDS:
                # GDPR operations commit individually (each is a user-visible
                # transaction); the load path group-commits instead.
                self.engine.wal.flush()

    def _metadata_read(self, key: int) -> None:
        if self._has_metadata_table():
            self.engine.read(META_TABLE, key)
        else:
            # Inline metadata (P_Base): the data row holds it.
            self.engine.read(DATA_TABLE, key)
            self._encrypt_at_rest(self.config.record_bytes)

    def _metadata_update(self, key: int) -> None:
        if self._has_metadata_table():
            self.engine.update(META_TABLE, key, (key, 2))
        else:
            self.engine.update(DATA_TABLE, key, (key, 2, "meta-updated"))
            self._encrypt_at_rest(self.config.record_bytes)

    # --------------------------------------------------------------- running
    def run(self, workload: Workload, personal: bool = True) -> RunResult:
        """Load + execute a workload; returns the timing/space result."""
        if not personal and not self.engine.has_table(PLAIN_TABLE):
            self.engine.create_table(PLAIN_TABLE, self.config.record_bytes)
        load_watch = self.clock.stopwatch()
        if personal:
            self.load(workload.record_count)
        else:
            for key in range(workload.record_count):
                self.engine.insert(
                    PLAIN_TABLE, key, (key, 0, "plain"), check_duplicate=False
                )
                self._encrypt_at_rest(self.config.record_bytes)
        load_seconds = load_watch.stop() / 1e6
        txn_watch = self.clock.stopwatch()
        for op in workload:
            self.execute(op, personal=personal)
        txn_seconds = txn_watch.stop() / 1e6
        return RunResult(
            profile=self.name,
            workload=workload.name,
            record_count=workload.record_count,
            transaction_count=workload.transaction_count,
            load_seconds=load_seconds,
            txn_seconds=txn_seconds,
            breakdown=self.cost.breakdown_seconds(),
            space=self.space.report(),
            denials=self.denials,
            vacuum_count=self.engine.vacuum_count,
            vacuum_full_count=self.engine.vacuum_full_count,
        )
