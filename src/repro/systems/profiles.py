"""Compliance profiles — the execution framework of §4.2.

:class:`ComplianceProfile` owns the shared skeleton: a simulated clock, a
pluggable **storage backend** (psql / lsm / crypto-shred), the load and
transaction phases, and the space accounting.  Subclasses (P_Base,
P_GBench, P_SYS) override the four hook groups the paper's descriptions
differ on:

=====================  ==================  =====================  =====================
hook                   P_Base              P_GBench               P_SYS
=====================  ==================  =====================  =====================
access control         RBAC (roles)        policy-table joins     FGAC via Sieve
history grounding      CSV logs            query+response logs    query logs + policy-
                                                                  decision logs
encryption at rest     AES-256 (data)      LUKS/SHA-256 (disk)    AES-128 (data + logs)
erase grounding        delete (grounded,   delete (reclamation    strong delete
                       interval reclaim)   never runs)            + purge logs
=====================  ==================  =====================  =====================

Erase groundings are **resolved from the** :class:`GroundingRegistry`: each
profile declares the interpretation it claims (Figure 2 step 2) and the
registry supplies the system-actions registered for the active backend —
DELETE+VACUUM on psql, tombstone+full compaction on lsm, logical delete+key
shred on crypto-shred.  The profile executes them through the
backend-neutral :class:`StorageBackend` verbs (``delete`` / ``reclaim`` /
``reclaim_full``), so the full Figure-4 profile × workload grid runs on
every backend.  P_GBench's incompleteness is preserved deliberately: it
*claims* "delete" but never schedules the reclamation half, which is the §1
hazard the paper measures (dead tuples / shadowed values accumulate).

The paper's YCSB-C observation is modelled through ``personal=False``
workloads: operations on non-personal tables skip per-unit policy checks
and per-operation response logging (the machinery attaches to personal-data
tables), so the residual compliance overhead on ordinary traffic is small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.config import BackendConfig
from repro.core.entities import controller, processor
from repro.core.erasure import ErasureInterpretation, register_erasure
from repro.core.grounding import Grounding, GroundingRegistry
from repro.sim.clock import SimClock
from repro.sim.costs import CostBook, CostModel
from repro.systems.backends import BackendGroup, StorageBackend
from repro.systems.space import SpaceAccountant, SpaceReport
from repro.workloads.base import Operation, OpKind, Workload
from repro.workloads.mall import RECORD_BYTES, MallDataset

DATA_TABLE = "personal_data"
META_TABLE = "gdpr_metadata"
PLAIN_TABLE = "plain_data"

#: Operation kinds that commit a write transaction.
_MUTATING_KINDS = frozenset(
    {OpKind.CREATE, OpKind.UPDATE, OpKind.DELETE, OpKind.UPDATE_META}
)

#: The entity executing benchmark operations.
OPERATOR = processor("benchmark-processor")
CONTROLLER = controller("benchmark-controller")

#: Engine-family tuning the profiles run with (paper-calibrated): the PSQL
#: deployment pays a high bloat penalty and recycles WAL segments every 5k
#: appends; the LSM deployment uses the engine defaults (block cache on).
PROFILE_ENGINE_OPTS: Dict[str, BackendConfig] = {
    "psql": BackendConfig(
        backend="psql", bloat_factor=8.0, wal_checkpoint_every=5_000
    ),
    "lsm": BackendConfig(backend="lsm"),
    "crypto-shred": BackendConfig(backend="crypto-shred"),
}


@dataclass
class ProfileConfig:
    """Tunable parameters shared by all profiles."""

    record_bytes: int = RECORD_BYTES
    metadata_row_bytes: int = 72  # one policy/metadata row per record
    vacuum_interval: int = 1_000        # deletes between reclamations (P_Base)
    vacuum_full_interval: int = 2_000   # deletes between full reclaims (P_SYS)
    cipher_tier: str = "cost-only"      # "cost-only" | "fast" | "aes"
    cost_book: CostBook = field(default_factory=CostBook)
    dataset_seed: int = 42


@dataclass(frozen=True)
class RunResult:
    """Outcome of one (profile, workload) execution."""

    profile: str
    workload: str
    record_count: int
    transaction_count: int
    load_seconds: float
    txn_seconds: float
    breakdown: Dict[str, float]
    space: SpaceReport
    denials: int
    vacuum_count: int
    vacuum_full_count: int
    backend: str = "psql"

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.txn_seconds

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0


class ComplianceProfile:
    """Base class: backend plumbing + run loop.  Subclasses set ``name``."""

    name = "abstract"

    #: The erasure interpretation the profile claims (Figure 2, step 2) —
    #: resolved against the active backend in the grounding registry.
    erasure_interpretation: ErasureInterpretation = ErasureInterpretation.DELETED

    #: How the grounding's reclamation half is scheduled: "interval" runs
    #: ``reclaim`` every ``vacuum_interval`` deletes; "interval-full" runs
    #: ``reclaim_full`` every ``vacuum_full_interval``; "never" leaves dead
    #: data behind forever (the P_GBench incompleteness the paper measures).
    maintenance: str = "interval"

    def __init__(
        self,
        config: Optional[ProfileConfig] = None,
        backend: str = "psql",
        engine_opts: Union[BackendConfig, Dict[str, Any], None] = None,
    ) -> None:
        self.config = config or ProfileConfig()
        self.clock = SimClock()
        self.cost = CostModel(self.clock, self.config.cost_book)
        self.backend_name = backend
        if isinstance(engine_opts, BackendConfig):
            overrides = engine_opts
            if overrides.backend != backend:
                raise ValueError(
                    f"profile backend {backend!r} got a config for "
                    f"{overrides.backend!r}"
                )
        else:
            overrides = BackendConfig.coerce(
                backend, engine_opts, owner=type(self).__name__,
                param="engine_opts",
            )
        base = PROFILE_ENGINE_OPTS.get(backend) or BackendConfig(backend=backend)
        self.backend_config = base.merged(overrides)
        self.storage = BackendGroup(
            backend, self.cost, engine_opts=self.backend_config
        )
        #: The shared relational engine on psql deployments (None elsewhere)
        #: — an escape hatch for engine-level forensics in tests/examples.
        self.engine = self.storage.engine
        self.groundings = GroundingRegistry()
        self._interpretations = register_erasure(self.groundings)
        self.erase_grounding: Grounding = self.groundings.select(
            self.groundings.grounding(
                "erasure", self.erasure_interpretation.label, backend
            ),
            backend,
        )
        self.space = SpaceAccountant(self.name)
        self.denials = 0
        self._deletes_since_maintenance = 0
        self._loaded_records = 0
        self._setup_tables()
        self._setup()
        self._register_space()

    # ------------------------------------------------------------- lifecycle
    def _setup_tables(self) -> None:
        self.data: StorageBackend = self.storage.create(
            DATA_TABLE, self._data_row_bytes()
        )
        self.meta: Optional[StorageBackend] = None
        if self._has_metadata_table():
            self.meta = self.storage.create(
                META_TABLE, self.config.metadata_row_bytes
            )

    def _setup(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _register_space(self) -> None:
        self.space.register(
            "personal-data",
            "personal",
            lambda: self._loaded_records * self.config.record_bytes,
        )
        self.space.register(
            "heap-overhead",
            "metadata",
            lambda: max(
                0,
                self.data.data_bytes()
                - self._loaded_records * self.config.record_bytes,
            ),
        )
        self.space.register("data-index", "index", self.data.index_bytes)
        if self.meta is not None:
            self.space.register("metadata-table", "metadata", self.meta.data_bytes)
            self.space.register("metadata-index", "index", self.meta.index_bytes)
        self.space.register("wal", "metadata", self.storage.log_bytes)
        self._register_profile_space()

    # ------------------------------------------------- hooks for subclasses
    def _data_row_bytes(self) -> int:
        """P_Base inlines metadata into the data row; others keep it at 70B."""
        return self.config.record_bytes

    def _has_metadata_table(self) -> bool:
        return True

    def _register_profile_space(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def _attach_policies(self, key: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def _check_access(self, key: int, op: OpKind, personal: bool) -> bool:
        """Returns False (and counts a denial) if access is refused."""
        raise NotImplementedError  # pragma: no cover

    def _log_operation(
        self, key: int, op: OpKind, response_bytes: int, personal: bool
    ) -> None:  # pragma: no cover
        raise NotImplementedError

    def _log_load(self, key: int) -> None:
        """History grounding for the bulk-load path.

        Profiles differ: P_Base's row-level response recording fires per
        row even for loads; P_GBench logs at statement level (one bulk COPY
        record — negligible, modelled as zero); P_SYS logs a policy decision
        per record but no per-row query record.
        """
        raise NotImplementedError  # pragma: no cover

    def _erase(self, key: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def _encrypt_at_rest(self, nbytes: int) -> None:  # pragma: no cover
        raise NotImplementedError

    # ---------------------------------------------------------- maintenance
    def _maybe_reclaim(self) -> None:
        """Run the grounding's reclamation half on the profile's schedule —
        the second system-action of the selected erase grounding (VACUUM /
        full compaction / key shred, depending on the backend)."""
        if self.maintenance == "never":
            return
        self._deletes_since_maintenance += 1
        if self.maintenance == "interval-full":
            if self._deletes_since_maintenance >= self.config.vacuum_full_interval:
                self.data.reclaim_full()
                self._deletes_since_maintenance = 0
        elif self._deletes_since_maintenance >= self.config.vacuum_interval:
            self.data.reclaim()
            self._deletes_since_maintenance = 0

    # -------------------------------------------------------------- load path
    def load(self, n_records: int, dataset: Optional[MallDataset] = None) -> None:
        """Load phase: ingest ``n_records`` Mall observations.

        Every record lands in the data store through the COPY-style fresh
        path; profiles with a metadata table also get one metadata row and
        their policy registrations; every profile logs the ingestion per
        its history grounding.
        """
        if dataset is None:
            dataset = MallDataset(
                n_devices=max(1, n_records // 100),
                seed=self.config.dataset_seed,
            )
        stream = dataset.stream()
        for _ in range(n_records):
            record = next(stream)
            key = record.record_id
            payload = (record.subject_id, record.timestamp, record.zone)
            self.data.insert(key, payload, fresh=True)
            self._encrypt_at_rest(self.config.record_bytes)
            if self.meta is not None:
                self.meta.insert(
                    key, (record.subject_id, record.timestamp), fresh=True
                )
            self._attach_policies(key)
            self._log_load(key)
            self._loaded_records += 1

    # ---------------------------------------------------------- txn execution
    @property
    def plain(self) -> StorageBackend:
        """The non-personal table, created on first use."""
        if PLAIN_TABLE not in self.storage:
            self.storage.create(PLAIN_TABLE, self.config.record_bytes)
        return self.storage.store(PLAIN_TABLE)

    def execute(self, op: Operation, personal: bool = True) -> None:
        """Run one benchmark operation with the profile's full machinery."""
        store = self.data if personal else self.plain
        if personal and not self._check_access(op.key, op.kind, personal):
            self.denials += 1
            return
        if op.kind == OpKind.CREATE:
            store.insert(op.key, (op.key, 0, "created"))
            self._encrypt_at_rest(self.config.record_bytes)
            if personal and self.meta is not None:
                self.meta.insert(op.key, (op.key, 0))
            if personal:
                self._attach_policies(op.key)
        elif op.kind == OpKind.READ:
            store.read(op.key)
            self._encrypt_at_rest(self.config.record_bytes)
        elif op.kind == OpKind.UPDATE:
            store.update(op.key, (op.key, 1, "updated"))
            self._encrypt_at_rest(self.config.record_bytes)
        elif op.kind == OpKind.DELETE:
            self._erase(op.key)
        elif op.kind == OpKind.READ_META:
            self._metadata_read(op.key)
        elif op.kind == OpKind.UPDATE_META:
            self._metadata_update(op.key)
        elif op.kind == OpKind.READ_BY_META:
            self._metadata_read(op.key)
            store.read(op.key)
            self._encrypt_at_rest(self.config.record_bytes)
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unhandled operation kind: {op.kind}")
        if personal:
            self._log_operation(
                op.key, op.kind, self.config.record_bytes, personal
            )
            if op.kind in _MUTATING_KINDS:
                # GDPR operations commit individually (each is a user-visible
                # transaction); the load path group-commits instead.
                self.storage.commit()

    def _metadata_read(self, key: int) -> None:
        if self.meta is not None:
            self.meta.read(key)
        else:
            # Inline metadata (P_Base): the data row holds it.
            self.data.read(key)
            self._encrypt_at_rest(self.config.record_bytes)

    def _metadata_update(self, key: int) -> None:
        if self.meta is not None:
            self.meta.update(key, (key, 2))
        else:
            self.data.update(key, (key, 2, "meta-updated"))
            self._encrypt_at_rest(self.config.record_bytes)

    # --------------------------------------------------------------- running
    def run(self, workload: Workload, personal: bool = True) -> RunResult:
        """Load + execute a workload; returns the timing/space result."""
        load_watch = self.clock.stopwatch()
        if personal:
            self.load(workload.record_count)
        else:
            plain = self.plain
            for key in range(workload.record_count):
                plain.insert(key, (key, 0, "plain"), fresh=True)
                self._encrypt_at_rest(self.config.record_bytes)
        load_seconds = load_watch.stop() / 1e6
        txn_watch = self.clock.stopwatch()
        for op in workload:
            self.execute(op, personal=personal)
        txn_seconds = txn_watch.stop() / 1e6
        return RunResult(
            profile=self.name,
            workload=workload.name,
            record_count=workload.record_count,
            transaction_count=workload.transaction_count,
            load_seconds=load_seconds,
            txn_seconds=txn_seconds,
            breakdown=self.cost.breakdown_seconds(),
            space=self.space.report(),
            denials=self.denials,
            vacuum_count=self.storage.reclaim_count,
            vacuum_full_count=self.storage.reclaim_full_count,
            backend=self.backend_name,
        )
