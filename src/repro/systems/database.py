"""CompliantDatabase — the grounded, end-to-end public API.

This facade is what the paper envisions a service provider building with
Data-CASE (§4.1): every stored value is a modelled
:class:`~repro.core.dataunit.DataUnit`; every access is policy-checked and
recorded in the formal action history; erasure dispatches to the
system-actions of the *selected grounding* (Figure 2's step 3); and
compliance is demonstrable — :meth:`check_compliance` evaluates the formal
invariants over the actual history.

Storage is **engine-pluggable**: the facade drives a
:class:`~repro.systems.backends.StorageBackend` and selects the erasure
grounding registered for that backend's engine in the
:class:`~repro.core.grounding.GroundingRegistry`.  With the default
``backend="psql"`` the Table-1 semantics hold literally: "reversibly
inaccessible" flips the retrofit flag column, "delete" runs DELETE+VACUUM,
"strong delete" runs DELETE+VACUUM FULL and cascades over the provenance
graph.  With ``backend="lsm"`` the same interpretations ground as a flag
write, tombstone + full compaction, and tombstone cascade + full compaction.
On both native engines "permanently delete" raises — neither has a
system-action for drive sanitization.  ``backend="crypto-shred"`` is the
retrofit the paper's §1 calls for: per-unit key volumes make "permanently
delete" executable as key shred + sector sanitize, so the facade dispatches
it like any other interpretation (strong-delete cascade, then per-victim
sanitization recorded as SANITIZE actions).

Batch entry points (:meth:`collect_many`, :meth:`read_many`,
:meth:`erase_many`) keep the same policy/history semantics per unit while
amortizing engine-level per-call overhead — the path the bench harness uses
to drive high-volume workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.access.errors import AccessDenied
from repro.audit.log import ActionLog
from repro.config import BackendConfig
from repro.core.actions import ActionType
from repro.core.compliance import ComplianceChecker, ComplianceReport
from repro.core.consistency import regulation_requires_any_of
from repro.core.dataunit import Database, DataUnit, derive
from repro.core.entities import Entity, EntityRegistry
from repro.core.erasure import (
    ErasureInterpretation,
    ErasureTimeline,
    register_erasure,
)
from repro.core.grounding import GroundingRegistry
from repro.core.invariants import G17ErasureDeadline, G6PolicyConsistency
from repro.core.policy import Policy, PolicySet, Purpose
from repro.core.provenance import Dependency, DependencyKind, ProvenanceGraph
from repro.sim.clock import SimClock
from repro.sim.costs import CostBook, CostModel
from repro.systems.backends import StorageBackend, make_backend

#: Purpose recorded for GDPR Art. 15 subject-access reads — lawful by
#: regulation, no stored policy required.
SUBJECT_ACCESS_PURPOSE = "subject-access"

#: Purpose recorded for grounded shard-migration MOVE actions: operational
#: processing the controller performs on its own infrastructure (moving a
#: value between physical sites is processing the audit trail must show —
#: the *Data Capsule* accountability requirement).
REBALANCE_PURPOSE = "shard-rebalance"

#: Purpose recorded for read-repair REPAIR actions: converging a lagging
#: replica re-copies a value the controller already lawfully holds, and the
#: audit trail must show that the copy happened (and that it could never
#: resurrect an erased value — repairs replay the scrubbed replication log).
REPAIR_PURPOSE = "replica-repair"


@dataclass(frozen=True)
class SubjectAccessResult:
    """The Art. 15 response package for one data subject."""

    subject: Entity
    requested_at: int
    units: Tuple["SubjectAccessUnit", ...]

    def render(self) -> str:
        lines = [
            f"Subject access request for {self.subject.name} "
            f"@ t={self.requested_at}: {len(self.units)} data unit(s)"
        ]
        for unit in self.units:
            state = "inaccessible" if unit.inaccessible else f"erased={unit.erased}"
            lines.append(
                f"  {unit.unit_id}: value={unit.value!r} "
                f"({state}, origin={','.join(sorted(unit.origins))})"
            )
            for purpose, entity, t_begin, t_final in unit.policies:
                lines.append(
                    f"    policy ⟨{purpose}, {entity}, {t_begin}, {t_final}⟩"
                )
            lines.append(f"    {unit.action_count} recorded action(s)")
        return "\n".join(lines)


@dataclass(frozen=True)
class SubjectAccessUnit:
    """One unit's disclosure within a subject-access response.

    ``inaccessible`` marks a reversibly-inaccessible unit: §3.1 hides such
    values from data subjects, so an Art. 15 response must report the unit's
    existence without disclosing the value.
    """

    unit_id: str
    value: Any
    erased: bool
    origins: Tuple[str, ...]
    policies: Tuple[Tuple[str, str, int, int], ...]
    action_count: int
    inaccessible: bool = False


class UnsupportedGroundingError(RuntimeError):
    """The selected interpretation has no implementable system-action on
    this engine — the system must be retrofitted (paper §1)."""


@dataclass(frozen=True)
class EraseOutcome:
    """What an erase call actually did."""

    unit_id: str
    interpretation: ErasureInterpretation
    system_actions: Tuple[str, ...]
    cascaded_units: Tuple[str, ...] = ()
    timestamp: int = 0


class CompliantDatabase:
    """A policy-enforcing, history-keeping data store over a pluggable
    storage backend ("psql" by default, or "lsm")."""

    def __init__(
        self,
        controller: Entity,
        default_erasure: ErasureInterpretation = ErasureInterpretation.DELETED,
        row_bytes: int = 70,
        cost_book: Optional[CostBook] = None,
        backend: Union[str, StorageBackend, BackendConfig] = "psql",
        backend_opts: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not controller.is_controller:
            raise ValueError("the owning entity must hold the controller role")
        self.controller = controller
        self.clock = SimClock()
        self.cost = CostModel(self.clock, cost_book or CostBook())
        if isinstance(backend, (str, BackendConfig)):
            config = BackendConfig.coerce(
                backend, backend_opts, owner="CompliantDatabase"
            )
            if config.shared_block_cache is not None or config.shared_vault:
                raise ValueError(
                    "shared_block_cache/shared_vault pool one resource "
                    "across many nodes — they apply to ReplicatedStore "
                    "and BackendGroup, not a single-backend facade"
                )
            backend = make_backend(
                config.backend,
                self.cost,
                row_bytes=row_bytes,
                **config.backend_kwargs(),
            )
        elif backend_opts:
            raise ValueError(
                "backend_opts only applies when the backend is built by name"
            )
        self.backend = backend
        #: The raw engine object (RelationalEngine or LSMEngine) — exposed
        #: for forensics, fault injection, and engine-level statistics.
        #: Backends that are their own engine (crypto-shred) expose
        #: themselves.
        self.engine = getattr(backend, "engine", backend)
        # LSM engines announce every compaction merge; the facade grounds
        # each GC'd tombstone as a system-action in the audit timeline so
        # the physical completion of "delete" is demonstrable (§3.1).
        subscribe = getattr(self.engine, "add_compaction_listener", None)
        if callable(subscribe):
            subscribe(self._record_compaction)
        self.model = Database()
        self.provenance = ProvenanceGraph()
        self.log = ActionLog(self.cost)
        self.entities = EntityRegistry([controller])
        self.groundings = GroundingRegistry()
        self._interpretations = register_erasure(self.groundings)
        self._select_erasure(default_erasure)
        # Lawful without an explicit stored policy: the collection contract
        # itself (GDPR Art. 6(1)(b) — processing necessary for a contract),
        # compliance-mandated erasure (Art. 17), subject access (Art. 15),
        # and grounded shard migration (Art. 6(1)(f) — operating the
        # controller's own infrastructure, lawful precisely because every
        # move is tracked and its source grounded; see _record_move).
        self._regulation_requires = regulation_requires_any_of(
            Purpose.COMPLIANCE_ERASE,
            Purpose.CONTRACT,
            SUBJECT_ACCESS_PURPOSE,
            REBALANCE_PURPOSE,
            REPAIR_PURPOSE,
        )

    # -------------------------------------------------------------- grounding
    def _select_erasure(self, interpretation: ErasureInterpretation) -> None:
        grounding = self.groundings.grounding(
            "erasure", interpretation.label, self.backend.name
        )
        if not grounding.is_implementable:
            raise UnsupportedGroundingError(
                f"{self.backend.name} has no system-action for "
                f"{interpretation.label!r} (Table 1: 'Not supported'); "
                "retrofit the engine or choose a weaker interpretation"
            )
        self.groundings.select(grounding, self.backend.name)
        self.default_erasure = interpretation

    def _grounding_actions(
        self, interpretation: ErasureInterpretation
    ) -> Tuple[str, ...]:
        """The backend's registered system-action names for an interpretation."""
        grounding = self.groundings.grounding(
            "erasure", interpretation.label, self.backend.name
        )
        return tuple(a.name for a in grounding.system_actions)

    @property
    def selected_erasure(self) -> ErasureInterpretation:
        return self.default_erasure

    # -------------------------------------------------------------- entities
    def register_entity(self, entity: Entity) -> Entity:
        return self.entities.register(entity)

    # ------------------------------------------------------------ collection
    def collect(
        self,
        unit_id: str,
        subject: Entity,
        origin: str,
        value: Any,
        policies: Iterable[Policy],
        erase_deadline: Optional[int] = None,
    ) -> DataUnit:
        """Collect a base data unit with consent.

        Records the CONTRACT (disclosure/consent, Figure 1 category I)
        before the CREATE; attaches the given policies plus a
        compliance-erase policy if ``erase_deadline`` is set (G17).
        """
        # Guard before touching the engine: LSM inserts are upserts, so a
        # duplicate id would silently overwrite the stored value while the
        # model still holds the old one.
        if unit_id in self.model:
            raise ValueError(f"unit {unit_id!r} already collected")
        self.entities.register(subject)
        unit = self._contracted_unit(
            unit_id, subject, origin, policies, erase_deadline
        )
        self.backend.insert(unit_id, value)
        self._admit(unit, value)
        return unit

    def collect_many(
        self,
        records: Iterable[Tuple[str, Entity, str, Any, Iterable[Policy]]],
        erase_deadline: Optional[int] = None,
    ) -> List[DataUnit]:
        """Bulk collection: ``(unit_id, subject, origin, value, policies)``
        records, loaded through the backend's COPY-style batch path.

        Per-unit semantics are preserved — a CONTRACT record precedes every
        CREATE, and each unit gets the same policy treatment as
        :meth:`collect` — but catalog resolution and uniqueness probing are
        amortized over the batch.
        """
        materialized = list(records)
        # Validate every id before logging any CONTRACT: duplicates are
        # checked against the model *and* the batch itself (the COPY-style
        # engine path skips uniqueness probes), and a rejected batch must
        # not leave audit records attesting contracts for uncollected data.
        staged_ids: set = set()
        for unit_id, *_rest in materialized:
            if unit_id in self.model or unit_id in staged_ids:
                raise ValueError(f"unit {unit_id!r} already collected")
            staged_ids.add(unit_id)
        staged: List[Tuple[DataUnit, Any]] = []
        for unit_id, subject, origin, value, policies in materialized:
            self.entities.register(subject)
            unit = self._contracted_unit(
                unit_id, subject, origin, policies, erase_deadline
            )
            staged.append((unit, value))
        self.backend.insert_many((u.unit_id, v) for u, v in staged)
        for unit, value in staged:
            self._admit(unit, value)
        return [unit for unit, _value in staged]

    def _contracted_unit(
        self,
        unit_id: str,
        subject: Entity,
        origin: str,
        policies: Iterable[Policy],
        erase_deadline: Optional[int],
    ) -> DataUnit:
        """Build the modelled unit and record its CONTRACT action."""
        policy_set = PolicySet(policies)
        if erase_deadline is not None:
            policy_set.add(
                Policy(
                    Purpose.COMPLIANCE_ERASE,
                    self.controller,
                    self.clock.now,
                    erase_deadline,
                )
            )
        unit = DataUnit(unit_id, subject, origin, policies=policy_set)
        self.log.record(
            unit_id, Purpose.CONTRACT, subject, ActionType.CONTRACT, self.clock.now
        )
        return unit

    def _admit(self, unit: DataUnit, value: Any) -> None:
        """Register a freshly stored unit in the model, provenance, history."""
        now = self.clock.now
        unit.write(value, now)
        self.model.add(unit)
        self.provenance.add_unit(unit.unit_id)
        self.log.record(
            unit.unit_id, Purpose.CONTRACT, self.controller, ActionType.CREATE, now
        )

    # ----------------------------------------------------------------- access
    def _authorize(self, unit_id: str, entity: Entity, purpose: str) -> DataUnit:
        """G6 enforcement at the gate: policy check plus §3.1 visibility
        (reversibly-inaccessible values are hidden from data subjects)."""
        unit = self.model.get(unit_id)
        if unit.policies.authorizing(purpose, entity, self.clock.now) is None:
            raise AccessDenied(entity.name, purpose, unit_id)
        if entity.is_data_subject and self.backend.is_inaccessible(unit_id):
            raise AccessDenied(entity.name, purpose, unit_id)
        return unit

    def read(self, unit_id: str, entity: Entity, purpose: str) -> Any:
        """Policy-checked read; raises :class:`AccessDenied` when no policy
        authorizes (entity, purpose) now — G6 enforcement at the gate."""
        self._authorize(unit_id, entity, purpose)
        value = self.backend.read(unit_id)
        self.log.record(unit_id, purpose, entity, ActionType.READ, self.clock.now)
        return value

    def read_many(
        self, unit_ids: Sequence[str], entity: Entity, purpose: str
    ) -> List[Any]:
        """Batch policy-checked reads: every unit is authorized exactly as
        in :meth:`read`, the values come back through the backend's batch
        path, and one READ action is recorded per unit."""
        for unit_id in unit_ids:
            self._authorize(unit_id, entity, purpose)
        values = self.backend.read_many(unit_ids)
        now = self.clock.now
        for unit_id in unit_ids:
            self.log.record(unit_id, purpose, entity, ActionType.READ, now)
        return values

    def update(
        self, unit_id: str, entity: Entity, purpose: str, value: Any
    ) -> None:
        unit = self.model.get(unit_id)
        now = self.clock.now
        if unit.policies.authorizing(purpose, entity, now) is None:
            raise AccessDenied(entity.name, purpose, unit_id)
        self.backend.update(unit_id, value)
        now = self.clock.now
        unit.write(value, now)
        self.log.record(unit_id, purpose, entity, ActionType.UPDATE, now)

    def derive_unit(
        self,
        new_id: str,
        base_ids: Sequence[str],
        value: Any,
        entity: Entity,
        purpose: str,
        kind: DependencyKind = DependencyKind.AGGREGATE,
        invertible: bool = False,
        identifying: bool = True,
    ) -> DataUnit:
        """Produce derived data (§2.1) and record its provenance."""
        if new_id in self.model:
            raise ValueError(f"unit {new_id!r} already collected")
        bases = [self.model.get(b) for b in base_ids]
        now = self.clock.now
        for base in bases:
            if base.policies.authorizing(purpose, entity, now) is None:
                raise AccessDenied(entity.name, purpose, base.unit_id)
        unit = derive(new_id, bases, value, now)
        self.backend.insert(new_id, value)
        self.model.add(unit)
        self.provenance.add_unit(new_id)
        for base in bases:
            self.provenance.record(
                Dependency(base.unit_id, new_id, kind, invertible, identifying)
            )
            self.log.record(
                base.unit_id, purpose, entity, ActionType.DERIVE, self.clock.now
            )
        self.log.record(new_id, purpose, entity, ActionType.CREATE, self.clock.now)
        return unit

    # ----------------------------------------------------------------- erase
    def erase(
        self,
        unit_id: str,
        entity: Optional[Entity] = None,
        interpretation: Optional[ErasureInterpretation] = None,
    ) -> EraseOutcome:
        """Erase under the selected (or an explicit) interpretation."""
        interpretation = interpretation or self.default_erasure
        entity = entity or self.controller
        unit = self.model.get(unit_id)
        if interpretation is ErasureInterpretation.REVERSIBLY_INACCESSIBLE:
            return self._erase_reversible(unit, entity)
        if interpretation is ErasureInterpretation.PERMANENTLY_DELETED:
            self._require_sanitization()
        return self._erase_physical([unit.unit_id], interpretation, entity)[0]

    def erase_many(
        self,
        unit_ids: Sequence[str],
        entity: Optional[Entity] = None,
        interpretation: Optional[ErasureInterpretation] = None,
    ) -> List[EraseOutcome]:
        """Batch erasure under one interpretation.

        Physical interpretations batch their reclamation: every victim is
        logically deleted first, then the backend reclaims once (one VACUUM
        / full compaction for the whole batch) — how a real deployment
        grounds high-volume Art. 17 streams without per-request rewrites.
        """
        interpretation = interpretation or self.default_erasure
        entity = entity or self.controller
        if interpretation is ErasureInterpretation.REVERSIBLY_INACCESSIBLE:
            return [
                self._erase_reversible(self.model.get(u), entity)
                for u in unit_ids
            ]
        if interpretation is ErasureInterpretation.PERMANENTLY_DELETED:
            self._require_sanitization()
        return self._erase_physical(list(unit_ids), interpretation, entity)

    def _require_sanitization(self) -> None:
        """Permanent deletion needs an implementable grounding — i.e. a
        backend with a sanitization system-action (crypto-shred)."""
        grounding = self.groundings.grounding(
            "erasure",
            ErasureInterpretation.PERMANENTLY_DELETED.label,
            self.backend.name,
        )
        if not (grounding.is_implementable and self.backend.supports_sanitize):
            raise UnsupportedGroundingError(
                f"permanent deletion is not supported on {self.backend.name} "
                "(Table 1); retrofit the engine (e.g. crypto-shred) or "
                "choose a weaker interpretation"
            )

    def _erase_physical(
        self,
        unit_ids: Sequence[str],
        interpretation: ErasureInterpretation,
        entity: Entity,
    ) -> List[EraseOutcome]:
        """Physically erase units (and, for strong/permanent delete, their
        identifying descendants per §3.1): logically delete every victim,
        then reclaim once for the whole batch.  Permanent deletion
        additionally sanitizes every victim's physical footprint and records
        the SANITIZE actions."""
        strong = interpretation.implies(ErasureInterpretation.STRONGLY_DELETED)
        permanent = interpretation is ErasureInterpretation.PERMANENTLY_DELETED
        actions = self._grounding_actions(interpretation)
        detail = "+".join(actions) + (" (strong cascade)" if strong else "")
        # Reject double-erasure of any *target* up front (a retry must not
        # yield an EraseOutcome for system-actions that never ran); cascade
        # victims reached twice are skipped below, which is legitimate.
        for unit_id in unit_ids:
            if self.model.get(unit_id).is_erased:
                raise ValueError(f"data unit {unit_id!r} already erased")
        outcomes: List[EraseOutcome] = []
        for unit_id in unit_ids:
            cascade: List[str] = []
            if strong:
                cascade = sorted(self.provenance.identifying_descendants(unit_id))
            for victim_id in [unit_id] + cascade:
                victim = self.model.get(victim_id)
                if victim.is_erased:
                    continue
                self.backend.delete(victim_id)
                now = self.clock.now
                victim.mark_erased(now)
                self.log.record(
                    victim_id,
                    Purpose.COMPLIANCE_ERASE,
                    entity,
                    ActionType.ERASE,
                    now,
                    detail=detail,
                )
                if permanent:
                    # The extra Table-1 step: advanced sanitization of the
                    # victim's footprint, demonstrable via SANITIZE records.
                    self.backend.sanitize(victim_id)
                    self.log.record(
                        victim_id,
                        Purpose.COMPLIANCE_ERASE,
                        entity,
                        ActionType.SANITIZE,
                        self.clock.now,
                        detail=detail,
                    )
            outcomes.append(
                EraseOutcome(
                    unit_id,
                    interpretation,
                    actions,
                    cascaded_units=tuple(cascade),
                    timestamp=self.clock.now,
                )
            )
        if strong:
            self.backend.reclaim_full()
        else:
            self.backend.reclaim()
        return outcomes

    def _erase_reversible(self, unit: DataUnit, entity: Entity) -> EraseOutcome:
        actions = self._grounding_actions(
            ErasureInterpretation.REVERSIBLY_INACCESSIBLE
        )
        self.backend.make_inaccessible(unit.unit_id)
        now = self.clock.now
        self.log.record(
            unit.unit_id,
            Purpose.COMPLIANCE_ERASE,
            entity,
            ActionType.ERASE,
            now,
            detail=f"reversible-flag ({' + '.join(actions)})",
        )
        return EraseOutcome(
            unit.unit_id,
            ErasureInterpretation.REVERSIBLY_INACCESSIBLE,
            actions,
            timestamp=now,
        )

    def _record_compaction(self, event: Any) -> None:
        """Audit hook for LSM compaction events (the erasure-aware GC).

        Each key whose tombstone the merge garbage-collected gets a COMPACT
        action in its history: the grounded record that the physical half of
        its "delete" completed at this instant.  Keys unknown to the model
        (engine-level traffic below the facade) are skipped — the audit
        timeline only speaks about modelled data units.
        """
        for key in event.dropped_keys:
            if not isinstance(key, str) or key not in self.model:
                continue
            self.log.record(
                key,
                Purpose.COMPLIANCE_ERASE,
                self.controller,
                ActionType.COMPACT,
                self.clock.now,
                detail=(
                    f"{event.policy} compaction: tombstone GC at "
                    f"L{event.target_level} ({event.reason})"
                ),
            )

    def attach_replicated_store(self, store: Any) -> None:
        """Subscribe to a :class:`~repro.distributed.store.ReplicatedStore`'s
        grounded key moves so each one lands in the audit timeline.

        A rebalance copies values between shards; the copy is compliant
        only because it is tracked (``CopyLocation.MIGRATION``) and the
        source is ground-erased — this hook makes that demonstrable: every
        completed move is a MOVE action in the unit's history, exactly like
        COMPACT records the physical completion of an LSM delete.  Read
        repairs land the same way: a quorum read that observed divergence
        triggers an asynchronous replica re-sync, and each completed repair
        is a REPAIR action — the audit trail shows the copy, and shows it
        could never resurrect an erased value.
        """
        store.add_move_listener(self._record_move)
        store.add_repair_listener(self._record_repair)

    def _record_move(self, event: Any) -> None:
        """Audit hook for grounded shard migrations (see
        :meth:`attach_replicated_store`).  Keys unknown to the model are
        skipped — the audit timeline only speaks about modelled units."""
        if not isinstance(event.key, str) or event.key not in self.model:
            return
        self.log.record(
            event.key,
            REBALANCE_PURPOSE,
            self.controller,
            ActionType.MOVE,
            self.clock.now,
            detail=(
                f"shard-{event.source}→shard-{event.dest} "
                f"(source grounded erase verified at store t={event.at})"
            ),
        )

    def _record_repair(self, event: Any) -> None:
        """Audit hook for completed read repairs (see
        :meth:`attach_replicated_store`).  Keys unknown to the model are
        skipped — the audit timeline only speaks about modelled units."""
        if not isinstance(event.key, str) or event.key not in self.model:
            return
        self.log.record(
            event.key,
            REPAIR_PURPOSE,
            self.controller,
            ActionType.REPAIR,
            self.clock.now,
            detail=(
                f"read repair on shard-{event.shard}: "
                f"{event.replicas_repaired} replica(s) re-synced, "
                f"{event.entries_applied} log entry(ies) applied "
                f"(store t={event.at})"
            ),
        )

    def restore(self, unit_id: str, entity: Optional[Entity] = None) -> None:
        """Undo reversible inaccessibility (the transformation is invertible)."""
        entity = entity or self.controller
        if not self.backend.is_inaccessible(unit_id):
            raise ValueError(f"unit {unit_id!r} is not flagged inaccessible")
        self.backend.restore(unit_id)
        self.log.record(
            unit_id,
            Purpose.COMPLIANCE_ERASE,
            entity,
            ActionType.RESTORE,
            self.clock.now,
            detail="flag cleared",
        )

    # -------------------------------------------------------- subject access
    def subject_access_request(self, subject: Entity) -> SubjectAccessResult:
        """GDPR Art. 15: everything held about ``subject``, with policies
        and processing-history counts.  The reads are lawful by regulation
        (no stored policy needed) and are themselves recorded in the action
        history — an auditor can see that the right was honoured.

        Reversibly-inaccessible units are disclosed as existing but their
        values are withheld: §3.1 hides such values from data subjects, and
        an Art. 15 response to the subject must not become a side channel
        around that grounding.
        """
        units: List[SubjectAccessUnit] = []
        for unit in self.model.units_of_subject(subject):
            value = None
            inaccessible = False
            if not unit.is_erased:
                try:
                    inaccessible = self.backend.is_inaccessible(unit.unit_id)
                    if not inaccessible:
                        value = self.backend.read(unit.unit_id)
                except Exception:  # engine-level hole
                    value = None
            self.log.record(
                unit.unit_id,
                SUBJECT_ACCESS_PURPOSE,
                subject,
                ActionType.READ,
                self.clock.now,
            )
            units.append(
                SubjectAccessUnit(
                    unit_id=unit.unit_id,
                    value=value,
                    erased=unit.is_erased,
                    origins=tuple(sorted(unit.origins)),
                    policies=tuple(
                        (p.purpose, p.entity.name, p.t_begin, p.t_final)
                        for p in unit.policies
                    ),
                    action_count=len(self.history.of(unit.unit_id)),
                    inaccessible=inaccessible,
                )
            )
        return SubjectAccessResult(
            subject=subject, requested_at=self.clock.now, units=tuple(units)
        )

    # ------------------------------------------------------------ compliance
    def check_compliance(
        self, invariants: Optional[Sequence[Any]] = None, now: Optional[int] = None
    ) -> ComplianceReport:
        if invariants is None:
            invariants = [
                G6PolicyConsistency(self._regulation_requires),
                G17ErasureDeadline(),
            ]
        checker = ComplianceChecker(invariants)
        return checker.check(
            self.model, self.log.history, now if now is not None else self.clock.now
        )

    def timeline(self, unit_id: str) -> ErasureTimeline:
        """The unit's Figure-3 erasure timeline, from the action history.

        Detail strings are backend-specific ("DELETE+VACUUM" on psql,
        "tombstone+full compaction" on lsm, "logical delete+key shred" on
        crypto-shred); milestones are detected by the physical-delete
        markers any backend records.
        """
        entries = self.log.history.of(unit_id)
        collected = next(
            (e.timestamp for e in entries if e.action.type == ActionType.CREATE),
            0,
        )
        inaccessible: Optional[int] = None
        deleted: Optional[int] = None
        strong: Optional[int] = None
        permanent: Optional[int] = None
        for e in entries:
            if e.action.type == ActionType.ERASE:
                detail = e.action.detail or ""
                physical = any(
                    marker in detail
                    for marker in ("DELETE", "tombstone", "key shred")
                )
                if inaccessible is None:
                    inaccessible = e.timestamp
                if physical and deleted is None:
                    deleted = e.timestamp
                if (
                    ("VACUUM FULL" in detail or "strong cascade" in detail)
                    and strong is None
                ):
                    strong = e.timestamp
            if e.action.type == ActionType.SANITIZE and permanent is None:
                permanent = e.timestamp
        return ErasureTimeline(
            collected_at=collected,
            inaccessible_at=inaccessible,
            deleted_at=deleted,
            strongly_deleted_at=strong,
            permanently_deleted_at=permanent,
        )

    # ------------------------------------------------------------- forensics
    def physically_present(self, unit_id: str) -> bool:
        """Whether any physical copy (live or dead) of the unit remains."""
        return self.backend.physically_present(unit_id)

    @property
    def history(self):
        return self.log.history
