"""CompliantDatabase — the grounded, end-to-end public API.

This facade is what the paper envisions a service provider building with
Data-CASE (§4.1): every stored value is a modelled
:class:`~repro.core.dataunit.DataUnit`; every access is policy-checked and
recorded in the formal action history; erasure dispatches to the
system-actions of the *selected grounding* (Figure 2's step 3); and
compliance is demonstrable — :meth:`check_compliance` evaluates the formal
invariants over the actual history.

The engine is the PSQL simulator, so the Table-1 semantics hold literally:
"reversibly inaccessible" flips the retrofit flag column, "delete" runs
DELETE+VACUUM, "strong delete" runs DELETE+VACUUM FULL and cascades over the
provenance graph, and "permanently delete" raises — PSQL has no system-action
for drive sanitization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.access.errors import AccessDenied
from repro.core.actions import ActionType
from repro.core.compliance import ComplianceChecker, ComplianceReport
from repro.core.consistency import regulation_requires_any_of
from repro.core.dataunit import Database, DataCategory, DataUnit, derive
from repro.core.entities import Entity, EntityRegistry, Role
from repro.core.erasure import (
    ErasureInterpretation,
    ErasureTimeline,
    register_erasure,
)
from repro.core.grounding import GroundingRegistry
from repro.core.invariants import G6PolicyConsistency, G17ErasureDeadline
from repro.core.policy import Policy, PolicySet, Purpose
from repro.core.provenance import Dependency, DependencyKind, ProvenanceGraph
from repro.audit.log import ActionLog
from repro.sim.clock import SimClock
from repro.sim.costs import CostBook, CostModel
from repro.storage.engine import RelationalEngine

DATA_TABLE = "data_units"

#: Purpose recorded for GDPR Art. 15 subject-access reads — lawful by
#: regulation, no stored policy required.
SUBJECT_ACCESS_PURPOSE = "subject-access"


@dataclass(frozen=True)
class SubjectAccessResult:
    """The Art. 15 response package for one data subject."""

    subject: Entity
    requested_at: int
    units: Tuple["SubjectAccessUnit", ...]

    def render(self) -> str:
        lines = [
            f"Subject access request for {self.subject.name} "
            f"@ t={self.requested_at}: {len(self.units)} data unit(s)"
        ]
        for unit in self.units:
            lines.append(
                f"  {unit.unit_id}: value={unit.value!r} "
                f"(erased={unit.erased}, origin={','.join(sorted(unit.origins))})"
            )
            for purpose, entity, t_begin, t_final in unit.policies:
                lines.append(
                    f"    policy ⟨{purpose}, {entity}, {t_begin}, {t_final}⟩"
                )
            lines.append(f"    {unit.action_count} recorded action(s)")
        return "\n".join(lines)


@dataclass(frozen=True)
class SubjectAccessUnit:
    """One unit's disclosure within a subject-access response."""

    unit_id: str
    value: Any
    erased: bool
    origins: Tuple[str, ...]
    policies: Tuple[Tuple[str, str, int, int], ...]
    action_count: int


class UnsupportedGroundingError(RuntimeError):
    """The selected interpretation has no implementable system-action on
    this engine — the system must be retrofitted (paper §1)."""


@dataclass(frozen=True)
class EraseOutcome:
    """What an erase call actually did."""

    unit_id: str
    interpretation: ErasureInterpretation
    system_actions: Tuple[str, ...]
    cascaded_units: Tuple[str, ...] = ()
    timestamp: int = 0


class CompliantDatabase:
    """A policy-enforcing, history-keeping data store over the PSQL engine."""

    def __init__(
        self,
        controller: Entity,
        default_erasure: ErasureInterpretation = ErasureInterpretation.DELETED,
        row_bytes: int = 70,
        cost_book: Optional[CostBook] = None,
    ) -> None:
        if not controller.is_controller:
            raise ValueError("the owning entity must hold the controller role")
        self.controller = controller
        self.clock = SimClock()
        self.cost = CostModel(self.clock, cost_book or CostBook())
        self.engine = RelationalEngine(self.cost)
        self.engine.create_table(DATA_TABLE, row_bytes, flag_column=True)
        self.model = Database()
        self.provenance = ProvenanceGraph()
        self.log = ActionLog(self.cost)
        self.entities = EntityRegistry([controller])
        self.groundings = GroundingRegistry()
        self._interpretations = register_erasure(self.groundings)
        self._select_erasure(default_erasure)
        # Lawful without an explicit stored policy: the collection contract
        # itself (GDPR Art. 6(1)(b) — processing necessary for a contract),
        # compliance-mandated erasure (Art. 17), and subject access (Art. 15).
        self._regulation_requires = regulation_requires_any_of(
            Purpose.COMPLIANCE_ERASE, Purpose.CONTRACT, SUBJECT_ACCESS_PURPOSE
        )

    # -------------------------------------------------------------- grounding
    def _select_erasure(self, interpretation: ErasureInterpretation) -> None:
        if interpretation is ErasureInterpretation.PERMANENTLY_DELETED:
            raise UnsupportedGroundingError(
                "PSQL has no system-action for drive sanitization "
                "(Table 1: 'Not supported'); retrofit the engine or choose "
                "a weaker interpretation"
            )
        grounding = self.groundings.grounding(
            "erasure", interpretation.label, "psql"
        )
        self.groundings.select(grounding, "psql")
        self.default_erasure = interpretation

    @property
    def selected_erasure(self) -> ErasureInterpretation:
        return self.default_erasure

    # -------------------------------------------------------------- entities
    def register_entity(self, entity: Entity) -> Entity:
        return self.entities.register(entity)

    # ------------------------------------------------------------ collection
    def collect(
        self,
        unit_id: str,
        subject: Entity,
        origin: str,
        value: Any,
        policies: Iterable[Policy],
        erase_deadline: Optional[int] = None,
    ) -> DataUnit:
        """Collect a base data unit with consent.

        Records the CONTRACT (disclosure/consent, Figure 1 category I)
        before the CREATE; attaches the given policies plus a
        compliance-erase policy if ``erase_deadline`` is set (G17).
        """
        self.entities.register(subject)
        policy_set = PolicySet(policies)
        if erase_deadline is not None:
            policy_set.add(
                Policy(
                    Purpose.COMPLIANCE_ERASE,
                    self.controller,
                    self.clock.now,
                    erase_deadline,
                )
            )
        unit = DataUnit(unit_id, subject, origin, policies=policy_set)
        self.log.record(
            unit_id, Purpose.CONTRACT, subject, ActionType.CONTRACT, self.clock.now
        )
        self.engine.insert(DATA_TABLE, unit_id, value)
        now = self.clock.now
        unit.write(value, now)
        self.model.add(unit)
        self.provenance.add_unit(unit_id)
        self.log.record(
            unit_id, Purpose.CONTRACT, self.controller, ActionType.CREATE, now
        )
        return unit

    # ----------------------------------------------------------------- access
    def read(self, unit_id: str, entity: Entity, purpose: str) -> Any:
        """Policy-checked read; raises :class:`AccessDenied` when no policy
        authorizes (entity, purpose) now — G6 enforcement at the gate."""
        unit = self.model.get(unit_id)
        now = self.clock.now
        if unit.policies.authorizing(purpose, entity, now) is None:
            raise AccessDenied(entity.name, purpose, unit_id)
        if self.engine.is_flagged(DATA_TABLE, unit_id) and entity.is_data_subject:
            # Reversibly inaccessible: hidden from data subjects, visible to
            # controller/processor (§3.1).
            raise AccessDenied(entity.name, purpose, unit_id)
        value = self.engine.read(DATA_TABLE, unit_id)
        self.log.record(unit_id, purpose, entity, ActionType.READ, self.clock.now)
        return value

    def update(
        self, unit_id: str, entity: Entity, purpose: str, value: Any
    ) -> None:
        unit = self.model.get(unit_id)
        now = self.clock.now
        if unit.policies.authorizing(purpose, entity, now) is None:
            raise AccessDenied(entity.name, purpose, unit_id)
        self.engine.update(DATA_TABLE, unit_id, value)
        now = self.clock.now
        unit.write(value, now)
        self.log.record(unit_id, purpose, entity, ActionType.UPDATE, now)

    def derive_unit(
        self,
        new_id: str,
        base_ids: Sequence[str],
        value: Any,
        entity: Entity,
        purpose: str,
        kind: DependencyKind = DependencyKind.AGGREGATE,
        invertible: bool = False,
        identifying: bool = True,
    ) -> DataUnit:
        """Produce derived data (§2.1) and record its provenance."""
        bases = [self.model.get(b) for b in base_ids]
        now = self.clock.now
        for base in bases:
            if base.policies.authorizing(purpose, entity, now) is None:
                raise AccessDenied(entity.name, purpose, base.unit_id)
        unit = derive(new_id, bases, value, now)
        self.engine.insert(DATA_TABLE, new_id, value)
        self.model.add(unit)
        self.provenance.add_unit(new_id)
        for base in bases:
            self.provenance.record(
                Dependency(base.unit_id, new_id, kind, invertible, identifying)
            )
            self.log.record(
                base.unit_id, purpose, entity, ActionType.DERIVE, self.clock.now
            )
        self.log.record(new_id, purpose, entity, ActionType.CREATE, self.clock.now)
        return unit

    # ----------------------------------------------------------------- erase
    def erase(
        self,
        unit_id: str,
        entity: Optional[Entity] = None,
        interpretation: Optional[ErasureInterpretation] = None,
    ) -> EraseOutcome:
        """Erase under the selected (or an explicit) interpretation."""
        interpretation = interpretation or self.default_erasure
        entity = entity or self.controller
        unit = self.model.get(unit_id)
        if interpretation is ErasureInterpretation.REVERSIBLY_INACCESSIBLE:
            return self._erase_reversible(unit, entity)
        if interpretation is ErasureInterpretation.DELETED:
            return self._erase_delete(unit, entity)
        if interpretation is ErasureInterpretation.STRONGLY_DELETED:
            return self._erase_strong(unit, entity)
        raise UnsupportedGroundingError(
            "permanent deletion is not supported on PSQL (Table 1)"
        )

    def _erase_reversible(self, unit: DataUnit, entity: Entity) -> EraseOutcome:
        self.engine.set_flag(DATA_TABLE, unit.unit_id, True)
        now = self.clock.now
        self.log.record(
            unit.unit_id,
            Purpose.COMPLIANCE_ERASE,
            entity,
            ActionType.ERASE,
            now,
            detail="reversible-flag (Add new attribute)",
        )
        return EraseOutcome(
            unit.unit_id,
            ErasureInterpretation.REVERSIBLY_INACCESSIBLE,
            ("Add new attribute",),
            timestamp=now,
        )

    def _erase_delete(self, unit: DataUnit, entity: Entity) -> EraseOutcome:
        self.engine.delete(DATA_TABLE, unit.unit_id)
        self.engine.vacuum(DATA_TABLE)
        now = self.clock.now
        unit.mark_erased(now)
        self.log.record(
            unit.unit_id,
            Purpose.COMPLIANCE_ERASE,
            entity,
            ActionType.ERASE,
            now,
            detail="DELETE+VACUUM",
        )
        return EraseOutcome(
            unit.unit_id,
            ErasureInterpretation.DELETED,
            ("DELETE", "VACUUM"),
            timestamp=now,
        )

    def _erase_strong(self, unit: DataUnit, entity: Entity) -> EraseOutcome:
        """Delete the unit and every identifying dependent (§3.1)."""
        cascade = sorted(self.provenance.identifying_descendants(unit.unit_id))
        for victim_id in [unit.unit_id] + cascade:
            victim = self.model.get(victim_id)
            if victim.is_erased:
                continue
            self.engine.delete(DATA_TABLE, victim_id)
            now = self.clock.now
            victim.mark_erased(now)
            self.log.record(
                victim_id,
                Purpose.COMPLIANCE_ERASE,
                entity,
                ActionType.ERASE,
                now,
                detail="DELETE+VACUUM FULL (strong cascade)",
            )
        self.engine.vacuum_full(DATA_TABLE)
        return EraseOutcome(
            unit.unit_id,
            ErasureInterpretation.STRONGLY_DELETED,
            ("DELETE", "VACUUM FULL"),
            cascaded_units=tuple(cascade),
            timestamp=self.clock.now,
        )

    def restore(self, unit_id: str, entity: Optional[Entity] = None) -> None:
        """Undo reversible inaccessibility (the transformation is invertible)."""
        entity = entity or self.controller
        if not self.engine.is_flagged(DATA_TABLE, unit_id):
            raise ValueError(f"unit {unit_id!r} is not flagged inaccessible")
        self.engine.set_flag(DATA_TABLE, unit_id, False)
        self.log.record(
            unit_id,
            Purpose.COMPLIANCE_ERASE,
            entity,
            ActionType.RESTORE,
            self.clock.now,
            detail="flag cleared",
        )

    # -------------------------------------------------------- subject access
    def subject_access_request(self, subject: Entity) -> SubjectAccessResult:
        """GDPR Art. 15: everything held about ``subject``, with policies
        and processing-history counts.  The reads are lawful by regulation
        (no stored policy needed) and are themselves recorded in the action
        history — an auditor can see that the right was honoured."""
        units: List[SubjectAccessUnit] = []
        for unit in self.model.units_of_subject(subject):
            value = None
            if not unit.is_erased:
                try:
                    value = self.engine.read(DATA_TABLE, unit.unit_id)
                except Exception:  # engine-level hole (e.g. flagged)
                    value = None
            self.log.record(
                unit.unit_id,
                SUBJECT_ACCESS_PURPOSE,
                subject,
                ActionType.READ,
                self.clock.now,
            )
            units.append(
                SubjectAccessUnit(
                    unit_id=unit.unit_id,
                    value=value,
                    erased=unit.is_erased,
                    origins=tuple(sorted(unit.origins)),
                    policies=tuple(
                        (p.purpose, p.entity.name, p.t_begin, p.t_final)
                        for p in unit.policies
                    ),
                    action_count=len(self.history.of(unit.unit_id)),
                )
            )
        return SubjectAccessResult(
            subject=subject, requested_at=self.clock.now, units=tuple(units)
        )

    # ------------------------------------------------------------ compliance
    def check_compliance(
        self, invariants: Optional[Sequence[Any]] = None, now: Optional[int] = None
    ) -> ComplianceReport:
        if invariants is None:
            invariants = [
                G6PolicyConsistency(self._regulation_requires),
                G17ErasureDeadline(),
            ]
        checker = ComplianceChecker(invariants)
        return checker.check(
            self.model, self.log.history, now if now is not None else self.clock.now
        )

    def timeline(self, unit_id: str) -> ErasureTimeline:
        """The unit's Figure-3 erasure timeline, from the action history."""
        entries = self.log.history.of(unit_id)
        collected = next(
            (e.timestamp for e in entries if e.action.type == ActionType.CREATE),
            0,
        )
        inaccessible: Optional[int] = None
        deleted: Optional[int] = None
        strong: Optional[int] = None
        permanent: Optional[int] = None
        for e in entries:
            if e.action.type == ActionType.ERASE:
                detail = e.action.detail or ""
                if inaccessible is None:
                    inaccessible = e.timestamp
                if "DELETE" in detail and deleted is None:
                    deleted = e.timestamp
                if "VACUUM FULL" in detail and strong is None:
                    strong = e.timestamp
            if e.action.type == ActionType.SANITIZE and permanent is None:
                permanent = e.timestamp
        return ErasureTimeline(
            collected_at=collected,
            inaccessible_at=inaccessible,
            deleted_at=deleted,
            strongly_deleted_at=strong,
            permanently_deleted_at=permanent,
        )

    # ------------------------------------------------------------- forensics
    def physically_present(self, unit_id: str) -> bool:
        """Whether any tuple (live or dead) for the unit is still on disk."""
        return any(
            key == unit_id for key, _live in self.engine.forensic_scan(DATA_TABLE)
        )

    @property
    def history(self):
        return self.log.history
