"""P_SYS — the strictest interpretation of GDPR-compliance (§4.2).

    "The system implements fine-grained access control (FGAC).  Since PSQL
     does not support FGAC, it is retrofitted with a middleware that
     comprises Sieve and associated metadata which implements FGAC by
     exploiting a variety of its features such as UDFs, index usage hints,
     etc.  Data units and logs are encrypted using AES-128 and erasure is
     implemented using DELETE + VACUUM FULL as well as deleting logs of the
     data units being deleted.  … all policies are logged at the time of
     all the operations to implement demonstrable accountability."
"""

from __future__ import annotations

from repro.audit.querylog import PolicyDecisionLogger, QueryResponseLogger
from repro.core.erasure import ErasureInterpretation
from repro.core.policy import Policy, Purpose
from repro.systems.policycat import ScalablePolicyCatalog
from repro.systems.profiles import DATA_TABLE, OPERATOR, ComplianceProfile
from repro.workloads.base import OpKind

#: Active consent window and an expired, renewed one — real deployments
#: accumulate superseded policies, which the guard must still step over.
ACTIVE_WINDOW = (0, 10**15)
EXPIRED_WINDOW = (0, 1)

#: Bytes of query-log payload additionally encrypted per operation
#: ("data units AND logs are encrypted using AES-128").
LOG_ENCRYPTION_BYTES = 128


class PSys(ComplianceProfile):
    """Sieve FGAC + decision logs + AES-128 (data & logs) + the "strong
    delete" grounding (interval full reclamation) + log purging."""

    name = "P_SYS"
    erasure_interpretation = ErasureInterpretation.STRONGLY_DELETED
    maintenance = "interval-full"

    def _setup(self) -> None:
        template = [
            # One expired + one active policy per purpose: the guard holds
            # both and evaluation steps over the stale one.
            Policy(Purpose.SERVICE, OPERATOR, *EXPIRED_WINDOW),
            Policy(Purpose.SERVICE, OPERATOR, *ACTIVE_WINDOW),
            Policy(Purpose.RETENTION, OPERATOR, *EXPIRED_WINDOW),
            Policy(Purpose.RETENTION, OPERATOR, *ACTIVE_WINDOW),
            Policy(Purpose.ANALYTICS, OPERATOR, *EXPIRED_WINDOW),
            Policy(Purpose.ANALYTICS, OPERATOR, *ACTIVE_WINDOW),
            Policy(Purpose.COMPLIANCE_ERASE, OPERATOR, *ACTIVE_WINDOW),
            Policy(Purpose.AUDIT, OPERATOR, *ACTIVE_WINDOW),
        ]
        self.policies = ScalablePolicyCatalog(self.cost, "sieve", template)
        self.querylog = QueryResponseLogger(self.cost)
        self.decisions = PolicyDecisionLogger(self.cost)

    def _register_profile_space(self) -> None:
        self.space.register(
            "sieve-metadata", "metadata", lambda: self.policies.size_bytes
        )
        self.space.register(
            "query-logs", "metadata", lambda: self.querylog.size_bytes
        )
        self.space.register(
            "decision-logs", "metadata", lambda: self.decisions.size_bytes
        )

    # ------------------------------------------------------------------ hooks
    def _attach_policies(self, key: int) -> None:
        self.policies.attach_unit(key)

    def _check_access(self, key: int, op: OpKind, personal: bool) -> bool:
        allowed, self._last_evaluated = self.policies.evaluate(
            key, OPERATOR, Purpose.SERVICE, self.clock.now
        )
        self.cost.charge_fgac_udf()
        if op is OpKind.CREATE:
            return True
        return allowed

    def _log_operation(
        self, key: int, op: OpKind, response_bytes: int, personal: bool
    ) -> None:
        self.querylog.log(
            self.clock.now,
            OPERATOR.name,
            f"{op.value.upper()} {DATA_TABLE} key={key}",
            DATA_TABLE,
            key,
            response_bytes,
        )
        # "All policies are logged at the time of all the operations."
        self.decisions.log(
            self.clock.now,
            str(key),
            OPERATOR.name,
            Purpose.SERVICE,
            getattr(self, "_last_evaluated", 0),
            True,
        )
        # Logs are themselves encrypted with AES-128.
        self.cost.charge_aes128(LOG_ENCRYPTION_BYTES)

    def _log_load(self, key: int) -> None:
        """Per-record policy decision at collection; statement-level query
        log (bulk load), so no per-row query record."""
        self.decisions.log(
            self.clock.now, str(key), OPERATOR.name, Purpose.CONTRACT,
            self.policies.policies_per_unit, True,
        )
        self.cost.charge_aes128(LOG_ENCRYPTION_BYTES)

    def _encrypt_at_rest(self, nbytes: int) -> None:
        self.cost.charge_aes128(nbytes)

    def _erase(self, key: int) -> None:
        """Logical delete + periodic full reclamation + purge every trace
        from the logs — including the engine's own recovery log."""
        self.data.delete(key)
        self.meta.delete(key)
        self.policies.detach_unit(key)
        self.querylog.purge_key(DATA_TABLE, key)
        self.decisions.purge_unit(str(key))
        self.data.purge_history(key)
        # The metadata row (subject id, timestamp) is a trace too — its
        # recovery-log images must not outlive the erase either.
        self.meta.purge_history(key)
        self._maybe_reclaim()
