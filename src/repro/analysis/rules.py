"""The grounding rule set — the paper's copy-site model, statically checked.

Each rule encodes one clause of the erasure-grounding discipline the
previous PRs enforced by convention (and fixed leaks against, after the
fact).  The catalogue, with the §1 rationale per rule, is documented in
``docs/ANALYSIS.md``; the short form:

* **G01 copy-site-tracked** — code that writes a value into a secondary
  location (replication log, WAL, cache, migration batch) must live in a
  module that registers the matching :class:`CopyLocation` site, and the
  module *declaring* ``CopyLocation`` must consume every member it
  declares.  Removing a ``copies_of`` reporting line while the write path
  remains is exactly the silent-leak shape of the PR-1/PR-2 bugs.
* **G02 destructive-audited** — destructive operations must emit audit
  actions: facade-layer erase/sanitize/shred methods must (transitively)
  record an :class:`ActionType`, and every ``add_X_listener`` seam must
  have a matching ``_emit_X`` call — an event subscribers can never
  receive is an audit trail with a hole in it.
* **G03 backend-registry** — no direct ``RelationalEngine`` /
  ``LSMEngine`` construction outside the backend registry and the engine's
  own layer; ad-hoc engines bypass copy tracking and grounding selection.
* **G04 serializer-containment** — ``pickle``/``marshal`` imports only
  inside ``repro/codec.py``; a raw-serialized unit value anywhere else is
  an untracked copy (and an unscrubbable one).  Everyone else goes
  through ``codec.encode``/``decode``.
* **G05 no-swallowed-exceptions** — no bare ``except``, no
  ``except: pass`` over broad exception types, and no silenced handlers
  at all on erase/migration paths: a swallowed failure there converts
  "verified clean" into a lie.
* **G06 rebalance-seam** — the store's shared rebalance state may only be
  mutated inside the driver-step seam; any other mutation races the
  dual-routing invariant.
* **G07 codec-boundary** — storage seams (``put``/``write_*``/``read_*``/
  ``flush``/``seal``…) must serialize through the codec, never by calling
  ``pickle``/``marshal`` directly: bytes outside the codec's
  self-describing format cannot be streamed between blocks, sectors, and
  migration batches or recognized by ``decode``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, Module, Rule

# --------------------------------------------------------------------- helpers


def _call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``foo(...)`` → foo, ``a.b.foo(...)`` → foo."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _attr_base_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` → ``b`` (the attribute the method hangs off), ``a.b`` → a."""
    if isinstance(node, ast.Attribute):
        value = node.value
        if isinstance(value, ast.Attribute):
            return value.attr
        if isinstance(value, ast.Name):
            return value.id
    return None


def _attribute_refs(module: Module, owner: str) -> Set[str]:
    """Every ``owner.X`` attribute name referenced in the module."""
    refs: Set[str] = set()
    for node in module.walk():
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == owner
        ):
            refs.add(node.attr)
    return refs


# ----------------------------------------------------------------------- G01
#: Write-site pattern → the CopyLocation member whose tracking it requires.
_CACHE_ATTR = re.compile(r"cache$")
_LOG_ATTRS = frozenset({"_log", "log", "replication_log"})
_WAL_ATTRS = frozenset({"wal", "_wal"})
_IMPORT_CALLS = frozenset(
    {"import_batch", "import_items", "import_encoded_batch", "import_items_encoded"}
)
#: Probes that ask whether a WAL/recovery log still retains a value: the
#: caller provably knows about that retention site, so it must report it.
_WAL_PROBES = frozenset({"log_holds", "log_holds_value"})


class CopySiteRule(Rule):
    """G01: secondary-location writes must register a ``CopyLocation`` site.

    Two halves:

    1. **Write sites need tracking** (module-local).  A module containing
       a secondary write — a cache-entry assignment (``*.cache[k] = v``),
       a replication-log append (``_append_log`` / ``*._log.append``), a
       value-carrying WAL append (``*.wal.append(..., payload=...)``), a
       migration import (``import_batch`` / ``import_items`` and their
       encoded variants) — or a WAL-retention *probe* (``log_holds`` /
       ``log_holds_value``: a caller asking whether a WAL still retains a
       value provably knows about that site) — must reference the matching
       ``CopyLocation`` member (``CACHE`` / ``LOG`` / ``WAL`` /
       ``MIGRATION``) somewhere in the same module, i.e. the tracking
       lives next to the copy-producing code.
    2. **Declared members need consumers** (package-scope).  Every member
       the ``CopyLocation`` enum declares must be referenced outside the
       enum body *somewhere in the package* — a declared-but-never-
       reported location is a copy site ``copies_of`` is blind to.  The
       enum lives in the pure-declaration module
       ``repro/core/locations.py`` precisely so every storage layer can
       import it without cycles, so the consumers are in other modules by
       design and this half runs over the whole module list.
    """

    id = "G01"
    title = "secondary-location write without a tracked CopyLocation site"

    def check(self, module: Module) -> Iterable[Finding]:
        tracked = _attribute_refs(module, "CopyLocation")
        for node, member, what in self._write_sites(module):
            if member not in tracked:
                yield self.finding(
                    module,
                    node,
                    f"{what} but the module never registers a "
                    f"CopyLocation.{member} site — the copy is invisible "
                    "to copies_of and unreachable by a grounded erase",
                )

    def check_package(self, modules: Sequence[Module]) -> Iterable[Finding]:
        tracked: Set[str] = set()
        for module in modules:
            tracked |= _attribute_refs(module, "CopyLocation")
        for module in modules:
            yield from self._check_declared_members(module, tracked)

    # ------------------------------------------------------------ write sites
    def _write_sites(
        self, module: Module
    ) -> Iterable[Tuple[ast.AST, str, str]]:
        for node in module.walk():
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if self._is_cache_subscript(target):
                        yield node, "CACHE", (
                            "cache-entry assignment writes a value copy"
                        )
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                base = _attr_base_name(node.func)
                if name == "_append_log":
                    yield node, "LOG", "replication-log append writes a value copy"
                elif name == "append" and base in _LOG_ATTRS:
                    yield node, "LOG", "replication-log append writes a value copy"
                elif (
                    name == "append"
                    and base in _WAL_ATTRS
                    and any(kw.arg == "payload" for kw in node.keywords)
                ):
                    yield node, "WAL", "value-carrying WAL append writes a value copy"
                elif name in _IMPORT_CALLS:
                    yield node, "MIGRATION", "migration batch import writes a value copy"
                elif name in _WAL_PROBES:
                    yield node, "WAL", (
                        "WAL-retention probe sees a value copy"
                    )

    @staticmethod
    def _is_cache_subscript(target: ast.expr) -> bool:
        if not isinstance(target, ast.Subscript):
            return False
        value = target.value
        if isinstance(value, ast.Attribute):
            return bool(_CACHE_ATTR.search(value.attr))
        if isinstance(value, ast.Name):
            return bool(_CACHE_ATTR.search(value.id))
        return False

    # ------------------------------------------------------- declared members
    def _check_declared_members(
        self, module: Module, tracked: Set[str]
    ) -> Iterable[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.ClassDef) or node.name != "CopyLocation":
                continue
            declared = [
                (stmt, stmt.targets[0].id)
                for stmt in node.body
                if isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id.isupper()
            ]
            for stmt, member in declared:
                if member not in tracked:
                    yield self.finding(
                        module,
                        stmt,
                        f"CopyLocation.{member} is declared but never "
                        "reported — a copy location no forensic query "
                        "speaks about cannot be verified erased",
                    )


# ----------------------------------------------------------------------- G02
_DESTRUCTIVE_DEF = re.compile(
    r"^(erase|sanitize|shred)(_[a-z_]+)?$"
)
_LISTENER_DEF = re.compile(r"^add_([a-z_]+)_listener$")


class DestructiveAuditRule(Rule):
    """G02: destructive operations must emit an audit action.

    * In modules that import :class:`ActionType` (the facade layer),
      every ``erase*`` / ``sanitize*`` / ``shred*`` method must reference
      ``ActionType`` or call ``.record(...)`` — directly or through
      same-class helpers (transitively): a grounded erase the audit
      timeline never saw is indistinguishable from a leak.
    * In any module, a listener seam ``add_X_listener`` requires at least
      one ``_emit_X(...)`` call: an event that can be subscribed to but is
      never emitted is an audit hole (the facade records MOVE/REPAIR
      actions from exactly these emissions).
    """

    id = "G02"
    title = "destructive operation without an audit action"

    def check(self, module: Module) -> Iterable[Finding]:
        if self._imports_action_type(module):
            yield from self._check_destructive_defs(module)
        yield from self._check_listener_seams(module)

    @staticmethod
    def _imports_action_type(module: Module) -> bool:
        for node in module.walk():
            if isinstance(node, ast.ImportFrom):
                if any(alias.name == "ActionType" for alias in node.names):
                    return True
        return False

    # -------------------------------------------------------- destructive defs
    def _check_destructive_defs(self, module: Module) -> Iterable[Finding]:
        for cls in [n for n in module.walk() if isinstance(n, ast.ClassDef)]:
            methods: Dict[str, ast.FunctionDef] = {
                stmt.name: stmt
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            audited = {
                name
                for name, fn in methods.items()
                if self._records_audit(fn)
            }
            calls = {
                name: self._local_calls(fn, set(methods))
                for name, fn in methods.items()
            }
            # Transitive closure: a method audits if anything it (or its
            # same-class callees, to any depth) calls records an action.
            changed = True
            while changed:
                changed = False
                for name, callees in calls.items():
                    if name not in audited and callees & audited:
                        audited.add(name)
                        changed = True
            for name, fn in methods.items():
                if _DESTRUCTIVE_DEF.match(name) and name not in audited:
                    yield self.finding(
                        module,
                        fn,
                        f"destructive method {cls.name}.{name} never "
                        "records an ActionType audit action (directly or "
                        "via a helper) — the erase would be invisible to "
                        "the action history",
                    )

    @staticmethod
    def _records_audit(fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "ActionType"
            ):
                return True
            if isinstance(node, ast.Call) and _call_name(node) == "record":
                return True
        return False

    @staticmethod
    def _local_calls(fn: ast.FunctionDef, names: Set[str]) -> Set[str]:
        called: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in names:
                    called.add(name)
        return called

    # ---------------------------------------------------------- listener seams
    def _check_listener_seams(self, module: Module) -> Iterable[Finding]:
        emitted: Set[str] = set()
        for node in module.walk():
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name and name.startswith("_emit_"):
                    emitted.add(name[len("_emit_"):])
        for node in module.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            match = _LISTENER_DEF.match(node.name)
            if match and match.group(1) not in emitted:
                yield self.finding(
                    module,
                    node,
                    f"{node.name} registers subscribers but the module "
                    f"never calls _emit_{match.group(1)} — the audit "
                    "event can be subscribed to but never arrives",
                )


# ----------------------------------------------------------------------- G03
_ENGINE_NAMES = frozenset({"RelationalEngine", "LSMEngine"})
#: Module paths allowed to construct engines directly: the backend registry
#: and the engines' own layers.
_ENGINE_ALLOWED = ("repro/systems/backends.py", "repro/lsm/", "repro/storage/")


class BackendRegistryRule(Rule):
    """G03: engines are constructed through the backend registry only.

    A raw ``RelationalEngine()`` / ``LSMEngine()`` anywhere else bypasses
    :func:`repro.systems.backends.make_backend` — no grounding selection,
    no copy-site protocol, no Table-1 semantics — so an erase against it
    can never be verified.
    """

    id = "G03"
    title = "direct engine construction outside the backend registry"

    def check(self, module: Module) -> Iterable[Finding]:
        if module.relpath.startswith(_ENGINE_ALLOWED):
            return
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _ENGINE_NAMES:
                yield self.finding(
                    module,
                    node,
                    f"direct {name}(...) construction — go through "
                    "make_backend()/BACKENDS so grounding selection and "
                    "copy tracking apply",
                )


# ----------------------------------------------------------------------- G04
#: The raw serializer modules the codec wraps, and the one module allowed
#: to import them.  Before the codec existed the whole storage layer was
#: allowlisted; the binary-codec refactor shrank the legal surface to the
#: codec itself — everyone else calls ``codec.encode``/``decode``.
_SERIALIZER_MODULES = frozenset({"pickle", "marshal"})
_SERIALIZER_ALLOWED = ("repro/codec.py",)


class PickleContainmentRule(Rule):
    """G04: raw serializers (``pickle``/``marshal``) only inside the codec.

    Serialized unit values are physical copies; outside
    :mod:`repro.codec` nothing tracks, scrubs, or format-checks them, so a
    stray ``pickle.dumps`` is an untracked retention site by construction
    — and a stray ``marshal.dumps`` is additionally bytes the codec's
    first-byte discrimination can mis-decode.
    """

    id = "G04"
    title = "raw serializer import outside the codec"

    def check(self, module: Module) -> Iterable[Finding]:
        if module.relpath.startswith(_SERIALIZER_ALLOWED):
            return
        for node in module.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.name.split(".")[0]
                    if name in _SERIALIZER_MODULES:
                        yield self.finding(
                            module,
                            node,
                            f"{name} import outside repro/codec.py — "
                            "serialized unit values are untracked copies",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in _SERIALIZER_MODULES:
                    yield self.finding(
                        module,
                        node,
                        f"{node.module.split('.')[0]} import outside "
                        "repro/codec.py — serialized unit values are "
                        "untracked copies",
                    )


# ----------------------------------------------------------------------- G05
_ERASE_PATH_DEF = re.compile(
    r"erase|migrat|shred|sanitize|reclaim|decommission|scrub|vacuum"
    r"|export_|import_"
)
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


class SwallowedExceptionRule(Rule):
    """G05: no swallowed exceptions, least of all on erase/migration paths.

    Three shapes fire:

    * a bare ``except:`` anywhere — it eats ``KeyboardInterrupt`` and
      every programming error;
    * ``except Exception: pass`` (or broader) anywhere — a silent sink;
    * any ``except ...: pass`` inside a function on an erase or migration
      path (name matching erase/migrate/shred/sanitize/reclaim/
      decommission/scrub/vacuum/export/import) — a failure swallowed there
      turns "verified clean" into an unverified claim.
    """

    id = "G05"
    title = "swallowed exception"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except: swallows every failure, "
                    "KeyboardInterrupt included",
                )
                continue
            if not self._is_pass_body(node):
                continue
            caught = self._caught_names(node.type)
            if caught & _BROAD_EXCEPTIONS:
                yield self.finding(
                    module,
                    node,
                    f"except {'/'.join(sorted(caught))}: pass silently "
                    "swallows arbitrary failures",
                )
                continue
            fn = module.enclosing_function(node)
            if fn is not None and _ERASE_PATH_DEF.search(fn.name):
                yield self.finding(
                    module,
                    node,
                    f"silenced {'/'.join(sorted(caught))} on the "
                    f"erase/migration path {fn.name}() — a swallowed "
                    "failure here fakes a clean verification",
                )

    @staticmethod
    def _is_pass_body(node: ast.ExceptHandler) -> bool:
        return len(node.body) == 1 and isinstance(node.body[0], ast.Pass)

    @staticmethod
    def _caught_names(node: ast.expr) -> Set[str]:
        if isinstance(node, ast.Name):
            return {node.id}
        if isinstance(node, ast.Attribute):
            return {node.attr}
        if isinstance(node, ast.Tuple):
            names: Set[str] = set()
            for elt in node.elts:
                names |= SwallowedExceptionRule._caught_names(elt)
            return names
        return set()


# ----------------------------------------------------------------------- G06
#: The store attributes every live request path reads concurrently with a
#: background rebalance.
_SHARED_STATE = frozenset(
    {"_rebalance", "_ring", "_shards", "_pending_repairs"}
)
#: The driver-step seam: the only methods allowed to mutate that state.
_SEAM_METHODS = frozenset(
    {
        "__init__",
        "_begin",
        "_finalize",
        "_spawn_shard",
        "_queue_repair",
        "flush_repairs",
    }
)


class RebalanceSeamRule(Rule):
    """G06: shared rebalance state mutates only inside the driver-step seam.

    ``ReplicatedStore._rebalance`` / ``_ring`` / ``_shards`` /
    ``_pending_repairs`` are read by every live request while a background
    :class:`RebalanceDriver` advances the migration; the dual-routing
    invariant only holds because mutation is confined to the step seam
    (``__init__`` / ``_begin`` / ``_finalize`` / ``_spawn_shard`` /
    ``_queue_repair`` / ``flush_repairs``).  A mutation anywhere else is a
    race with in-flight reads, writes, and grounded erases.
    """

    id = "G06"
    title = "shared rebalance state mutated outside the driver-step seam"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in module.walk():
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            else:
                continue
            for target in targets:
                attr = self._shared_target(target)
                if attr is None:
                    continue
                fn = module.enclosing_function(node)
                fn_name = fn.name if fn is not None else "<module>"
                if fn_name not in _SEAM_METHODS:
                    yield self.finding(
                        module,
                        node,
                        f"{attr} mutated in {fn_name}(), outside the "
                        "driver-step seam — this races live dual-routed "
                        "reads/writes/erases",
                    )

    @staticmethod
    def _shared_target(target: ast.expr) -> Optional[str]:
        """The watched attribute a target mutates, if any.

        Covers ``x._ring = ...``, ``x._shards[i] = ...``,
        ``del x._shards[i]``, and tuple-unpacking targets.
        """
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                attr = RebalanceSeamRule._shared_target(elt)
                if attr is not None:
                    return attr
            return None
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and target.attr in _SHARED_STATE:
            return target.attr
        return None


# ----------------------------------------------------------------------- G07
#: Storage read/write seam names: functions whose job is moving values
#: across the at-rest boundary.  Raw serializer calls inside one of these
#: bypass the codec's self-describing format.
_STORAGE_SEAM_DEF = re.compile(
    r"^(put|insert|update|write|read|get|flush|seal|open_?|load"
    r"|pack|unpack|encode|decode)(_[a-z_]+)?$"
)
_SERIALIZER_CALLS = frozenset({"dumps", "loads", "dump", "load"})


class CodecBoundaryRule(Rule):
    """G07: storage seams serialize through :mod:`repro.codec` only.

    G04 contains the *imports*; this rule contains the *call sites*: a
    ``pickle.dumps``/``marshal.loads`` (or kin) inside a storage seam —
    a function named like ``put``/``write_*``/``read_*``/``flush``/
    ``seal`` — produces bytes outside the codec's self-describing format.
    Those bytes cannot be handed between backends, streamed through a
    packed block, or recognized by ``decode``'s first-byte discrimination,
    so every SSTable/memtable/sector write must go through
    ``codec.encode``/``encode_many``/``pack_block`` instead.
    """

    id = "G07"
    title = "raw serializer call on a storage seam (bypasses the codec)"

    def check(self, module: Module) -> Iterable[Finding]:
        if module.relpath.startswith(_SERIALIZER_ALLOWED):
            return
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _SERIALIZER_CALLS
                and isinstance(func.value, ast.Name)
                and func.value.id in _SERIALIZER_MODULES
            ):
                continue
            fn = module.enclosing_function(node)
            if fn is None or not _STORAGE_SEAM_DEF.match(fn.name):
                continue
            yield self.finding(
                module,
                node,
                f"{func.value.id}.{func.attr} on the storage seam "
                f"{fn.name}() — bytes outside the codec's self-describing "
                "format; serialize with codec.encode/encode_many/"
                "pack_block so blocks, sectors, and migration batches "
                "stay interchangeable",
            )


# ------------------------------------------------------------------- registry
def default_rules() -> List[Rule]:
    """The registered rule set, in catalogue order."""
    return [
        CopySiteRule(),
        DestructiveAuditRule(),
        BackendRegistryRule(),
        PickleContainmentRule(),
        SwallowedExceptionRule(),
        RebalanceSeamRule(),
        CodecBoundaryRule(),
    ]


def rule_catalogue() -> List[Tuple[str, str, str]]:
    """``(id, title, severity)`` rows — the docs/CLI listing."""
    return [(r.id, r.title, r.severity) for r in default_rules()]
