"""Rule engine for the grounding linter — AST walks, findings, baseline.

The paper's §1 claim is that erasure grounding is a *system-wide* property:
every location that can physically hold a copy of a unit's value (WAL,
replication log, SSTable, cache, migration batch) must be tracked, and
every destructive action must leave an audit record.  PRs 1–4 each fixed a
silent erasure leak that only a test tripping over residue revealed; this
module turns the discipline those fixes established into *checkable
objects* at the source level.  Each :class:`Rule` walks a module's ``ast``
tree and yields :class:`Finding`\\ s (``file:line``, rule id, message,
severity); :func:`run_rules` applies the registered rule set over a whole
package.

**Baseline ratchet.**  Pre-existing debt is not asserted away: a committed
baseline file (``src/repro/analysis/baseline.json``) lists the findings the
codebase is allowed to keep, each with a tracking note explaining the
design change that would retire it.  :func:`classify` splits a fresh run
into *new* findings (CI-blocking), *matched* findings (baselined), and
*stale* baseline entries (debt that was paid off — the entry must be
deleted, which is what makes the baseline a ratchet rather than a
suppression list).  Baseline keys are ``rule:file:symbol`` — line-number
free, so unrelated edits cannot invalidate them.

The rule set itself lives in :mod:`repro.analysis.rules`; the runtime
(declarative) half of the invariant story is
:mod:`repro.analysis.invariants`.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Severity vocabulary, mirrored after the compatibility auditor's levels.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``symbol`` is the enclosing ``Class.method`` (or ``<module>``) — the
    stable half of the baseline key, so a baseline entry survives line
    drift but dies with the code it describes.
    """

    rule: str
    file: str
    line: int
    symbol: str
    message: str
    severity: str = ERROR

    @property
    def key(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}:{self.file}:{self.symbol}"

    def __str__(self) -> str:
        return (
            f"{self.file}:{self.line}: {self.rule} [{self.severity}] "
            f"{self.message} ({self.symbol})"
        )


@dataclass
class Module:
    """One parsed source module, with the lookups rules keep needing."""

    path: Path
    relpath: str  # posix path relative to the scan root's parent
    tree: ast.AST
    source: str
    _parents: Dict[ast.AST, ast.AST] = field(default_factory=dict, repr=False)

    @classmethod
    def parse(cls, path: Path, relpath: str) -> "Module":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        module = cls(path=path, relpath=relpath, tree=tree, source=source)
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                module._parents[child] = parent
        return module

    # ------------------------------------------------------------ navigation
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def enclosing_scopes(self, node: ast.AST) -> List[ast.AST]:
        """Enclosing def/class nodes, innermost first."""
        scopes: List[ast.AST] = []
        cursor = self.parent(node)
        while cursor is not None:
            if isinstance(
                cursor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                scopes.append(cursor)
            cursor = self.parent(cursor)
        return scopes

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef]:
        for scope in self.enclosing_scopes(node):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return scope
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for scope in self.enclosing_scopes(node):
            if isinstance(scope, ast.ClassDef):
                return scope
        return None

    def symbol_for(self, node: ast.AST) -> str:
        """``Class.method`` / ``Class`` / ``function`` / ``<module>``."""
        names = [
            scope.name
            for scope in reversed(self.enclosing_scopes(node))
        ]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.append(node.name)
        return ".".join(names) if names else "<module>"

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)


class Rule:
    """One statically checkable grounding invariant.

    Subclasses set ``id``/``title``/``severity`` and implement
    :meth:`check`, yielding findings for one module at a time.  Rules see
    one module per call by design: the write-site half of the grounding
    discipline requires the tracking to live *next to* the copy-producing
    code, which keeps the pass fast and the failure locations exact.  The
    rare invariant that is deliberately *cross*-module — "every declared
    ``CopyLocation`` member is reported somewhere in the package" — goes
    in :meth:`check_package`, which runs once over the full module list
    after the per-module pass.
    """

    id: str = "G00"
    title: str = "abstract rule"
    severity: str = ERROR

    def check(self, module: Module) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def check_package(self, modules: Sequence[Module]) -> Iterable[Finding]:
        """Package-scope pass (default: no findings)."""
        return ()

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            file=module.relpath,
            line=getattr(node, "lineno", 0),
            symbol=module.symbol_for(node),
            message=message,
            severity=self.severity,
        )


# --------------------------------------------------------------------- runner
def iter_modules(root: Path) -> Iterator[Module]:
    """Parse every ``*.py`` under ``root`` (or ``root`` itself, if a file).

    ``relpath`` is computed against the root's parent so a default scan of
    ``src/repro`` yields the ``repro/...`` paths the baseline is keyed by.
    """
    root = root.resolve()
    paths = [root] if root.is_file() else sorted(root.rglob("*.py"))
    for path in paths:
        try:
            rel = path.relative_to(root.parent if root.is_file() else root.parent)
            relpath = rel.as_posix()
        except ValueError:  # scanning outside any package root
            relpath = path.name
        yield Module.parse(path, relpath)


def run_rules(
    root: Path, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Apply ``rules`` (default: the registered set) over the tree at
    ``root``; findings come back sorted by location for stable output."""
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    findings: List[Finding] = []
    modules = list(iter_modules(root))
    for module in modules:
        for rule in rules:
            findings.extend(rule.check(module))
    for rule in rules:
        findings.extend(rule.check_package(modules))
    return sorted(findings, key=lambda f: (f.file, f.line, f.rule))


def package_root() -> Path:
    """The installed ``repro`` package directory — the default scan root."""
    import repro

    return Path(repro.__file__).resolve().parent


# ------------------------------------------------------------------- baseline
BASELINE_FILE = "baseline.json"


def baseline_path() -> Path:
    """The committed baseline beside this module."""
    return Path(__file__).resolve().parent / BASELINE_FILE


@dataclass(frozen=True)
class BaselineEntry:
    """One tolerated finding, with the note that tracks why it stays."""

    rule: str
    file: str
    symbol: str
    note: str

    @property
    def key(self) -> str:
        return f"{self.rule}:{self.file}:{self.symbol}"


#: Rules whose baseline debt has been fully paid off.  The ratchet may
#: never regrow silently: a baseline entry for a retired rule is a load
#: error, not tolerated debt.  G01 (untyped copy-location sites) retired
#: with the engine-level WAL CopyLocation unification — every engine now
#: reports its log/cache sites typed.
RETIRED_RULES = frozenset({"G01"})


def load_baseline(path: Optional[Path] = None) -> List[BaselineEntry]:
    path = path or baseline_path()
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    entries = [
        BaselineEntry(
            rule=entry["rule"],
            file=entry["file"],
            symbol=entry["symbol"],
            note=entry.get("note", ""),
        )
        for entry in payload.get("entries", [])
    ]
    regrown = [e.key for e in entries if e.rule in RETIRED_RULES]
    if regrown:
        raise ValueError(
            "baseline entries for retired rule(s) — the ratchet may not "
            f"regrow: {', '.join(sorted(regrown))}"
        )
    return entries


def classify(
    findings: Sequence[Finding], baseline: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split a fresh run against the baseline.

    Returns ``(new, matched, stale)``: findings with no baseline entry
    (CI-blocking), findings the baseline tolerates, and baseline entries no
    fresh finding matches (paid-off debt whose entry must be removed — the
    ratchet direction).
    """
    allowed = {entry.key: entry for entry in baseline}
    matched_keys = set()
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in findings:
        if finding.key in allowed:
            matched.append(finding)
            matched_keys.add(finding.key)
        else:
            new.append(finding)
    stale = [entry for entry in baseline if entry.key not in matched_keys]
    return new, matched, stale


def render_report(
    findings: Sequence[Finding],
    baseline: Optional[Sequence[BaselineEntry]] = None,
) -> str:
    """Human-readable report; with a baseline, new/matched/stale sections."""
    lines: List[str] = []
    if baseline is None:
        for finding in findings:
            lines.append(str(finding))
        lines.append(f"{len(findings)} finding(s)")
        return "\n".join(lines)
    new, matched, stale = classify(findings, baseline)
    for finding in new:
        lines.append(f"NEW   {finding}")
    for finding in matched:
        lines.append(f"KNOWN {finding}")
    for entry in stale:
        lines.append(
            f"STALE baseline entry {entry.key} no longer fires — "
            "remove it (ratchet)"
        )
    lines.append(
        f"{len(new)} new, {len(matched)} baselined, {len(stale)} stale "
        f"baseline entr{'y' if len(stale) == 1 else 'ies'}"
    )
    return "\n".join(lines)
