"""Declarative runtime invariants — the grounding oracle the driver runs.

The static rules in :mod:`repro.analysis.rules` reject leak-prone *code
shapes*; this module declares the *runtime* properties those shapes exist
to protect, as first-class :class:`Invariant` objects a harness can execute
between steps of a live run (the VenomQA pattern: a registry of
``Invariant(name, check, description)`` evaluated against a ``World`` after
every action).

The :class:`World` is the harness's ground truth: which keys it believes
live, which it grounded-erased, plus the audit events (erase reports,
:class:`MoveEvent`/:class:`RepairEvent` subscriptions) the store emitted
along the way.  Each invariant compares that belief against the store's
physical reality:

* ``copies-match-reality`` — ``copies_of`` agrees with an independent
  physical scan: erased keys have zero copies anywhere (heap, cache, WAL,
  replication log, migration buffers), live keys have at least one;
* ``no-erased-read`` — no read path (any consistency, cache bypassed)
  returns a value for an erased key;
* ``destructive-actions-audited`` — every grounded erase produced a
  verified report, and every migrated key produced exactly one MoveEvent;
* ``replicas-converge`` — no replica has applied past its primary's
  sequence number, and no erased key survives on any individual node;
* ``replicas-converge-after-heal`` — on a fully-healed topology (a fault
  injector is attached and reports zero active faults), every replica is
  up and every fully-caught-up replica's physical content matches its
  primary's hash-range digests — revival catch-up replayed the scrubbed
  log without resurrecting anything, and injected divergence did not
  outlive the heal.

The checks are fault-aware: a store under injected faults
(:mod:`repro.distributed.faults`) may answer a probe with fail-fast
unavailability (``FaultError``) instead of data, and that is never a
violation — serving an *erased value* is the crime, refusing to serve is
not.

:func:`repro.workloads.driver.run_interleaved` evaluates the registry at
every driver-step boundary and once after the drain; ``python -m repro.cli
analyze --invariants`` runs the same registry over a scripted
rebalance-under-erasure scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.distributed.antientropy import range_digests
from repro.distributed.faults import FaultError
from repro.storage.errors import TupleNotFoundError

#: Bounded per-check sample so invariant evaluation stays O(sample) per
#: step, not O(keyspace); deterministic (sorted prefix) for replayability.
SAMPLE_LIMIT = 32


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant: which one, and the evidence."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.message}"


@dataclass(frozen=True)
class Invariant:
    """One executable runtime property.

    ``check`` takes the :class:`World` and returns the violation messages
    it found (empty when the invariant holds).  Checks must be read-mostly
    — they run between live-traffic steps — and bounded (sample, don't
    enumerate the keyspace).
    """

    name: str
    check: Callable[["World"], List[str]]
    description: str


@dataclass
class World:
    """The harness's ground truth about a store under test.

    The driver maintains ``live``/``erased`` from the operations it
    applied; ``attach`` subscribes the audit-event collectors to the
    store's listener seams.  ``erase_reports`` keeps the
    :class:`DistributedEraseReport` of each grounded erase (latest wins —
    a key can be erased, re-created, and erased again).
    """

    store: Any
    driver: Optional[Any] = None
    live: Set[Any] = field(default_factory=set)
    erased: Set[Any] = field(default_factory=set)
    erase_reports: Dict[Any, Any] = field(default_factory=dict)
    moves: List[Any] = field(default_factory=list)
    repairs: List[Any] = field(default_factory=list)
    #: ``keys_moved`` at attach time — migrations advanced before this
    #: world subscribed never produced events it could have seen.
    moved_at_attach: int = 0

    @classmethod
    def observe(cls, store: Any, driver: Optional[Any] = None) -> "World":
        """A world subscribed to the store's audit-event seams."""
        world = cls(store=store, driver=driver)
        world.attach()
        return world

    def attach(self) -> None:
        if hasattr(self.store, "add_move_listener"):
            self.store.add_move_listener(self.moves.append)
        if hasattr(self.store, "add_repair_listener"):
            self.store.add_repair_listener(self.repairs.append)
        if self.driver is not None:
            self.moved_at_attach = self.driver.rebalance.keys_moved

    # ------------------------------------------------------- driver bookkeeping
    def record_write(self, key: Any) -> None:
        """A CREATE/UPDATE landed — the key is live again even if a prior
        erase grounded it (re-creation after erasure is legal; §2.2 only
        forbids *resurrection* of the erased value)."""
        self.live.add(key)
        self.erased.discard(key)
        self.erase_reports.pop(key, None)

    def record_erase(self, key: Any, report: Any) -> None:
        self.erased.add(key)
        self.live.discard(key)
        self.erase_reports[key] = report

    # ----------------------------------------------------------------- sampling
    def erased_sample(self) -> List[Any]:
        return sorted(self.erased)[:SAMPLE_LIMIT]

    def live_sample(self) -> List[Any]:
        return sorted(self.live)[:SAMPLE_LIMIT]


# ------------------------------------------------------------------ the checks
def _check_copies_match_reality(world: World) -> List[str]:
    violations: List[str] = []
    for key in world.erased_sample():
        copies = world.store.copies_of(key)
        if copies:
            sites = ", ".join(f"{loc}@{name}" for loc, name in copies)
            violations.append(
                f"erased key {key!r} still has tracked copies: {sites}"
            )
    # Independent physical scan: copies_of could itself be lying, so ask
    # the shards what they *physically* hold and cross-check.
    if hasattr(world.store, "shards") and world.erased:
        erased = set(world.erased)
        for shard in world.store.shards():
            lingering = erased.intersection(shard.physically_present_keys())
            for key in sorted(lingering)[:SAMPLE_LIMIT]:
                violations.append(
                    f"erased key {key!r} physically present on shard "
                    f"{shard.index} (independent scan)"
                )
    for key in world.live_sample():
        if not world.store.copies_of(key):
            violations.append(
                f"live key {key!r} has no tracked copies — copies_of is "
                "blind to at least one physical site"
            )
    return violations


def _check_no_erased_read(world: World) -> List[str]:
    violations: List[str] = []
    for key in world.erased_sample():
        try:
            value = world.store.read(key, use_cache=False)
        except TupleNotFoundError:
            continue  # the required outcome for an erased key
        except FaultError:
            continue  # unavailable is acceptable; serving the value is not
        violations.append(
            f"read of erased key {key!r} returned {value!r} instead "
            "of TupleNotFoundError"
        )
    return violations


def _check_destructive_audited(world: World) -> List[str]:
    violations: List[str] = []
    for key in world.erased_sample():
        report = world.erase_reports.get(key)
        if report is None:
            violations.append(
                f"erased key {key!r} has no erase report — destructive "
                "action without an audit record"
            )
        elif not report.verified_clean:
            violations.append(
                f"erase of key {key!r} did not verify clean: "
                f"{world.store.lingering_copies(key)!r}"
                if hasattr(world.store, "lingering_copies")
                else f"erase of key {key!r} did not verify clean"
            )
    if world.driver is not None:
        moved = world.driver.rebalance.keys_moved - world.moved_at_attach
        if len(world.moves) != moved:
            violations.append(
                f"{moved} key(s) migrated but {len(world.moves)} MoveEvent"
                "(s) emitted — moves without audit records"
            )
    return violations


def _check_replicas_converge(world: World) -> List[str]:
    violations: List[str] = []
    if not hasattr(world.store, "shards"):
        return violations
    for shard in world.store.shards():
        # A replica may lag its primary (asynchronous replication) but can
        # never be *ahead* of it.
        target = shard._seqno  # noqa: SLF001 - oracle reads internals
        for node in shard.replicas:
            if getattr(node, "down", False):
                continue  # crash-stopped: no storage, no seqno to police
            if node.applied_seqno > target:
                violations.append(
                    f"replica {node.name} applied seqno "
                    f"{node.applied_seqno} > primary seqno {target} on "
                    f"shard {shard.index}"
                )
        for key in world.erased_sample():
            for node in shard.nodes():
                if node.backend.exists(key):
                    violations.append(
                        f"erased key {key!r} still live on node "
                        f"{node.name} (shard {shard.index})"
                    )
    return violations


def _check_replicas_converge_after_heal(world: World) -> List[str]:
    """Only meaningful on a store with a fault injector attached *and*
    fully healed: mid-fault, divergence and down replicas are the injected
    state itself.  Once every fault is healed, nothing injected may
    survive: every replica must be up, and every replica claiming to be
    fully caught up (``applied_seqno`` equal to the primary's) must
    physically match the primary — compared by the same hash-range digests
    the anti-entropy sweep uses, so silently lost *or* resurrected state
    in any arc trips it.  Replicas still lagging are legal (asynchronous
    replication); the sweep, a quorum read, or their next lazy catch-up
    will close that gap through the scrubbed log."""
    violations: List[str] = []
    injector = getattr(world.store, "fault_injector", None)
    if injector is None or injector.active_count:
        return violations
    if not hasattr(world.store, "shards"):
        return violations  # pragma: no cover - registry guard
    n_ranges = 8
    for shard in world.store.shards():
        target = shard._seqno  # noqa: SLF001 - oracle reads internals
        primary_digests: Optional[List[int]] = None
        for node in shard.replicas:
            if getattr(node, "down", False):
                violations.append(
                    f"replica {node.name} still down on shard "
                    f"{shard.index} with zero active faults — heal did "
                    "not revive it"
                )
                continue
            if node.applied_seqno != target:
                continue  # lag, not divergence — catch-up is pending
            if primary_digests is None:
                primary_digests = range_digests(
                    shard.primary.backend, n_ranges
                )
            theirs = range_digests(node.backend, n_ranges)
            if theirs != primary_digests:
                arcs = [
                    i
                    for i, (mine, got) in enumerate(
                        zip(primary_digests, theirs)
                    )
                    if mine != got
                ]
                violations.append(
                    f"replica {node.name} claims seqno {target} but its "
                    f"content diverges from the primary in hash range(s) "
                    f"{arcs} (shard {shard.index}) — unhealed divergence "
                    "after all faults cleared"
                )
    return violations


def store_invariants() -> List[Invariant]:
    """The registered invariant set for a :class:`ReplicatedStore` run."""
    return [
        Invariant(
            name="copies-match-reality",
            check=_check_copies_match_reality,
            description=(
                "copies_of agrees with physical reality: erased keys have "
                "zero copies anywhere (cross-checked by an independent "
                "shard scan), live keys have at least one"
            ),
        ),
        Invariant(
            name="no-erased-read",
            check=_check_no_erased_read,
            description=(
                "no read path returns a value for a grounded-erased key"
            ),
        ),
        Invariant(
            name="destructive-actions-audited",
            check=_check_destructive_audited,
            description=(
                "every grounded erase has a verified report and every "
                "migrated key an emitted MoveEvent"
            ),
        ),
        Invariant(
            name="replicas-converge",
            check=_check_replicas_converge,
            description=(
                "no replica runs ahead of its primary and no erased key "
                "survives on any individual node"
            ),
        ),
        Invariant(
            name="replicas-converge-after-heal",
            check=_check_replicas_converge_after_heal,
            description=(
                "with every injected fault healed, all replicas are up "
                "and every fully-caught-up replica's content matches its "
                "primary's hash-range digests"
            ),
        ),
    ]


def check_invariants(
    world: World, invariants: Optional[Sequence[Invariant]] = None
) -> List[InvariantViolation]:
    """Evaluate every invariant against the world; empty list = all hold."""
    invariants = store_invariants() if invariants is None else invariants
    violations: List[InvariantViolation] = []
    for invariant in invariants:
        for message in invariant.check(world):
            violations.append(
                InvariantViolation(invariant=invariant.name, message=message)
            )
    return violations
