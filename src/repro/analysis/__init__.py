"""Static + runtime compliance checking for the grounding discipline.

Two halves, one discipline:

* :mod:`repro.analysis.engine` / :mod:`repro.analysis.rules` — the
  AST-based grounding linter (rules G01–G06) with a committed,
  line-independent baseline ratchet;
* :mod:`repro.analysis.invariants` — the declarative runtime invariant
  registry the interleaved workload driver executes after every
  background-rebalance step.

Entry point: ``python -m repro.cli analyze [--baseline] [--invariants]``.
"""

from repro.analysis.engine import (
    ERROR,
    WARNING,
    BaselineEntry,
    Finding,
    Module,
    Rule,
    baseline_path,
    classify,
    load_baseline,
    package_root,
    render_report,
    run_rules,
)
from repro.analysis.invariants import (
    Invariant,
    InvariantViolation,
    World,
    check_invariants,
    store_invariants,
)
from repro.analysis.rules import default_rules, rule_catalogue

__all__ = [
    "ERROR",
    "WARNING",
    "BaselineEntry",
    "Finding",
    "Invariant",
    "InvariantViolation",
    "Module",
    "Rule",
    "World",
    "baseline_path",
    "check_invariants",
    "classify",
    "default_rules",
    "load_baseline",
    "package_root",
    "render_report",
    "rule_catalogue",
    "run_rules",
    "store_invariants",
]
