"""Plain-text renderers — print the same rows/series the paper reports."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.erasure import ErasureCharacterization
from repro.systems.profiles import RunResult
from repro.systems.space import SpaceReport


def _rule(width: int) -> str:
    return "-" * width


def render_table1(
    rows: Sequence[ErasureCharacterization], engine: str = "PSQL"
) -> str:
    """Table 1: interpretations of erasure and their characteristics."""
    header = f"{'Erasure':<24} {'IR':^4} {'II':^4} {'Inv':^5} {engine} System-Action(s)"
    lines = [
        "Table 1: Interpretations of erasure and their characteristics.",
        header,
        _rule(len(header) + 8),
    ]
    for row in rows:
        name, ir, ii, inv, actions = row.row()
        lines.append(f"{name:<24} {ir:^4} {ii:^4} {inv:^5} {actions}")
    return "\n".join(lines)


def render_fig4a(series: Mapping, unit: str = "s") -> str:
    """Figure 4(a): completion time per erase implementation vs txn count."""
    configs = list(series)
    txns = [p.transactions for p in series[configs[0]]]
    width = max(len(str(c)) for c in configs) + 2
    header = f"{'txns':>8} | " + " | ".join(f"{str(c):>{width}}" for c in configs)
    lines = [
        "Figure 4(a): Interpretations of Data Erasure in PSQL on WCus "
        "(completion time, seconds)",
        header,
        _rule(len(header)),
    ]
    for i, n in enumerate(txns):
        cells = " | ".join(
            f"{series[c][i].seconds:>{width}.0f}" for c in configs
        )
        lines.append(f"{n:>8} | {cells}")
    return "\n".join(lines)


def render_fig4b(results: Mapping[str, Mapping[str, RunResult]]) -> str:
    """Figure 4(b): completion time (minutes) per workload × profile."""
    workloads = list(results)
    profiles = list(next(iter(results.values())))
    header = f"{'workload':>10} | " + " | ".join(f"{p:>10}" for p in profiles)
    lines = [
        "Figure 4(b): Completion time for workloads "
        "(100k records, 10k txns; minutes)",
        header,
        _rule(len(header)),
    ]
    for wname in workloads:
        cells = " | ".join(
            f"{results[wname][p].total_minutes:>10.1f}" for p in profiles
        )
        lines.append(f"{wname:>10} | {cells}")
    return "\n".join(lines)


def render_fig4c(results: Mapping[str, Mapping[int, Mapping[str, float]]]) -> str:
    """Figure 4(c): WCus (lines) & YCSB-C (bars) vs record count."""
    lines = ["Figure 4(c): Scalability — completion time (minutes) vs records"]
    for wname, by_records in results.items():
        style = "lines" if wname == "WCus" else "bars"
        lines.append(f"  {wname} ({style}):")
        record_counts = sorted(by_records)
        profiles = list(by_records[record_counts[0]])
        header = f"{'records':>10} | " + " | ".join(f"{p:>10}" for p in profiles)
        lines.append("  " + header)
        lines.append("  " + _rule(len(header)))
        for records in record_counts:
            cells = " | ".join(
                f"{by_records[records][p]:>10.1f}" for p in profiles
            )
            lines.append(f"  {records:>10} | {cells}")
    return "\n".join(lines)


def render_table2(reports: Sequence[SpaceReport]) -> str:
    """Table 2: storage space overhead."""
    header = (
        f"{'System':<10} {'Personal (MB)':>14} {'Metadata (MB)':>14} "
        f"{'Total DB (MB)':>14} {'Space factor':>13}"
    )
    lines = [
        "Table 2: Storage space overhead corresponding to Figure 4(b).",
        "(Totals include indices.)",
        header,
        _rule(len(header)),
    ]
    for report in reports:
        system, personal, metadata, total, factor = report.row()
        lines.append(
            f"{system:<10} {personal:>14} {metadata:>14} {total:>14} {factor:>13}"
        )
    return "\n".join(lines)


def render_run_breakdown(result: RunResult) -> str:
    """Cost-category decomposition of one run (ablation/debug aid)."""
    lines = [
        f"{result.profile} on {result.workload}: "
        f"{result.total_minutes:.2f} min "
        f"(load {result.load_seconds:.0f}s + txns {result.txn_seconds:.0f}s)"
    ]
    total = sum(result.breakdown.values()) or 1.0
    for category, seconds in sorted(
        result.breakdown.items(), key=lambda kv: -kv[1]
    ):
        lines.append(
            f"  {category:<10} {seconds:>9.1f}s  ({100 * seconds / total:>5.1f}%)"
        )
    return "\n".join(lines)
