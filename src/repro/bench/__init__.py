"""Benchmark harness — experiment drivers for every table and figure.

Each driver regenerates one artifact of the paper's evaluation section:

* :func:`repro.bench.experiments.table1` — erasure characterization matrix;
* :func:`repro.bench.experiments.fig4a` — erasure implementations on PSQL;
* :func:`repro.bench.experiments.fig4b` — profile × workload completion times;
* :func:`repro.bench.experiments.fig4c` — scalability in record count;
* :func:`repro.bench.experiments.table2` — space factors;
* :mod:`repro.bench.ablations` — design-choice sweeps beyond the paper.

Drivers accept scale parameters (records / transactions) defaulting to the
paper's; ``benchmarks/`` wires them into pytest-benchmark and prints the
same rows/series the paper reports.
"""

from repro.bench.experiments import (
    ErasureConfig,
    fig4a,
    fig4b,
    fig4c,
    table1,
    table2,
)
from repro.bench.reporting import (
    render_fig4a,
    render_fig4b,
    render_fig4c,
    render_table1,
    render_table2,
)

__all__ = [
    "ErasureConfig",
    "table1",
    "table2",
    "fig4a",
    "fig4b",
    "fig4c",
    "render_table1",
    "render_table2",
    "render_fig4a",
    "render_fig4b",
    "render_fig4c",
]
