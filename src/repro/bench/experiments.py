"""Experiment drivers — one per table/figure of the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import BackendConfig
from repro.core.entities import controller, data_subject
from repro.core.erasure import (
    ErasureCharacterization,
    ErasureInterpretation,
    characterize,
)
from repro.core.policy import Policy, Purpose
from repro.core.provenance import DependencyKind
from repro.sim.clock import SimClock
from repro.sim.costs import CostBook, CostModel
from repro.systems import make_profile
from repro.systems.backends import make_backend
from repro.systems.database import CompliantDatabase
from repro.systems.profiles import RunResult
from repro.systems.space import SpaceReport
from repro.workloads.base import OpKind, Workload
from repro.workloads.gdprbench import (
    controller_workload,
    customer_workload,
    erasure_study_workload,
    processor_workload,
    pure_delete_workload,
)
from repro.workloads.ycsb import ycsb_c_workload

PROFILE_NAMES = ("P_Base", "P_GBench", "P_SYS")


# ===========================================================================
# Table 1 — erasure interpretations characterized on live scenarios
# ===========================================================================

def _erasure_scenario(
    interpretation: ErasureInterpretation,
    backend: str = "psql",
) -> ErasureCharacterization:
    """Run one erase interpretation end-to-end and characterize it.

    The scenario mirrors the paper's MetaSpace example: a controller
    collects a user's location record, a processor derives an (invertible)
    replica of it, the user exercises G17, and the deployment erases under
    the given interpretation.  The observed IR/II/Inv profile is computed
    from the real action history, provenance, and engine state.

    ``backend`` selects the grounding substrate: "psql" reproduces the
    paper's Table-1 column verbatim; "lsm" executes the same
    interpretations through their LSM system-actions (flag write,
    tombstone + full compaction) and must exhibit the identical property
    profile — the point of grounding portability; "crypto-shred" is the
    retrofit whose key-shredding system-actions make even "permanently
    delete" executable, filling the paper's "Not supported" cell.
    """
    metaspace = controller("MetaSpace")
    user = data_subject("user-1234")
    db = CompliantDatabase(metaspace, backend=backend)
    window = (0, 10**12)
    db.collect(
        "loc-1234",
        user,
        "mobile-app",
        {"lat": 33.64, "lon": -117.84},
        policies=[
            Policy(Purpose.SERVICE, metaspace, *window),
            Policy(Purpose.ANALYTICS, metaspace, *window),
        ],
        erase_deadline=10**12,
    )
    # An authorized replica (cache) — invertible, identifying.
    db.derive_unit(
        "loc-1234-cache",
        ["loc-1234"],
        {"lat": 33.64, "lon": -117.84},
        metaspace,
        Purpose.ANALYTICS,
        kind=DependencyKind.COPY,
        invertible=True,
        identifying=True,
    )
    db.read("loc-1234", metaspace, Purpose.SERVICE)  # lawful read
    registered = db.groundings.grounding(
        "erasure", interpretation.label, db.backend.name
    )
    supported = registered.is_implementable
    if supported:
        db.erase("loc-1234", interpretation=interpretation)
        unit = db.model.get("loc-1234")
        actions = tuple(a.name for a in registered.system_actions)
    else:
        # Permanent deletion has no system-action on the native engines
        # (Table 1); its property profile equals strong deletion's — the
        # paper notes the two differ only in the extra sanitization step.
        # Characterize the strong-delete execution and mark the row
        # unsupported.  (On crypto-shred the grounding IS implementable,
        # so this branch never runs there.)
        db.erase("loc-1234", interpretation=ErasureInterpretation.STRONGLY_DELETED)
        unit = db.model.get("loc-1234")
        actions = ()
    return characterize(
        interpretation,
        unit,
        db.history,
        db.provenance,
        db.model,
        actions,
        supported=supported,
    )


def table1(backend: str = "psql") -> List[ErasureCharacterization]:
    """Regenerate Table 1 by executing each interpretation on ``backend``."""
    return [_erasure_scenario(i, backend) for i in ErasureInterpretation]


# ===========================================================================
# Figure 4(a) — erasure implementations on the PSQL / LSM substrates
# ===========================================================================

class ErasureConfig(Enum):
    """The four Figure-4(a) series, legend order."""

    DELETE_VACUUM_FULL = "DELETE and VACUUM FULL"
    TOMBSTONES = "Tombstones (Indexing)"
    DELETE = "DELETE"
    DELETE_VACUUM = "DELETE + VACUUM"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Fig4aPoint:
    transactions: int
    seconds: float


def run_erasure_config(
    config: ErasureConfig,
    record_count: int,
    n_transactions: int,
    seed: int = 4,
    maintenance_interval: int = 200,
    workload: Optional[Workload] = None,
    cost_book: Optional[CostBook] = None,
) -> float:
    """One Figure-4(a) cell: load + run the erasure-study workload under one
    erase implementation; returns simulated completion seconds."""
    clock = SimClock()
    book = cost_book or CostBook()
    cost = CostModel(clock, book)
    if workload is None:
        workload = erasure_study_workload(record_count, n_transactions, seed)
    bloat_factor = 8.0
    tombstones = config is ErasureConfig.TOMBSTONES
    # Through the registry (G03): same engine, same cost charging, but the
    # grounding selection and copy-site protocol stay in force.
    backend = make_backend(
        "psql",
        cost,
        row_bytes=70,
        table="data",
        flag_column=tombstones,
        bloat_factor=bloat_factor,
        wal_checkpoint_every=5_000,
    )
    for key in range(record_count):
        backend.insert(key, (key, "payload"), fresh=True)
    deletes = 0
    flagged = 0
    for op in workload:
        if op.kind is OpKind.DELETE:
            if tombstones:
                # Logical delete: rewrite the row with the tombstone marker
                # set.  In PSQL MVCC this is an UPDATE — it creates a dead
                # version *and* leaves a live flagged row behind; the data
                # is physically retained (the §1 hazard) and reads must
                # filter markers forever.
                backend.update(op.key, (op.key, "tombstoned"))
                backend.make_inaccessible(op.key)
                flagged += 1
            else:
                backend.delete(op.key)
            backend.commit()
            deletes += 1
            if deletes % maintenance_interval == 0:
                if config is ErasureConfig.DELETE_VACUUM:
                    backend.reclaim()
                elif config is ErasureConfig.DELETE_VACUUM_FULL:
                    backend.reclaim_full()
        elif op.kind is OpKind.READ:
            backend.read(op.key)
            if tombstones and flagged:
                # Marker filtering: index entries of tombstoned rows are
                # still live; every read steps over a share of them.
                fraction = flagged / record_count
                clock.charge(book.page_read * bloat_factor * fraction, "storage")
        else:
            backend.insert(op.key, (op.key, "created"))
            backend.commit()
    return clock.now_seconds


def fig4a(
    record_count: int = 100_000,
    txn_counts: Sequence[int] = (10_000, 30_000, 50_000, 70_000),
    seed: int = 4,
) -> Dict[ErasureConfig, List[Fig4aPoint]]:
    """Regenerate Figure 4(a): completion time per erase implementation."""
    series: Dict[ErasureConfig, List[Fig4aPoint]] = {}
    for config in ErasureConfig:
        points = []
        for n in txn_counts:
            seconds = run_erasure_config(config, record_count, n, seed)
            points.append(Fig4aPoint(n, seconds))
        series[config] = points
    return series


def fig4a_pure_delete_control(
    record_count: int = 100_000, n_transactions: int = 10_000, seed: int = 5
) -> Dict[ErasureConfig, float]:
    """The paper's control: on a deletion-only workload plain DELETE beats
    DELETE+VACUUM ('the expected performance is observed for a workload
    composed only of deletions')."""
    workload = pure_delete_workload(record_count, n_transactions, seed)
    return {
        config: run_erasure_config(
            config, record_count, n_transactions, seed, workload=workload
        )
        for config in (ErasureConfig.DELETE, ErasureConfig.DELETE_VACUUM)
    }


# ===========================================================================
# Figure 4(b) — profiles × workloads
# ===========================================================================

WORKLOAD_ORDER = ("WPro", "WCon", "WCus", "YCSB-C")


def _make_workload(name: str, record_count: int, n_txns: int) -> Tuple[Workload, bool]:
    if name == "WPro":
        return processor_workload(record_count, n_txns), True
    if name == "WCon":
        return controller_workload(record_count, n_txns), True
    if name == "WCus":
        return customer_workload(record_count, n_txns), True
    if name == "YCSB-C":
        return ycsb_c_workload(record_count, n_txns), False
    raise KeyError(f"unknown workload {name!r}")


def _compaction_opts(
    backend: str, compaction: Optional[str]
) -> Optional[BackendConfig]:
    """Engine-config override for an explicit LSM compaction policy choice."""
    if compaction is None:
        return None
    if backend != "lsm":
        raise ValueError(
            "compaction policy selection only applies to the lsm backend"
        )
    return BackendConfig(backend="lsm", compaction=compaction)


def fig4b(
    record_count: int = 100_000,
    n_transactions: int = 10_000,
    workload_names: Sequence[str] = WORKLOAD_ORDER,
    profile_names: Sequence[str] = PROFILE_NAMES,
    backend: str = "psql",
    compaction: Optional[str] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Regenerate Figure 4(b): ``results[workload][profile] -> RunResult``.

    ``backend`` selects the storage substrate the whole grid runs on —
    the profile machinery is backend-generic, so the same profile ×
    workload matrix regenerates on "psql", "lsm", or "crypto-shred".
    ``compaction`` ("size" | "leveled") selects the LSM engine's
    compaction policy when the grid runs on the lsm backend.
    """
    engine_opts = _compaction_opts(backend, compaction)
    results: Dict[str, Dict[str, RunResult]] = {}
    for wname in workload_names:
        row: Dict[str, RunResult] = {}
        for pname in profile_names:
            workload, personal = _make_workload(wname, record_count, n_transactions)
            profile = make_profile(pname, backend=backend, engine_opts=engine_opts)
            row[pname] = profile.run(workload, personal=personal)
        results[wname] = row
    return results


# ===========================================================================
# Figure 4(c) — scalability in record count
# ===========================================================================

def fig4c(
    record_counts: Sequence[int] = (100_000, 200_000, 300_000, 400_000, 500_000),
    n_transactions: int = 10_000,
    profile_names: Sequence[str] = PROFILE_NAMES,
    include_ycsb: bool = True,
    backend: str = "psql",
    compaction: Optional[str] = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Regenerate Figure 4(c) on the chosen storage backend.

    Returns ``{"WCus": {records: {profile: minutes}},
    "YCSB-C": {records: {profile: minutes}}}`` — WCus are the lines, YCSB-C
    the bars.  ``compaction`` selects the LSM compaction policy (lsm
    backend only) — the 500k-record points are where the policies'
    write-amplification difference shows.
    """
    engine_opts = _compaction_opts(backend, compaction)
    out: Dict[str, Dict[int, Dict[str, float]]] = {"WCus": {}}
    if include_ycsb:
        out["YCSB-C"] = {}
    for records in record_counts:
        out["WCus"][records] = {}
        for pname in profile_names:
            workload, personal = _make_workload("WCus", records, n_transactions)
            result = make_profile(
                pname, backend=backend, engine_opts=engine_opts
            ).run(workload, personal=personal)
            out["WCus"][records][pname] = result.total_minutes
        if include_ycsb:
            out["YCSB-C"][records] = {}
            for pname in profile_names:
                workload, personal = _make_workload(
                    "YCSB-C", records, n_transactions
                )
                result = make_profile(
                    pname, backend=backend, engine_opts=engine_opts
                ).run(workload, personal=personal)
                out["YCSB-C"][records][pname] = result.total_minutes
    return out


# ===========================================================================
# Table 2 — space accounting of the Figure-4(b) WCus run
# ===========================================================================

def table2(
    record_count: int = 100_000,
    n_transactions: int = 10_000,
    backend: str = "psql",
    compaction: Optional[str] = None,
) -> List[SpaceReport]:
    """Regenerate Table 2: run WCus on each profile, report space."""
    engine_opts = _compaction_opts(backend, compaction)
    reports: List[SpaceReport] = []
    for pname in PROFILE_NAMES:
        workload, _personal = _make_workload("WCus", record_count, n_transactions)
        result = make_profile(pname, backend=backend, engine_opts=engine_opts).run(
            workload
        )
        reports.append(result.space)
    return reports
