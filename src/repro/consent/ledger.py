"""Tamper-evident consent ledger.

Receipts form a hash chain: each receipt's id is
``SHA-256(previous_id ‖ canonical-payload)``.  Any retroactive edit breaks
every later link, so :meth:`ConsentLedger.verify` gives an auditor a cheap
integrity check over the whole consent history (GDPR Art. 7(1):
demonstrable consent).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, List

GENESIS = "0" * 64


@dataclass(frozen=True)
class ConsentReceipt:
    """One immutable ledger entry."""

    receipt_id: str
    previous_id: str
    event: str            # "grant" | "withdraw" | "renew"
    subject: str
    entity: str
    purpose: str
    t_begin: int
    t_final: int
    recorded_at: int

    def payload(self) -> str:
        return "|".join(
            (
                self.event,
                self.subject,
                self.entity,
                self.purpose,
                str(self.t_begin),
                str(self.t_final),
                str(self.recorded_at),
            )
        )

    @staticmethod
    def chain_hash(previous_id: str, payload: str) -> str:
        return hashlib.sha256(f"{previous_id}|{payload}".encode()).hexdigest()


class ConsentLedger:
    """Append-only, hash-chained receipt store."""

    def __init__(self) -> None:
        self._receipts: List[ConsentReceipt] = []

    def append(
        self,
        event: str,
        subject: str,
        entity: str,
        purpose: str,
        t_begin: int,
        t_final: int,
        recorded_at: int,
    ) -> ConsentReceipt:
        if event not in ("grant", "withdraw", "renew"):
            raise ValueError(f"unknown consent event: {event!r}")
        previous = self._receipts[-1].receipt_id if self._receipts else GENESIS
        draft = ConsentReceipt(
            receipt_id="",
            previous_id=previous,
            event=event,
            subject=subject,
            entity=entity,
            purpose=purpose,
            t_begin=t_begin,
            t_final=t_final,
            recorded_at=recorded_at,
        )
        receipt = ConsentReceipt(
            ConsentReceipt.chain_hash(previous, draft.payload()),
            previous,
            event,
            subject,
            entity,
            purpose,
            t_begin,
            t_final,
            recorded_at,
        )
        self._receipts.append(receipt)
        return receipt

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._receipts)

    def __iter__(self) -> Iterator[ConsentReceipt]:
        return iter(self._receipts)

    def for_subject(self, subject: str) -> List[ConsentReceipt]:
        return [r for r in self._receipts if r.subject == subject]

    def get(self, receipt_id: str) -> ConsentReceipt:
        for receipt in self._receipts:
            if receipt.receipt_id == receipt_id:
                return receipt
        raise KeyError(f"no receipt {receipt_id!r}")

    # -------------------------------------------------------------- integrity
    def verify(self) -> bool:
        """Whether the whole chain is intact."""
        previous = GENESIS
        for receipt in self._receipts:
            if receipt.previous_id != previous:
                return False
            expected = ConsentReceipt.chain_hash(previous, receipt.payload())
            if receipt.receipt_id != expected:
                return False
            previous = receipt.receipt_id
        return True

    def tamper_for_testing(self, index: int, **overrides) -> None:
        """Corrupt a receipt in place (test helper: proves verify() bites)."""
        old = self._receipts[index]
        fields = {
            "receipt_id": old.receipt_id,
            "previous_id": old.previous_id,
            "event": old.event,
            "subject": old.subject,
            "entity": old.entity,
            "purpose": old.purpose,
            "t_begin": old.t_begin,
            "t_final": old.t_final,
            "recorded_at": old.recorded_at,
        }
        fields.update(overrides)
        self._receipts[index] = ConsentReceipt(**fields)
