"""Consent management middleware.

Related work the paper positions Data-CASE against includes consent-
management middlewares ([22] in §5); this package provides one that speaks
Data-CASE natively: every grant/withdrawal/renewal becomes a policy change
on the affected data units *and* a tamper-evident receipt in a hash-chained
ledger — the artifact a controller shows an auditor to demonstrate the
consent basis of processing (G7: "the controller shall be able to
demonstrate that the data subject has consented").
"""

from repro.consent.ledger import ConsentLedger, ConsentReceipt
from repro.consent.manager import ConsentManager, ConsentState

__all__ = [
    "ConsentLedger",
    "ConsentReceipt",
    "ConsentManager",
    "ConsentState",
]
