"""Consent manager — grants, withdrawals, renewals as policy changes.

The manager owns the mapping *consent event → policy change on data units*:

* ``grant`` mints a :class:`~repro.core.policy.Policy` and attaches it to
  every unit of the subject it applies to;
* ``withdraw`` clips the policy so it authorizes nothing from the
  withdrawal instant on (consent withdrawal is not retroactive — past
  lawful processing stays lawful, G7(3));
* ``renew`` extends consent by granting a fresh policy adjacent to the old.

Every event appends a receipt to the tamper-evident ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.consent.ledger import ConsentLedger, ConsentReceipt
from repro.core.dataunit import Database
from repro.core.entities import Entity
from repro.core.policy import Policy


class ConsentState(Enum):
    ACTIVE = "active"
    EXPIRED = "expired"
    WITHDRAWN = "withdrawn"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class _Consent:
    receipt: ConsentReceipt
    policy: Policy
    unit_ids: Tuple[str, ...]
    withdrawn_at: Optional[int] = None

    def state(self, now: int) -> ConsentState:
        if self.withdrawn_at is not None and now >= self.withdrawn_at:
            return ConsentState.WITHDRAWN
        if now > self.policy.t_final:
            return ConsentState.EXPIRED
        return ConsentState.ACTIVE


class ConsentManager:
    """Tracks consents and applies them to the model's data units."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self.ledger = ConsentLedger()
        self._consents: Dict[str, _Consent] = {}  # receipt id -> consent

    # ------------------------------------------------------------------ grant
    def grant(
        self,
        subject: Entity,
        entity: Entity,
        purpose: str,
        t_begin: int,
        t_final: int,
        unit_ids: Optional[Iterable[str]] = None,
        now: Optional[int] = None,
    ) -> ConsentReceipt:
        """Grant consent; attaches the policy to the subject's units.

        ``unit_ids`` restricts the grant to specific units; by default it
        covers every unit whose subject set contains ``subject``.
        """
        now = now if now is not None else t_begin
        policy = Policy(purpose, entity, t_begin, t_final)
        if unit_ids is None:
            units = self._database.units_of_subject(subject)
        else:
            units = [self._database.get(uid) for uid in unit_ids]
        for unit in units:
            if subject not in unit.subjects:
                raise ValueError(
                    f"unit {unit.unit_id!r} does not belong to {subject.name!r}; "
                    "consent can only cover the subject's own data"
                )
            unit.policies.add(policy)
        receipt = self.ledger.append(
            "grant", subject.name, entity.name, purpose, t_begin, t_final, now
        )
        self._consents[receipt.receipt_id] = _Consent(
            receipt, policy, tuple(u.unit_id for u in units)
        )
        return receipt

    # --------------------------------------------------------------- withdraw
    def withdraw(self, receipt_id: str, now: int) -> ConsentReceipt:
        """Withdraw a granted consent effective at ``now`` (not retroactive)."""
        consent = self._require(receipt_id)
        if consent.withdrawn_at is not None:
            raise ValueError("consent already withdrawn")
        for unit_id in consent.unit_ids:
            unit = self._database.get(unit_id)
            unit.policies.withdraw(consent.policy, at=now)
        consent.withdrawn_at = now
        return self.ledger.append(
            "withdraw",
            consent.receipt.subject,
            consent.receipt.entity,
            consent.receipt.purpose,
            consent.policy.t_begin,
            min(consent.policy.t_final, max(consent.policy.t_begin, now - 1)),
            now,
        )

    # ------------------------------------------------------------------ renew
    def renew(
        self, receipt_id: str, new_t_final: int, now: int
    ) -> ConsentReceipt:
        """Extend a consent: a fresh policy from ``now`` to ``new_t_final``."""
        consent = self._require(receipt_id)
        if consent.state(now) is ConsentState.WITHDRAWN:
            raise ValueError("cannot renew a withdrawn consent")
        if new_t_final <= consent.policy.t_final:
            raise ValueError("renewal must extend the consent window")
        policy = Policy(
            consent.receipt.purpose,
            consent.policy.entity,
            now,
            new_t_final,
        )
        for unit_id in consent.unit_ids:
            self._database.get(unit_id).policies.add(policy)
        receipt = self.ledger.append(
            "renew",
            consent.receipt.subject,
            consent.receipt.entity,
            consent.receipt.purpose,
            now,
            new_t_final,
            now,
        )
        self._consents[receipt.receipt_id] = _Consent(
            receipt, policy, consent.unit_ids
        )
        return receipt

    # ---------------------------------------------------------------- queries
    def state(self, receipt_id: str, now: int) -> ConsentState:
        return self._require(receipt_id).state(now)

    def active_consents(self, subject: Entity, now: int) -> List[ConsentReceipt]:
        return [
            consent.receipt
            for consent in self._consents.values()
            if consent.receipt.subject == subject.name
            and consent.state(now) is ConsentState.ACTIVE
        ]

    def covered_units(self, receipt_id: str) -> Tuple[str, ...]:
        return self._require(receipt_id).unit_ids

    def _require(self, receipt_id: str) -> _Consent:
        try:
            return self._consents[receipt_id]
        except KeyError:
            raise KeyError(f"no consent for receipt {receipt_id!r}") from None
