"""Command-line interface — regenerate experiments and audit groundings.

Usage::

    python -m repro table1
    python -m repro table2  [--records N] [--txns N] [--backend B]
    python -m repro fig4a   [--records N] [--txns N ...]
    python -m repro fig4b   [--records N] [--txns N] [--backend B]
    python -m repro fig4c   [--txns N] [--records N ...] [--backend B]
    python -m repro rebalance [--shards N] [--to M] [--replicas R]
                              [--consistency C] [--backend B] [--keys N]
                              [--background] [--budget K] [--weights W ...]
                              [--replicas-to R2]
    python -m repro chaos   [--seed S ...] [--shards N] [--replicas R]
                            [--keys N] [--ops N] [--budget K] [--backend B]
    python -m repro audit   --profile P_SYS
    python -m repro regulations [--name GDPR]

The backend-generic experiments accept ``--backend psql|lsm|crypto-shred``;
on the lsm backend, ``--compaction size|leveled`` selects the engine's
compaction policy (leveled cuts write amplification at the Figure-4(c)
scale).

``rebalance`` demonstrates the elastic sharding subsystem: it loads a
keyspace over ``--shards`` consistent-hash shard groups, reads it back at
the chosen ``--consistency`` level, then resizes online to ``--to`` shards
— reporting how few keys the ring moved (vs the near-total reshuffle
modulo routing would cause), the MIGRATION copy sites tracked while keys
were in flight, and that an erase issued *mid-rebalance* still verified
clean.  ``--background`` drives the same migration through a
``RebalanceDriver`` in bounded ``--budget``-key increments interleaved with
a live GDPRBench erasure-mix workload (grounded erases and read repairs
included); ``--weights`` assigns per-shard ring weights so heterogeneous
capacity takes a proportional keyspace share (with ``--to`` equal to
``--shards`` it performs a pure capacity reweight).

Every experiment prints the same rows/series the paper reports.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import fig4a, fig4b, fig4c, table1, table2
from repro.bench.reporting import (
    render_fig4a,
    render_fig4b,
    render_fig4c,
    render_table1,
    render_table2,
)
from repro.core.compatibility import (
    check_compatibility,
    has_conflicts,
    profile_selection,
)
from repro.core.regulation import all_regulations
from repro.lsm.compaction import COMPACTION_POLICIES
from repro.systems.backends import BACKENDS

#: Storage backends every backend-generic experiment can run on — derived
#: from the registry so a new backend is CLI-selectable the moment it
#: registers.
BACKEND_CHOICES = tuple(sorted(BACKENDS))


def _cmd_table1(args: argparse.Namespace) -> int:
    if args.backend == "both":
        backends = ("psql", "lsm")
    elif args.backend == "all":
        backends = BACKEND_CHOICES
    else:
        backends = (args.backend,)
    for i, backend in enumerate(backends):
        if i:
            print()
        print(render_table1(table1(backend=backend), engine=backend.upper()))
    return 0


def _check_compaction(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """--compaction is an LSM engine knob; reject it on other backends."""
    if args.compaction is not None and args.backend != "lsm":
        parser.error("--compaction requires --backend lsm")


def _cmd_table2(args: argparse.Namespace) -> int:
    print(
        render_table2(
            table2(
                args.records,
                args.txns,
                backend=args.backend,
                compaction=args.compaction,
            )
        )
    )
    return 0


def _cmd_fig4a(args: argparse.Namespace) -> int:
    series = fig4a(record_count=args.records, txn_counts=tuple(args.txns))
    print(render_fig4a(series))
    return 0


def _cmd_fig4b(args: argparse.Namespace) -> int:
    results = fig4b(
        record_count=args.records,
        n_transactions=args.txns,
        backend=args.backend,
        compaction=args.compaction,
    )
    print(render_fig4b(results))
    return 0


def _cmd_fig4c(args: argparse.Namespace) -> int:
    results = fig4c(
        record_counts=tuple(args.records),
        n_transactions=args.txns,
        backend=args.backend,
        compaction=args.compaction,
    )
    print(render_fig4c(results))
    return 0


def _cmd_rebalance(args: argparse.Namespace) -> int:
    """Elastic-sharding demo: online (optionally background) resize or
    reweight with grounded key migration."""
    from repro.distributed.ring import stable_hash
    from repro.distributed.store import (
        CopyLocation,
        RebalanceDriver,
        ReplicatedStore,
    )
    from repro.sim.clock import SimClock
    from repro.sim.costs import CostBook, CostModel

    if args.shards < 1 or args.to < 1:
        print("--shards and --to must be >= 1")
        return 2
    if args.keys < 1 or args.replicas < 0 or args.batch_size < 1:
        print("--keys and --batch-size must be >= 1, --replicas >= 0")
        return 2
    if args.budget < 1:
        print("--budget must be >= 1")
        return 2
    reweight_only = args.to == args.shards
    if reweight_only and args.weights is None:
        print(
            "--to must differ from --shards for a topology change "
            "(or pass --weights for a pure capacity reweight)"
        )
        return 2
    if args.weights is not None:
        if len(args.weights) != args.to:
            print(f"--weights needs one weight per target shard ({args.to})")
            return 2
        if any(w <= 0 for w in args.weights):
            print("--weights must all be positive")
            return 2
    cost = CostModel(SimClock(), CostBook())
    store = ReplicatedStore(
        cost,
        n_replicas=args.replicas,
        shards=args.shards,
        backend=args.backend,
        cache_ttl=10**12,
    )
    keys = [f"u{i:06d}" for i in range(args.keys)]
    for i, key in enumerate(keys):
        store.put(key, (i, "payload"))
    cost.clock.charge(60_000, "replication lag elapses")
    if args.replicas:
        for key in keys:
            store.read(key, replica=0)  # replicas apply + caches warm

    t0 = cost.clock.now
    for key in keys[: min(200, len(keys))]:
        store.read(key, use_cache=False, consistency=args.consistency)
    sample = min(200, len(keys))
    read_us = (cost.clock.now - t0) / sample
    print(
        f"{args.backend}: {len(keys)} keys over {args.shards} shard(s), "
        f"{args.replicas} replica(s)/shard"
    )
    print(f"  read({args.consistency!r}) mean simulated latency: {read_us:.0f} us")

    modulo_moved = sum(
        1
        for key in keys
        if stable_hash(key) % args.shards != stable_hash(key) % args.to
    )
    if reweight_only:
        rebalance = store.begin_reweight(
            args.weights, batch_size=args.batch_size
        )
    else:
        rebalance = store.begin_resize(
            args.to, batch_size=args.batch_size, weights=args.weights
        )
    rebalance.step()  # copy step: first batch goes in flight
    migration_sites = [
        (key, name)
        for key in keys
        if rebalance.in_flight_route(key)
        for loc, name in store.copies_of(key)
        if loc is CopyLocation.MIGRATION
    ]
    erased_clean = True
    if migration_sites:
        victim = migration_sites[0][0]
        erased_clean = store.erase_all_copies(victim).verified_clean
        print(
            f"  mid-rebalance: {len(migration_sites)} MIGRATION site(s) "
            f"tracked; erased {victim!r} in flight "
            f"(verified_clean={erased_clean})"
        )
    if args.background:
        from repro.workloads import erasure_study_workload, run_interleaved

        driver = RebalanceDriver(rebalance)
        workload = erasure_study_workload(len(keys), max(200, len(keys)))
        run = run_interleaved(
            store,
            workload,
            driver,
            ops_per_step=max(1, args.budget // 2),
            budget_keys=args.budget,
            consistency=args.consistency,
        )
        report = driver.report
        erased_clean = erased_clean and run.erases_verified_clean
        print(
            f"  background: {driver.steps} bounded "
            f"step(budget_keys={args.budget}) call(s) interleaved with "
            f"{run.ops_applied} live {workload.name} ops — {run.reads} "
            f"{args.consistency} reads, {run.erases} grounded erases "
            f"mid-rebalance (all clean: {run.erases_verified_clean}), "
            f"{run.repairs} read repair(s)"
        )
    else:
        report = rebalance.run()
    change = (
        f"reweight ×{args.to}" if reweight_only
        else f"resize {args.shards}→{args.to}"
    )
    modulo_note = (
        ""
        if reweight_only
        else f"; modulo routing would move {modulo_moved / len(keys):.0%}"
    )
    print(
        f"  {change}: moved {report.keys_moved}"
        f"/{report.keys_examined} keys "
        f"({report.moved_fraction:.0%}{modulo_note}) in "
        f"{report.batches} batch(es), {report.seconds:.3f} simulated s"
    )
    if args.weights is not None:
        shares = ", ".join(
            f"shard-{sid}: w={weight:g}"
            for sid, weight in sorted(store.shard_weights.items())
        )
        print(f"  weighted ring committed ({shares})")
    print(
        f"  verified clean: {report.verified_clean} "
        f"(every source copy ground-erased"
        + (", drained shards empty)" if report.shards_from != report.shards_to
           and len(report.shards_to) < len(report.shards_from) else ")")
    )
    if args.replicas_to is not None and args.replicas_to != args.replicas:
        change = store.set_replicas(args.replicas_to)
        direction = (
            f"joined {change.added} (scrubbed-log catch-up: "
            f"{change.catchup_entries} entries)"
            if change.added
            else f"retired {change.removed} (grounded "
                 f"{change.grounded_values} value(s) before drop)"
        )
        print(
            f"  replicas {change.replicas_before}→{change.replicas_after} "
            f"per shard across {change.shards} shard(s): {direction}"
        )
    return 0 if (report.verified_clean and erased_clean) else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded fault-injection harness: a live erasure-mix workload over a
    background resize while replicas crash and shards partition, with the
    runtime invariant registry as the oracle."""
    from repro.analysis.invariants import store_invariants
    from repro.distributed.antientropy import AntiEntropySweeper
    from repro.distributed.faults import FaultPlan
    from repro.distributed.store import RebalanceDriver, ReplicatedStore
    from repro.sim.clock import SimClock
    from repro.sim.costs import CostBook, CostModel
    from repro.workloads.driver import load_store, run_interleaved
    from repro.workloads.gdprbench import erasure_study_workload

    if args.shards < 1 or args.replicas < 1:
        print("--shards must be >= 1 and --replicas >= 1 (faults need "
              "replicas to kill)")
        return 2
    if args.keys < 1 or args.ops < 4 or args.budget < 1:
        print("--keys and --budget must be >= 1, --ops >= 4")
        return 2
    failures = 0
    for seed in args.seed:
        cost = CostModel(SimClock(), CostBook())
        store = ReplicatedStore(
            cost,
            shards=args.shards,
            n_replicas=args.replicas,
            backend=args.backend,
        )
        workload = erasure_study_workload(args.keys, args.ops, seed=seed)
        load_store(store, workload)
        plan = FaultPlan.seeded(
            seed,
            shards=args.shards,
            replicas=args.replicas,
            n_ops=args.ops,
        )
        rebalance = store.begin_resize(
            args.shards + 1, batch_size=max(8, args.budget // 2)
        )
        driver = RebalanceDriver(
            rebalance,
            antientropy=AntiEntropySweeper(store),
            sweep_every=2,
        )
        result = run_interleaved(
            store,
            workload,
            driver,
            ops_per_step=16,
            budget_keys=args.budget,
            consistency="quorum",
            invariants=store_invariants(),
            faults=plan,
        )
        ok = (
            result.erases_verified_clean
            and not result.invariant_violations
            and result.rebalance_completed
        )
        failures += 0 if ok else 1
        print(
            f"seed {seed}: {len(plan)} fault transition(s) "
            f"({plan.kills} kill(s), {plan.partitions} partition(s)) over "
            f"{result.ops_applied} {workload.name} ops — "
            f"{result.fault_events_applied} applied, "
            f"{result.fault_errors} op(s) failed fast; "
            f"{result.erases} grounded erase(s) all clean: "
            f"{result.erases_verified_clean}; "
            f"{result.invariants_checked} invariant evaluation(s), "
            f"{len(result.invariant_violations)} violation(s); "
            f"rebalance completed: {result.rebalance_completed}"
        )
        for violation in result.invariant_violations:
            print(f"  VIOLATION {violation}")
    print(
        f"chaos: {len(args.seed)} seed(s), "
        f"{len(args.seed) - failures} clean, {failures} failed"
    )
    return 1 if failures else 0


def _cmd_audit(args: argparse.Namespace) -> int:
    """Compatibility audit of a profile's grounding selections (§3.2)."""
    selection = profile_selection(args.profile)
    findings = check_compatibility(selection)
    if not findings:
        print(f"{args.profile}: no grounding incompatibilities detected")
        return 0
    print(f"{args.profile}: {len(findings)} finding(s)")
    for finding in findings:
        print(f"  {finding}")
    return 2 if has_conflicts(findings) else 0


def _cmd_regulations(args: argparse.Namespace) -> int:
    for regulation in all_regulations():
        if args.name and regulation.name != args.name:
            continue
        print(regulation.render_figure1())
        print()
    return 0


def _run_invariant_scenario() -> int:
    """Execute the runtime invariant registry over a scripted
    rebalance-under-erasure run (the CI-shaped live-oracle check)."""
    from repro.analysis.invariants import store_invariants
    from repro.distributed.store import ReplicatedStore
    from repro.sim.clock import SimClock
    from repro.sim.costs import CostBook, CostModel
    from repro.workloads.driver import load_store, run_interleaved
    from repro.workloads.gdprbench import erasure_study_workload

    cost = CostModel(SimClock(), CostBook())
    store = ReplicatedStore(cost, shards=4, n_replicas=1)
    workload = erasure_study_workload(300, 400, seed=4)
    load_store(store, workload)
    driver = store.begin_background_resize(5, batch_size=12)
    result = run_interleaved(
        store,
        workload,
        driver,
        ops_per_step=20,
        budget_keys=12,
        consistency="quorum",
        invariants=store_invariants(),
    )
    print(
        f"invariants: {result.invariants_checked} evaluation(s), "
        f"{len(result.invariant_violations)} violation(s)"
    )
    for violation in result.invariant_violations:
        print(f"  VIOLATION {violation}")
    if not result.erases_verified_clean:
        print("  VIOLATION grounded erase did not verify clean")
        return 1
    return 1 if result.invariant_violations else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """The grounding linter (and, optionally, the runtime invariants)."""
    from pathlib import Path

    from repro.analysis.engine import (
        baseline_path,
        classify,
        load_baseline,
        package_root,
        render_report,
        run_rules,
    )

    root = Path(args.path) if args.path else package_root()
    findings = run_rules(root)
    if args.baseline:
        baseline = load_baseline(baseline_path())
        print(render_report(findings, baseline))
        new, _matched, stale = classify(findings, baseline)
        # A stale entry means debt was paid off and the baseline must
        # shrink — but only a full package scan can prove absence, so a
        # --path partial scan never fails on staleness alone.
        status = 1 if (new or (stale and args.path is None)) else 0
    else:
        print(render_report(findings))
        status = 1 if findings else 0
    if args.invariants and status == 0:
        status = _run_invariant_scenario()
    return status


def _cmd_serve(args: argparse.Namespace) -> int:
    """Compliance-as-a-service front door: a concurrent HTTP server over a
    sharded ReplicatedStore (see docs/SERVICE.md)."""
    from repro.config import BackendConfig, ServiceConfig, StoreConfig
    from repro.distributed.store import ReplicatedStore
    from repro.service import ComplianceService
    from repro.service.http import serve_forever
    from repro.sim.clock import SimClock
    from repro.sim.costs import CostBook, CostModel

    if args.shards < 1 or args.replicas < 0:
        print("--shards must be >= 1 and --replicas >= 0")
        return 2
    if args.workers < 1 or args.queue_depth < 1 or args.erase_batch < 1:
        print("--workers, --queue-depth and --erase-batch must be >= 1")
        return 2
    backend_config = BackendConfig(
        backend=args.backend, compaction=args.compaction
    )
    store_config = StoreConfig(
        backend=backend_config,
        shards=args.shards,
        n_replicas=args.replicas,
    )
    cost = CostModel(SimClock(), CostBook())
    store = ReplicatedStore.from_config(cost, store_config)
    for i in range(args.preload):
        store.put(f"u{i:06d}", (i, "payload"))
    service = ComplianceService(
        store,
        config=ServiceConfig(
            workers_per_shard=args.workers,
            queue_depth=args.queue_depth,
            erase_batch=args.erase_batch,
        ),
    )
    serve_forever(service, host=args.host, port=args.port)
    return 0


# --------------------------------------------------------------------------
# Shared parent parsers: the flags several subcommands accept are declared
# once here — a subparser composes the parents it needs instead of
# re-declaring ``--backend``/``--compaction``/``--records``/``--txns``
# inline (and drifting, as six near-identical copies once did).
# --------------------------------------------------------------------------
def _backend_parent(
    help: str,  # noqa: A002 (mirrors argparse's own keyword)
    extra_choices: tuple = (),
) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--backend", default="psql",
        choices=[*BACKEND_CHOICES, *extra_choices], help=help,
    )
    return parent


def _compaction_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--compaction", default=None, choices=list(COMPACTION_POLICIES),
        help="LSM compaction policy (requires --backend lsm)",
    )
    return parent


def _fixed_parent(axis: str, default: int) -> argparse.ArgumentParser:
    """A single-valued ``--records``/``--txns`` scale flag."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(f"--{axis}", type=int, default=default)
    return parent


def _sweep_parent(axis: str, default: List[int]) -> argparse.ArgumentParser:
    """A multi-valued ``--records``/``--txns`` sweep flag (nargs=+)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(f"--{axis}", type=int, nargs="+", default=default)
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data-CASE reproduction: experiments and grounding audits",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "table1", help="erasure characterization matrix",
        parents=[_backend_parent(
            "storage backend to ground the interpretations on "
            "('both' = psql+lsm, 'all' = every backend)",
            extra_choices=("both", "all"),
        )],
    )
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser(
        "table2", help="space factors (Table 2)",
        parents=[
            _fixed_parent("records", 100_000),
            _fixed_parent("txns", 10_000),
            _backend_parent("storage backend the profiles run on"),
            _compaction_parent(),
        ],
    )
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser(
        "fig4a", help="erasure implementations on PSQL",
        parents=[
            _fixed_parent("records", 100_000),
            _sweep_parent("txns", [10_000, 30_000, 50_000, 70_000]),
        ],
    )
    p.set_defaults(func=_cmd_fig4a)

    p = sub.add_parser(
        "fig4b", help="profiles × workloads completion time",
        parents=[
            _fixed_parent("records", 100_000),
            _fixed_parent("txns", 10_000),
            _backend_parent("storage backend the profile grid runs on"),
            _compaction_parent(),
        ],
    )
    p.set_defaults(func=_cmd_fig4b)

    p = sub.add_parser(
        "fig4c", help="scalability in record count",
        parents=[
            _fixed_parent("txns", 10_000),
            _sweep_parent(
                "records", [100_000, 200_000, 300_000, 400_000, 500_000]
            ),
            _backend_parent("storage backend the profile grid runs on"),
            _compaction_parent(),
        ],
    )
    p.set_defaults(func=_cmd_fig4c)

    p = sub.add_parser(
        "rebalance",
        help="online consistent-hash resize with grounded key migration",
        parents=[_backend_parent("storage backend every node runs")],
    )
    p.add_argument("--keys", type=int, default=2_000,
                   help="keys to load before resizing")
    p.add_argument("--shards", type=int, default=4,
                   help="initial shard count")
    p.add_argument("--to", type=int, default=5,
                   help="target shard count (grow or shrink)")
    p.add_argument("--replicas", type=int, default=1,
                   help="asynchronous replicas per shard")
    p.add_argument("--consistency", default="quorum",
                   choices=["one", "quorum", "all"],
                   help="read consistency level for the read phase")
    p.add_argument("--batch-size", type=int, default=64,
                   help="keys migrated per batch")
    p.add_argument("--background", action="store_true",
                   help="drive the migration as a background process: "
                        "bounded step(budget_keys=…) increments interleaved "
                        "with a live GDPRBench erasure-mix workload "
                        "(consistent reads, grounded mid-rebalance erases, "
                        "read repairs)")
    p.add_argument("--budget", type=int, default=32,
                   help="keys migrated per background step "
                        "(with --background)")
    p.add_argument("--weights", type=float, nargs="+", default=None,
                   metavar="W",
                   help="ring weights, one per target shard (sorted by id); "
                        "heavier shards own proportionally more keyspace. "
                        "With --to equal to --shards this performs a pure "
                        "capacity reweight")
    p.add_argument("--replicas-to", type=int, default=None,
                   help="after the rebalance commits, change the per-shard "
                        "replica count to this value: joiners catch up from "
                        "the scrubbed replication log, leavers are grounded "
                        "before they drop")
    p.set_defaults(func=_cmd_rebalance)

    p = sub.add_parser(
        "chaos",
        help="seeded fault injection: kill/partition schedules against a "
             "live rebalance, invariant-checked",
        parents=[_backend_parent("storage backend every node runs")],
    )
    p.add_argument("--seed", type=int, nargs="+", default=[11, 12, 13, 14, 15],
                   help="fault-plan seed(s); each runs one full harness pass")
    p.add_argument("--shards", type=int, default=4,
                   help="initial shard count (resizes to one more mid-run)")
    p.add_argument("--replicas", type=int, default=2,
                   help="asynchronous replicas per shard (kill targets)")
    p.add_argument("--keys", type=int, default=300,
                   help="keys loaded before the chaos run")
    p.add_argument("--ops", type=int, default=400,
                   help="live erasure-mix operations per seed")
    p.add_argument("--budget", type=int, default=24,
                   help="keys migrated per background rebalance step")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="compliance-as-a-service HTTP front door over a sharded store",
        parents=[
            _backend_parent("storage backend every node runs"),
            _compaction_parent(),
        ],
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="interface to bind")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port to listen on (0 = ephemeral)")
    p.add_argument("--shards", type=int, default=4,
                   help="shard count")
    p.add_argument("--replicas", type=int, default=1,
                   help="asynchronous replicas per shard")
    p.add_argument("--workers", type=int, default=1,
                   help="worker threads per shard")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="bounded admission queue depth per shard "
                        "(full queue rejects with HTTP 429)")
    p.add_argument("--erase-batch", type=int, default=16,
                   help="max consecutive queued erases amortized into one "
                        "erase_many() reclamation")
    p.add_argument("--preload", type=int, default=0,
                   help="load this many u%%06d records before serving")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("audit", help="grounding compatibility audit")
    p.add_argument("--profile", required=True,
                   choices=["P_Base", "P_GBench", "P_SYS"])
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser("regulations", help="Figure-1 catalogs")
    p.add_argument("--name", default=None,
                   choices=["GDPR", "CCPA", "VDPA", "PIPEDA"])
    p.set_defaults(func=_cmd_regulations)

    p = sub.add_parser(
        "analyze",
        help="grounding linter (AST rules G01-G06) + runtime invariants",
    )
    p.add_argument("--path", default=None,
                   help="file or directory to lint (default: the installed "
                        "repro package)")
    p.add_argument("--baseline", action="store_true",
                   help="ratchet against the committed baseline: exit "
                        "nonzero only on NEW findings or STALE baseline "
                        "entries")
    p.add_argument("--invariants", action="store_true",
                   help="also execute the runtime invariant registry over "
                        "a scripted rebalance-under-erasure scenario")
    p.set_defaults(func=_cmd_analyze)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if hasattr(args, "compaction"):
        _check_compaction(parser, args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
