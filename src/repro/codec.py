"""The storage codec — one compact binary encoding for every value at rest.

Every backend used to serialize values its own way: the crypto-shred path
pickled one value per sector write, the LSM tree stored raw Python objects
with *nominal* byte accounting, and migration batches decoded and
re-encoded at every hop.  This module is the single seam all of them go
through now (enforced by analysis rules G04/G07): values enter storage as
``encode()`` blobs and leave through ``decode()``, so packed SSTable
blocks, encrypted sector groups, and in-flight export batches all carry
the *same* bytes and can hand them to each other without a decode/
re-encode round-trip.

Format
------
A blob is self-describing by its first byte:

* ``0x28–0x7A`` / ``0xA8–0xFA`` — a raw :mod:`marshal` (version 4) blob.
  marshal's type codes are printable ASCII, optionally OR-ed with the
  ``FLAG_REF`` bit ``0x80``, so its first byte never falls in the gap
  below.  This is the fast path: marshal's C serializer beats pickle on
  the plain tuples/strings/dicts the workloads store, at ~25% smaller
  output, and needs no framing byte at all.
* ``0x80`` — a :mod:`pickle` (protocol 5) blob, used verbatim: protocol 5
  always starts with ``PROTO`` (``0x80``), which marshal can never emit
  (it would be ``FLAG_REF`` with the invalid type code ``0x00``).  This
  is the fallback for arbitrary objects marshal rejects.
* ``0x81–0x8F`` — a registered singleton (one byte total).  The LSM
  tombstone registers here so delete markers cost one byte and compare
  by blob equality.
* ``0x90–0x9F`` — a registered extension type: tag byte + the type's own
  packed payload.  ``FlaggedPayload`` registers here so the reversible-
  inaccessibility flag survives encoding without paying the pickle path.

Batches
-------
``encode_many``/``decode_many`` are the hot-path entry points: they run
the whole batch through marshal's C loop (``map``) and only drop to the
per-value path when a batch member actually needs the fallback.  A packed
*block* (``pack_block``/``unpack_block``/``iter_block``) is the on-disk
shape: ``u32`` count, then a ``u32`` length prefix per blob — what an
SSTable stores and a migration batch streams.

Trust model: blobs only ever come from this process's own storage layer
(the same boundary the previous pickle-per-value code had), never from
untrusted input.
"""

from __future__ import annotations

import marshal
import pickle
from struct import Struct
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple, Type

__all__ = [
    "encode",
    "encode_stable",
    "decode",
    "encode_many",
    "decode_many",
    "encoded_size",
    "is_extension_blob",
    "pack_block",
    "unpack_block",
    "iter_block",
    "register_singleton",
    "register_extension",
    "CodecError",
]

_MARSHAL_VERSION = 4
# marshal >= 3 flags objects by refcount (FLAG_REF) and interning, so the
# same *value* can serialize to different bytes depending on how many
# references the object happens to have.  Version 2 has neither mechanism:
# equal values always produce identical bytes, which is what content hashing
# (the Bloom fast path) needs.
_STABLE_MARSHAL_VERSION = 2
_PICKLE_PROTOCOL = 5

#: First byte of every pickle-protocol-5 blob (the PROTO opcode).
_PICKLE_FIRST = 0x80
_SINGLETON_BASE = 0x81
_SINGLETON_MAX = 0x8F
_EXTENSION_BASE = 0x90
_EXTENSION_MAX = 0x9F

_U32 = Struct("<I")

_dumps = marshal.dumps
_loads = marshal.loads
_pickle_dumps = pickle.dumps
_pickle_loads = pickle.loads


class CodecError(ValueError):
    """A blob that no decoder recognizes (corrupt or foreign bytes)."""


# --------------------------------------------------------------- extensions
#: singleton tag byte -> the singleton object (and the reverse map).
_singletons: Dict[int, Any] = {}
_singleton_blobs: Dict[int, bytes] = {}

#: extension tag byte -> (cls, pack, unpack); cls -> tag for encoding.
_extensions: Dict[int, Tuple[Type[Any], Callable[[Any], bytes], Callable[[bytes], Any]]] = {}
_extension_tags: Dict[Type[Any], int] = {}


def register_singleton(obj: Any) -> bytes:
    """Register a sentinel object; returns its one-byte blob.

    Decoding that blob returns the *identical* object, so ``is`` checks
    (e.g. ``value is TOMBSTONE``) survive a round-trip.  Idempotent for
    the same object.
    """
    for tag, existing in _singletons.items():
        if existing is obj:
            return _singleton_blobs[tag]
    tag = _SINGLETON_BASE + len(_singletons)
    if tag > _SINGLETON_MAX:
        raise CodecError("singleton tag space exhausted")
    blob = bytes([tag])
    _singletons[tag] = obj
    _singleton_blobs[tag] = blob
    return blob


def register_extension(
    cls: Type[Any],
    pack: Callable[[Any], bytes],
    unpack: Callable[[bytes], Any],
) -> None:
    """Register a compact encoder for a class marshal cannot serialize.

    ``pack`` maps an instance to payload bytes; ``unpack`` inverts it
    (receiving the payload *without* the tag byte).  Idempotent for the
    same class.
    """
    if cls in _extension_tags:
        tag = _extension_tags[cls]
        _extensions[tag] = (cls, pack, unpack)
        return
    tag = _EXTENSION_BASE + len(_extensions)
    if tag > _EXTENSION_MAX:
        raise CodecError("extension tag space exhausted")
    _extensions[tag] = (cls, pack, unpack)
    _extension_tags[cls] = tag


# ------------------------------------------------------------------ scalars
def _encode_slow(value: Any) -> bytes:
    """The non-marshal paths: singleton, registered extension, pickle."""
    for tag, obj in _singletons.items():
        if value is obj:
            return _singleton_blobs[tag]
    tag = _extension_tags.get(type(value))
    if tag is not None:
        return bytes([tag]) + _extensions[tag][1](value)
    blob = _pickle_dumps(value, _PICKLE_PROTOCOL)
    # Protocol 5 guarantees the 0x80 discriminator byte; anything else
    # would collide with the marshal space and silently mis-decode.
    assert blob[0] == _PICKLE_FIRST
    return blob


def encode(value: Any) -> bytes:
    """Serialize one value to a self-describing blob."""
    try:
        return _dumps(value, _MARSHAL_VERSION)
    except ValueError:
        return _encode_slow(value)


def encode_stable(value: Any) -> bytes:
    """Serialize one value to *canonical* bytes: equal values, equal blobs.

    Unlike :func:`encode` (whose marshal version ref-flags objects by
    refcount, so incidental aliasing changes the bytes), this encoding is a
    pure function of the value — the contract content hashing needs.
    :func:`decode` inverts both.
    """
    try:
        return _dumps(value, _STABLE_MARSHAL_VERSION)
    except ValueError:
        return _encode_slow(value)


def decode(blob: Any) -> Any:
    """Invert :func:`encode` (accepts any bytes-like object)."""
    tag = blob[0]
    if _PICKLE_FIRST <= tag <= _EXTENSION_MAX:
        return _decode_slow(tag, blob)
    return _loads(blob)


def _decode_slow(tag: int, blob: Any) -> Any:
    if tag == _PICKLE_FIRST:
        return _pickle_loads(bytes(blob))
    if tag <= _SINGLETON_MAX:
        try:
            return _singletons[tag]
        except KeyError:
            raise CodecError(f"unregistered singleton tag 0x{tag:02x}") from None
    try:
        unpack = _extensions[tag][2]
    except KeyError:
        raise CodecError(f"unregistered extension tag 0x{tag:02x}") from None
    return unpack(bytes(blob[1:]))


def encoded_size(value: Any) -> int:
    """Bytes :func:`encode` would produce — the honest space accounting."""
    return len(encode(value))


def is_extension_blob(blob: Any) -> bool:
    """Whether the blob carries a registered extension type (e.g. a
    ``FlaggedPayload``) — lets native import paths spot wrappers they must
    re-ground without decoding every plain blob."""
    return _EXTENSION_BASE <= blob[0] <= _EXTENSION_MAX


# ------------------------------------------------------------------ batches
def encode_many(values: Sequence[Any]) -> List[bytes]:
    """Encode a batch; one C-level pass when every value marshals."""
    try:
        return list(map(_dumps, values))
    except ValueError:
        return [encode(v) for v in values]


def decode_many(blobs: Sequence[Any]) -> List[Any]:
    """Decode a batch; one C-level pass when every blob is marshal."""
    try:
        return list(map(_loads, blobs))
    except (ValueError, EOFError, TypeError):
        return [decode(b) for b in blobs]


# ------------------------------------------------------------------- blocks
def pack_block(blobs: Sequence[bytes]) -> bytes:
    """Pack encoded blobs into one length-prefixed buffer.

    Layout: ``u32 count``, then per blob ``u32 length`` + bytes.  This is
    the packed shape SSTable blocks and streamed migration batches use.
    """
    pack = _U32.pack
    parts = [pack(len(blobs))]
    for blob in blobs:
        parts.append(pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def iter_block(block: Any) -> Iterator[bytes]:
    """Yield each blob of a packed block without decoding any of them."""
    view = memoryview(block)
    (count,) = _U32.unpack_from(view, 0)
    pos = 4
    for _ in range(count):
        (length,) = _U32.unpack_from(view, pos)
        pos += 4
        yield bytes(view[pos:pos + length])
        pos += length
    if pos != len(view):
        raise CodecError(f"trailing bytes in packed block ({len(view) - pos})")


def unpack_block(block: Any) -> List[Any]:
    """Decode every value of a packed block."""
    return decode_many(list(iter_block(block)))
