"""Query/response and policy-decision loggers.

* :class:`QueryResponseLogger` — P_GBench's grounding: "histories are
  implemented by logging all queries and responses (no csv logs)".  Heavier
  per record than CSV rows because the response payload is retained.
* :class:`PolicyDecisionLogger` — P_SYS's accountability grounding: every
  operation logs the policies evaluated and the allow/deny outcome ("all
  policies are logged at the time of all the operations to implement
  demonstrable accountability", §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.sim.costs import CostModel

#: Base bytes per query log record (query text, metadata).
QUERY_RECORD_BYTES = 120


@dataclass(frozen=True)
class QueryLogRecord:
    timestamp: int
    user: str
    query: str
    table: str
    key: Any
    response_bytes: int

    @property
    def size_bytes(self) -> int:
        return QUERY_RECORD_BYTES + self.response_bytes


class QueryResponseLogger:
    """Logs every query together with its (sized) response.

    Records are bucketed by (table, key) so per-unit purging — P_SYS does it
    on every erase — costs O(bucket), not O(log).
    """

    def __init__(self, cost: CostModel) -> None:
        self._cost = cost
        self._buckets: Dict[Any, List[QueryLogRecord]] = {}
        self._count = 0
        self._bytes = 0

    def log(
        self,
        timestamp: int,
        user: str,
        query: str,
        table: str,
        key: Any,
        response_bytes: int,
    ) -> QueryLogRecord:
        record = QueryLogRecord(timestamp, user, query, table, key, response_bytes)
        self._buckets.setdefault((table, key), []).append(record)
        self._count += 1
        self._bytes += record.size_bytes
        self._cost.charge_query_response_log()
        return record

    @property
    def record_count(self) -> int:
        return self._count

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def records_for_key(self, table: str, key: Any) -> List[QueryLogRecord]:
        return list(self._buckets.get((table, key), ()))

    def purge_key(self, table: str, key: Any) -> int:
        bucket = self._buckets.pop((table, key), None)
        if not bucket:
            return 0
        removed = len(bucket)
        self._count -= removed
        self._bytes -= sum(r.size_bytes for r in bucket)
        self._cost.charge_log_purge(removed)
        return removed


#: Bytes per policy-decision record (policy ids, outcome, context).
DECISION_RECORD_BYTES = 96


@dataclass(frozen=True)
class PolicyDecision:
    timestamp: int
    unit_id: str
    entity: str
    purpose: str
    policies_evaluated: int
    allowed: bool


class PolicyDecisionLogger:
    """Records one allow/deny decision per policy-checked operation.

    Bucketed by unit id for O(1) per-unit purging (the P_SYS erase path).
    """

    def __init__(self, cost: CostModel) -> None:
        self._cost = cost
        self._buckets: Dict[str, List[PolicyDecision]] = {}
        self._count = 0
        self._denials = 0

    def log(
        self,
        timestamp: int,
        unit_id: str,
        entity: str,
        purpose: str,
        policies_evaluated: int,
        allowed: bool,
    ) -> PolicyDecision:
        decision = PolicyDecision(
            timestamp, unit_id, entity, purpose, policies_evaluated, allowed
        )
        self._buckets.setdefault(unit_id, []).append(decision)
        self._count += 1
        if not allowed:
            self._denials += 1
        self._cost.charge_policy_decision_log()
        return decision

    @property
    def record_count(self) -> int:
        return self._count

    @property
    def size_bytes(self) -> int:
        return self._count * DECISION_RECORD_BYTES

    @property
    def denial_count(self) -> int:
        return self._denials

    def decisions_for_unit(self, unit_id: str) -> List[PolicyDecision]:
        return list(self._buckets.get(unit_id, ()))

    def purge_unit(self, unit_id: str) -> int:
        bucket = self._buckets.pop(unit_id, None)
        if not bucket:
            return 0
        removed = len(bucket)
        self._count -= removed
        self._denials -= sum(1 for d in bucket if not d.allowed)
        self._cost.charge_log_purge(removed)
        return removed
