"""Audit substrate — logs, histories, retention.

The paper grounds *histories* on "various logs a system maintains, their
granularity, and uses" (§3.2).  The three profiles differ exactly here:

* P_Base: PSQL-native **CSV logging** with row-level security policy
  recording of query responses;
* P_GBench: logging of **all queries and responses** (no CSV logs);
* P_SYS: everything, plus a **policy-decision log** entry for every
  operation (demonstrable accountability), with log purging wired into the
  erase grounding.

Every logger tracks its byte footprint (Table 2's metadata column) and
charges the cost model per record.
"""

from repro.audit.csvlog import CsvLogger
from repro.audit.log import ActionLog
from repro.audit.querylog import PolicyDecisionLogger, QueryResponseLogger
from repro.audit.retention import RetentionManager

__all__ = [
    "ActionLog",
    "CsvLogger",
    "QueryResponseLogger",
    "PolicyDecisionLogger",
    "RetentionManager",
]
