"""Action log — the durable store behind the formal action-history.

Wraps :class:`repro.core.actions.ActionHistory` with cost charging and byte
accounting, and supports the purge-on-erase the strictest grounding needs
("erasure is implemented using DELETE + VACUUM FULL *as well as deleting
logs of the data units being deleted*", §4.2 P_SYS).
"""

from __future__ import annotations

from typing import Optional

from repro.core.actions import Action, ActionHistory, ActionHistoryTuple, ActionType
from repro.core.entities import Entity
from repro.sim.costs import CostModel

#: Approximate serialized bytes per action record.
RECORD_BYTES = 64


class ActionLog:
    """Append-only action history with cost/space accounting."""

    def __init__(self, cost: CostModel) -> None:
        self._cost = cost
        self._history = ActionHistory()
        self._purged = 0

    # -------------------------------------------------------------- recording
    def record(
        self,
        unit_id: str,
        purpose: str,
        entity: Entity,
        action_type: ActionType,
        timestamp: int,
        detail: Optional[str] = None,
    ) -> ActionHistoryTuple:
        entry = ActionHistoryTuple(
            unit_id, purpose, entity, Action(action_type, detail), timestamp
        )
        self._history.record(entry)
        self._cost.charge_log_append()
        return entry

    # ---------------------------------------------------------------- queries
    @property
    def history(self) -> ActionHistory:
        """The formal H — what the compliance checker consumes."""
        return self._history

    @property
    def record_count(self) -> int:
        return len(self._history)

    @property
    def size_bytes(self) -> int:
        return len(self._history) * RECORD_BYTES

    @property
    def purged_count(self) -> int:
        return self._purged

    # -------------------------------------------------------------- retention
    def purge_unit(self, unit_id: str) -> int:
        """Scrub every record about the unit (the P_SYS erase grounding).

        Note the tension this creates with demonstrability (Figure 1, IX):
        after a purge the system can no longer *prove* it erased on time.
        The compliance checker surfaces that trade-off; see
        ``examples/reldb_compliance.py``.
        """
        removed = self._history.forget_unit(unit_id)
        if removed:
            self._cost.charge_log_purge(removed)
            self._purged += removed
        return removed
