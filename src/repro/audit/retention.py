"""Retention manager — coordinates log purging across all log stores.

§3.2: "logs may be temporary or kept for a long duration … logs directly
impact requirements like demonstrating compliance, system recovery, and
data erasure."  The manager is the one place that knows every store holding
traces of a data unit, so an erase grounding that requires trace removal
(P_SYS) can call a single :meth:`purge_unit`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple


@dataclass
class PurgeReport:
    """What a coordinated purge removed, per store."""

    unit_id: str
    removed: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.removed.values())


class RetentionManager:
    """Registry of purgeable log stores.

    A store is registered with a name and a ``purge(unit_id) -> int``
    callable; table-keyed stores (CSV/query logs) are adapted by the caller.
    """

    def __init__(self) -> None:
        self._stores: List[Tuple[str, Callable[[str], int]]] = []

    def register(self, name: str, purge: Callable[[str], int]) -> None:
        if any(existing == name for existing, _fn in self._stores):
            raise ValueError(f"store {name!r} already registered")
        self._stores.append((name, purge))

    @property
    def store_names(self) -> List[str]:
        return [name for name, _fn in self._stores]

    def purge_unit(self, unit_id: str) -> PurgeReport:
        """Purge the unit's traces from every registered store."""
        report = PurgeReport(unit_id)
        for name, purge in self._stores:
            report.removed[name] = purge(unit_id)
        return report
