"""CSV logger — PSQL-style ``log_destination = csvlog``.

P_Base's history grounding: "native csv logging and … security policy to
record query responses at row-level" (§4.2).  Each logged operation becomes
one CSV row; the logger tracks the byte footprint of the accumulated log
files.
"""

from __future__ import annotations

import io
from typing import Any, List, Optional

from repro.sim.costs import CostModel

#: Fixed CSV columns: timestamp, user, database, pid, operation, table, key,
#: rows, detail — mirroring the postgres csvlog field set we rely on.
HEADER = "log_time,user_name,database_name,process_id,command_tag,table_name,key,rows,detail"

#: Bytes of csvlog fields we do not render (session id, vxid, location, …)
#: but which postgres writes per row — counted in the size accounting.
FIXED_FIELD_BYTES = 16


class CsvLogger:
    """Row-level CSV operation log with byte accounting."""

    def __init__(self, cost: CostModel, database_name: str = "repro") -> None:
        self._cost = cost
        self._database = database_name
        self._rows: List[str] = []
        self._bytes = len(HEADER) + 1

    def log(
        self,
        timestamp: int,
        user: str,
        operation: str,
        table: str,
        key: Any,
        rows: int = 1,
        detail: str = "",
    ) -> str:
        """Format and retain one CSV row; returns the formatted line."""
        line = (
            f"{timestamp},{user},{self._database},1,{operation},"
            f"{table},{key},{rows},{detail}"
        )
        self._rows.append(line)
        self._bytes += len(line) + 1 + FIXED_FIELD_BYTES
        self._cost.charge_csv_log_row()
        return line

    # ---------------------------------------------------------------- queries
    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def rows_for_key(self, table: str, key: Any) -> List[str]:
        needle = f",{table},{key},"
        return [r for r in self._rows if needle in r]

    def dump(self, limit: Optional[int] = None) -> str:
        """The log file contents (header + rows), for examples/debugging."""
        buffer = io.StringIO()
        buffer.write(HEADER + "\n")
        for row in self._rows[:limit]:
            buffer.write(row + "\n")
        return buffer.getvalue()

    # -------------------------------------------------------------- retention
    def purge_key(self, table: str, key: Any) -> int:
        needle = f",{table},{key},"
        kept = []
        removed = 0
        for row in self._rows:
            if needle in row:
                removed += 1
                self._bytes -= len(row) + 1 + FIXED_FIELD_BYTES
            else:
                kept.append(row)
        self._rows = kept
        if removed:
            self._cost.charge_log_purge(removed)
        return removed
