"""Figure 4(c) — scalability: WCus (lines) & YCSB-C (bars) vs record count.

Record counts 100k–500k at a fixed 10k transactions.

Shape assertions (the paper's findings):
* every series grows with record count;
* the growth slope orders P_SYS > P_GBench > P_Base — the strictest
  interpretation is impacted the most by data volume, P_Base the least;
* YCSB-C grows much more slowly than WCus for every profile.
"""

from conftest import emit, once, scaled

from repro.bench.experiments import fig4c
from repro.bench.reporting import render_fig4c

PROFILES = ("P_Base", "P_GBench", "P_SYS")


def test_fig4c(once):
    record_counts = tuple(
        scaled(n) for n in (100_000, 200_000, 300_000, 400_000, 500_000)
    )
    results = once(
        fig4c,
        record_counts=record_counts,
        n_transactions=scaled(10_000),
    )
    emit("fig4c", render_fig4c(results))

    wcus = results["WCus"]
    sizes = sorted(wcus)
    for profile in PROFILES:
        series = [wcus[n][profile] for n in sizes]
        assert series == sorted(series), (profile, series)

    def slope(table, profile):
        return (table[sizes[-1]][profile] - table[sizes[0]][profile]) / (
            sizes[-1] - sizes[0]
        )

    assert slope(wcus, "P_SYS") > slope(wcus, "P_GBench") > slope(wcus, "P_Base")

    ycsb = results["YCSB-C"]
    for profile in PROFILES:
        assert slope(ycsb, profile) < slope(wcus, profile), profile
        # at every size, the compliance profiles dominate plain traffic
        for n in sizes:
            assert ycsb[n][profile] < wcus[n][profile], (profile, n)
