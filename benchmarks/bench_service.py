"""Compliance service under concurrent load — the tentpole's latency gate.

Eight closed-loop client threads replay seeded workload mixes (the
GDPRBench erasure study and YCSB-C) against a live
:class:`~repro.service.ComplianceService` while the maintenance thread
advances a background rebalance and flushes read repairs underneath them.
The PR 6 runtime invariant registry runs *inside* the service as an
online oracle (every few maintenance ticks, and once more at close).

Unlike the simulation benches, the measured latencies here are
**wall-clock** — the service's claim is about its real request path
(admission queueing, shard locking, erase batching), not simulated engine
work.  The committed gates in ``benchmarks/baselines/service.json``
therefore carry ~10× headroom over observed values: they catch collapses
(a lost wakeup, an accidental global lock, an unbounded queue), not
machine noise.

Invariants gated in CI (``--smoke``): zero invariant violations while
erases race reads and rebalance steps, every erase verified clean, the
background rebalance attached mid-run drives to completion, zero
request errors, erase batching actually amortizes (fewer ``erase_many``
calls than erased keys), and the throughput/latency envelope holds.

``--json PATH`` writes machine-readable results (the
``BENCH_service.json`` artifact CI uploads).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--json OUT]

or under pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.invariants import store_invariants
from repro.config import BackendConfig, ServiceConfig, StoreConfig
from repro.distributed.store import ReplicatedStore
from repro.service import ComplianceService, run_loadgen
from repro.sim.clock import SimClock
from repro.sim.costs import CostBook, CostModel
from repro.workloads import erasure_study_workload, ycsb_c_workload
from repro.workloads.driver import load_store

#: Committed latency/throughput baseline the CI smoke run gates against.
BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "baselines", "service.json"
)


@dataclass(frozen=True)
class ServiceBenchResult:
    """One workload's run against a live service."""

    workload: str
    backend: str
    clients: int
    shards_from: int
    shards_to: int
    ops: int
    reads: int
    writes: int
    erases: int
    read_misses: int
    rejected: int
    retries: int
    errors: int
    erases_verified_clean: bool
    erase_batches: int
    erased_keys: int
    maintenance_ticks: int
    repairs: int
    invariant_checks: int
    invariant_violations: int
    rebalance_completed: bool
    wall_seconds: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    ops_per_s: float


def run_service_bench(
    workload_name: str,
    n_records: int,
    n_ops: int,
    clients: int = 8,
    backend: str = "lsm",
    shards: int = 3,
    to_shards: int = 4,
) -> ServiceBenchResult:
    """Load a store, attach a background rebalance, and drive the seeded
    workload from ``clients`` threads with the invariant oracle on."""
    cost = CostModel(SimClock(), CostBook())
    backend_config = (
        BackendConfig(backend="lsm", memtable_capacity=32)
        if backend == "lsm"
        else BackendConfig(backend=backend)
    )
    store = ReplicatedStore.from_config(
        cost,
        StoreConfig(backend=backend_config, shards=shards, n_replicas=1),
    )
    if workload_name == "erasure_study":
        workload = erasure_study_workload(n_records, n_ops, seed=13)
    elif workload_name == "ycsb_c":
        workload = ycsb_c_workload(n_records, n_ops, seed=13)
    else:
        raise ValueError(f"unknown workload {workload_name!r}")
    keys = load_store(store, workload)

    service = ComplianceService(
        store,
        config=ServiceConfig(
            workers_per_shard=2,
            queue_depth=16,
            erase_batch=8,
            invariant_check_every=4,
        ),
        invariants=store_invariants(),
        initial_live=keys,
    )
    service.begin_rebalance(to_shards)
    report = run_loadgen(service, workload, clients=clients)
    rebalance_completed = service.rebalance_done
    service.close()
    stats = service.stats()

    return ServiceBenchResult(
        workload=workload_name,
        backend=backend,
        clients=clients,
        shards_from=shards,
        shards_to=to_shards,
        ops=report.ops,
        reads=report.reads,
        writes=report.writes,
        erases=report.erases,
        read_misses=report.read_misses,
        rejected=report.rejected,
        retries=report.retries,
        errors=report.errors,
        erases_verified_clean=report.erases_verified_clean,
        erase_batches=stats.erase_batches,
        erased_keys=stats.erased_keys,
        maintenance_ticks=stats.maintenance_ticks,
        repairs=stats.repairs,
        invariant_checks=stats.invariant_checks,
        invariant_violations=stats.invariant_violations
        + len(service.violations),
        rebalance_completed=rebalance_completed or service.rebalance_done,
        wall_seconds=report.wall_seconds,
        p50_ms=report.p50_ms,
        p99_ms=report.p99_ms,
        mean_ms=report.mean_ms,
        ops_per_s=report.ops_per_s,
    )


def load_service_baseline(mode: str) -> Optional[Dict[str, float]]:
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH) as fh:
        return json.load(fh)[mode]


def check_service_invariants(
    results: Sequence[ServiceBenchResult],
    baseline: Optional[Dict[str, float]] = None,
) -> None:
    """The correctness gates (always) plus the committed latency envelope
    (when a baseline applies)."""
    for r in results:
        # Correctness under true concurrency — the whole point.
        assert r.invariant_violations == 0, r
        assert r.invariant_checks > 0, r
        assert r.errors == 0, r
        assert r.rebalance_completed, r
        if r.erases:
            assert r.erases_verified_clean, r
            # Batching amortizes: strictly fewer erase_many calls than
            # erased keys would mean nothing at batch size 1.
            assert r.erase_batches <= r.erased_keys, r
        # Closed-loop accounting: every non-metadata op resolved.
        assert r.ops == r.reads + r.writes + r.erases + r.rejected, r
        if baseline is not None:
            assert r.ops_per_s >= baseline["min_ops_per_s"], (
                f"{r.workload}: {r.ops_per_s:.0f} ops/s below the committed "
                f"floor {baseline['min_ops_per_s']}"
            )
            assert r.p99_ms <= baseline["max_p99_ms"], (
                f"{r.workload}: p99 {r.p99_ms:.1f} ms past the committed "
                f"ceiling {baseline['max_p99_ms']} ms"
            )


def render_service(results: Sequence[ServiceBenchResult]) -> str:
    header = (
        f"{'workload':<15} {'backend':<8} {'ops':>6} {'erases':>7} "
        f"{'batches':>8} {'repairs':>8} {'ops/s':>8} {'p50 ms':>7} "
        f"{'p99 ms':>7} {'viol':>5}"
    )
    lines = [
        "service under concurrent load "
        "(8 clients, background rebalance, invariant oracle)",
        header,
        "-" * len(header),
    ]
    for r in results:
        lines.append(
            f"{r.workload:<15} {r.backend:<8} {r.ops:>6} {r.erases:>7} "
            f"{r.erase_batches:>8} {r.repairs:>8} {r.ops_per_s:>8.0f} "
            f"{r.p50_ms:>7.2f} {r.p99_ms:>7.2f} {r.invariant_violations:>5}"
        )
    return "\n".join(lines)


def compare_service(
    n_records: int, n_ops: int, backends: Sequence[str] = ("lsm",)
) -> List[ServiceBenchResult]:
    results = []
    for backend in backends:
        results.append(
            run_service_bench("erasure_study", n_records, n_ops, backend=backend)
        )
    results.append(run_service_bench("ycsb_c", n_records, n_ops))
    return results


def test_bench_service(once):
    from conftest import emit, scaled

    results = once(
        compare_service,
        scaled(400, minimum=200),
        scaled(600, minimum=300),
        ("lsm", "psql"),
    )
    check_service_invariants(results, load_service_baseline("full"))
    emit("bench_service", render_service(results))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="compliance service under concurrent load"
    )
    parser.add_argument("--records", type=int, default=400)
    parser.add_argument("--ops", type=int, default=600)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--backends", nargs="+", default=["lsm", "psql"],
        choices=["psql", "lsm", "crypto-shred"],
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run asserting the service gates (CI): zero invariant "
             "violations with 8 clients racing a live rebalance, all "
             "erases verified clean, latency envelope from "
             "benchmarks/baselines/service.json",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write machine-readable results (BENCH_service.json artifact)",
    )
    args = parser.parse_args(argv)
    if args.records < 1 or args.ops < 1:
        parser.error("--records and --ops must be >= 1")
    if args.clients < 1:
        parser.error("--clients must be >= 1")
    mode = "smoke" if args.smoke else "full"
    n_records = 200 if args.smoke else args.records
    n_ops = 300 if args.smoke else args.ops
    backends = ("lsm", "psql") if args.smoke else tuple(args.backends)

    results = []
    for backend in backends:
        results.append(
            run_service_bench(
                "erasure_study",
                n_records,
                n_ops,
                clients=args.clients,
                backend=backend,
            )
        )
    results.append(
        run_service_bench("ycsb_c", n_records, n_ops, clients=args.clients)
    )
    check_service_invariants(results, load_service_baseline(mode))
    print(render_service(results))

    if args.json:
        payload = {
            "bench": "bench_service",
            "mode": mode,
            "service": [asdict(r) for r in results],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"\nresults written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
